//! `agl-cluster-sim` — a discrete-event model of the production cluster.
//!
//! The paper's scalability results (Fig. 8's near-linear speedup with slope
//! ≈ 0.8, the 14 h training / 1.2 h inference headline on 6.23×10⁹ nodes)
//! were measured on >1000 machines. This reproduction runs on one box, so
//! the *local* measurements calibrate a cluster model that replays the
//! paper-scale runs:
//!
//! * [`simulate_sync_training`] — synchronous PS training: per step, every
//!   worker computes its batch (with log-extreme straggler noise — the
//!   shared production cluster of §4.2.2), pulls/pushes the model, and the
//!   servers apply the averaged update. The speedup curve bends exactly the
//!   way the paper describes: *"overhead in network communication may
//!   slightly increase as the number of training workers increases"*.
//! * [`simulate_ssp_training`] / [`simulate_async_training`] — the same
//!   cluster under bounded-staleness (SSP) or fully asynchronous clocks: an
//!   event-driven simulation of each worker's step clock reporting gate
//!   wait time and clock drift, for extrapolating the `agl-ps` consistency
//!   modes to paper scale.
//! * [`simulate_mr_job`] — a MapReduce job (GraphFlat / GraphInfer): waves
//!   of tasks over a worker pool with shuffle I/O per round, reporting the
//!   paper's Table 5 cost units (time, core·min, GB·min).
//!
//! Everything is deterministic given the seed.

pub mod mr;
pub mod training;

pub use mr::{simulate_mr_job, MrJobModel};
pub use training::{
    simulate_async_training, simulate_ssp_training, simulate_sync_training, speedup_curve, ClusterConfig, SspSimReport,
    TrainingWorkload,
};

use std::time::Duration;

/// Cost report in the paper's Table 5 units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimReport {
    pub wall: Duration,
    /// CPU cost in core·minutes.
    pub cpu_core_min: f64,
    /// Memory cost in GB·minutes.
    pub mem_gb_min: f64,
}

impl SimReport {
    pub fn hours(&self) -> f64 {
        self.wall.as_secs_f64() / 3600.0
    }
}
