//! MapReduce job model (GraphFlat / GraphInfer at paper scale).

use crate::SimReport;
use agl_tensor::rng::derive_seed;
use agl_tensor::rng::Rng;
use agl_tensor::seeded_rng;
use std::time::Duration;

/// A MapReduce job to replay at scale.
#[derive(Debug, Clone, Copy)]
pub struct MrJobModel {
    /// Records entering each reduce round (≈ nodes + edges for GraphFlat).
    pub records: u64,
    /// Reduce rounds (K+1 for GraphFlat, K+2 for GraphInfer in this repo's
    /// round accounting).
    pub rounds: u64,
    /// Measured seconds of reducer compute per record — calibrate locally.
    pub secs_per_record: f64,
    /// Bytes shuffled per record per round.
    pub bytes_per_record: u64,
    /// Shuffle bandwidth per worker, bytes/s.
    pub shuffle_bandwidth: f64,
    /// Worker pool size (the paper uses 1000).
    pub workers: u64,
    /// Straggler dispersion (shared cluster).
    pub straggler_cv: f64,
    /// Peak memory per worker in GB.
    pub worker_mem_gb: f64,
    pub seed: u64,
}

impl MrJobModel {
    /// Sensible defaults for a commodity cluster; override per experiment.
    pub fn new(records: u64, rounds: u64, secs_per_record: f64, workers: u64) -> Self {
        Self {
            records,
            rounds,
            secs_per_record,
            bytes_per_record: 256,
            shuffle_bandwidth: 1.25e8, // 1 Gbps effective
            workers,
            straggler_cv: 0.08,
            worker_mem_gb: 1.5,
            seed: 42,
        }
    }
}

/// Simulate the job: each round is a wave of `workers` tasks; the round
/// ends when the slowest finishes (synchronisation barrier between rounds,
/// as in a real MR shuffle).
pub fn simulate_mr_job(model: &MrJobModel) -> SimReport {
    let mut rng = seeded_rng(derive_seed(model.seed, model.workers));
    let per_worker_records = model.records as f64 / model.workers as f64;
    let mut wall = 0.0f64;
    for _round in 0..model.rounds {
        let compute = per_worker_records * model.secs_per_record;
        let shuffle = per_worker_records * model.bytes_per_record as f64 / model.shuffle_bandwidth;
        let straggler = 1.0
            + model.straggler_cv * (2.0 * (model.workers as f64).ln()).sqrt() * (1.0 + 0.1 * rng.gen_range(-1.0..1.0));
        wall += (compute + shuffle) * straggler;
    }
    let wall_min = wall / 60.0;
    SimReport {
        wall: Duration::from_secs_f64(wall),
        cpu_core_min: wall_min * model.workers as f64,
        mem_gb_min: wall_min * model.workers as f64 * model.worker_mem_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_workers_roughly_halves_wall_time() {
        let base = MrJobModel::new(1_000_000_000, 3, 1e-5, 500);
        let double = MrJobModel { workers: 1000, ..base };
        let a = simulate_mr_job(&base);
        let b = simulate_mr_job(&double);
        let ratio = a.wall.as_secs_f64() / b.wall.as_secs_f64();
        assert!((1.7..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn more_rounds_cost_proportionally_more() {
        let k2 = MrJobModel::new(1_000_000, 3, 1e-5, 100);
        let k4 = MrJobModel { rounds: 6, ..k2 };
        let a = simulate_mr_job(&k2).wall.as_secs_f64();
        let b = simulate_mr_job(&k4).wall.as_secs_f64();
        assert!((1.8..2.2).contains(&(b / a)), "{}", b / a);
    }

    #[test]
    fn cost_units_scale_with_workers() {
        let m = MrJobModel::new(1_000_000, 2, 1e-5, 100);
        let r = simulate_mr_job(&m);
        assert!(r.cpu_core_min > 0.0);
        assert!((r.mem_gb_min / r.cpu_core_min - m.worker_mem_gb).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let m = MrJobModel::new(123_456, 3, 2e-5, 64);
        assert_eq!(simulate_mr_job(&m), simulate_mr_job(&m));
    }
}
