//! Synchronous parameter-server training model (Fig. 8).

use crate::SimReport;
use agl_tensor::rng::derive_seed;
use agl_tensor::rng::Rng;
use agl_tensor::seeded_rng;
use std::time::Duration;

/// Cluster characteristics (paper §4.2.2: 32-core / 64 GB commodity
/// machines on a shared, non-exclusive production cluster).
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Per-worker link bandwidth to the parameter servers, bytes/s.
    pub worker_bandwidth: f64,
    /// Aggregate parameter-server ingest bandwidth, bytes/s (more servers ⇒
    /// more aggregate bandwidth, but it is shared by all workers).
    pub ps_bandwidth: f64,
    /// Relative dispersion of task times on the shared cluster (drives the
    /// straggler effect — the max of `w` draws grows with `w`).
    pub straggler_cv: f64,
    /// Worker memory footprint in GB (the paper reports 5.5 GB/worker).
    pub worker_mem_gb: f64,
    /// How much of a worker's relative speed survives an epoch boundary on
    /// the shared, non-exclusive cluster. `1.0` (the default) keeps the
    /// speeds drawn at job start for the whole run — one machine stays the
    /// straggler. `0.0` re-draws every worker's speed at each of its epoch
    /// boundaries (the scheduler moved it, or a noisy neighbor left);
    /// values in between blend old and fresh draws.
    pub speed_persistence: f64,
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            worker_bandwidth: 1.25e9 / 10.0, // 1 Gbps effective per worker
            ps_bandwidth: 2.5e9,             // shared PS ingest
            straggler_cv: 0.055,
            worker_mem_gb: 5.5,
            speed_persistence: 1.0,
            seed: 42,
        }
    }
}

/// The training job to replay.
#[derive(Debug, Clone, Copy)]
pub struct TrainingWorkload {
    /// Training examples per epoch.
    pub examples: u64,
    /// Measured (or assumed) seconds of worker compute per example —
    /// calibrate from a local `LocalTrainer` run.
    pub secs_per_example: f64,
    pub batch_size: u64,
    pub epochs: u64,
    /// Model size in bytes (pull + push per step each move this much).
    pub param_bytes: u64,
}

/// Expected maximum of `w` unit-mean draws with coefficient of variation
/// `cv` — the Gumbel-ish `max ≈ 1 + cv·√(2 ln w)` approximation, jittered
/// deterministically per step.
fn straggler_factor(w: usize, cv: f64, jitter: f64) -> f64 {
    if w <= 1 {
        return 1.0;
    }
    1.0 + cv * (2.0 * (w as f64).ln()).sqrt() * (1.0 + 0.1 * jitter)
}

/// One synchronous step's wall time.
fn step_time(cfg: &ClusterConfig, wl: &TrainingWorkload, w: usize, jitter: f64) -> f64 {
    let compute = wl.batch_size as f64 * wl.secs_per_example * straggler_factor(w, cfg.straggler_cv, jitter);
    // Pull + push over the worker's own link…
    let link = 2.0 * wl.param_bytes as f64 / cfg.worker_bandwidth;
    // …and the shared PS ingest all `w` workers contend on.
    let ps = 2.0 * wl.param_bytes as f64 * w as f64 / cfg.ps_bandwidth;
    compute + link + ps
}

/// Simulate a full synchronous training run on `w` workers.
pub fn simulate_sync_training(cfg: &ClusterConfig, wl: &TrainingWorkload, w: usize) -> SimReport {
    assert!(w >= 1);
    let steps_per_epoch = wl.examples.div_ceil(wl.batch_size * w as u64).max(1);
    let mut rng = seeded_rng(derive_seed(cfg.seed, w as u64));
    let mut wall = 0.0f64;
    // Sample a handful of steps and scale — steps within an epoch are iid
    // in this model.
    let probe = 64.min(steps_per_epoch) as usize;
    let mut probe_sum = 0.0;
    for _ in 0..probe {
        probe_sum += step_time(cfg, wl, w, rng.gen_range(-1.0..1.0));
    }
    let mean_step = probe_sum / probe as f64;
    wall += mean_step * steps_per_epoch as f64 * wl.epochs as f64;
    let wall_min = wall / 60.0;
    SimReport {
        wall: Duration::from_secs_f64(wall),
        cpu_core_min: wall_min * w as f64,
        mem_gb_min: wall_min * w as f64 * cfg.worker_mem_gb,
    }
}

/// Speedup ratios `T(1)/T(w)` for a sweep of worker counts (Fig. 8).
pub fn speedup_curve(cfg: &ClusterConfig, wl: &TrainingWorkload, workers: &[usize]) -> Vec<(usize, f64)> {
    let t1 = simulate_sync_training(cfg, wl, 1).wall.as_secs_f64();
    workers.iter().map(|&w| (w, t1 / simulate_sync_training(cfg, wl, w).wall.as_secs_f64())).collect()
}

/// What a staleness-bounded (or unbounded) run looks like at cluster scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SspSimReport {
    /// Table-5 cost units for the run, like [`simulate_sync_training`].
    pub report: SimReport,
    /// Fraction of total worker-time spent blocked at the staleness gate
    /// (0 for async — nothing ever blocks).
    pub mean_wait_frac: f64,
    /// Largest observed clock drift: fastest worker's completed steps minus
    /// the slowest unfinished worker's, over the whole run. Under SSP this
    /// is at most `slack + 1`; async lets it grow with run length.
    pub max_lead_steps: u64,
}

/// Simulate staleness-bounded (SSP) training: worker `i` may not *start*
/// step `k` until every unfinished worker has *completed* step `k - slack`
/// (the classic SSP clock condition). `slack = 0` is the lock-step barrier,
/// large `slack` approaches fully asynchronous.
pub fn simulate_ssp_training(cfg: &ClusterConfig, wl: &TrainingWorkload, w: usize, slack: u64) -> SspSimReport {
    simulate_elastic_training(cfg, wl, w, Some(slack))
}

/// Simulate fully asynchronous training: no gate, every worker free-runs at
/// its own pace. `mean_wait_frac` is 0 by construction; `max_lead_steps`
/// shows how far the gradient clock drifts apart.
pub fn simulate_async_training(cfg: &ClusterConfig, wl: &TrainingWorkload, w: usize) -> SspSimReport {
    simulate_elastic_training(cfg, wl, w, None)
}

/// Event-driven clock simulation shared by SSP (`Some(slack)`) and async
/// (`None`). Deterministic: per-worker rngs are seeded by worker index, so
/// draws do not depend on interleaving.
fn simulate_elastic_training(cfg: &ClusterConfig, wl: &TrainingWorkload, w: usize, slack: Option<u64>) -> SspSimReport {
    assert!(w >= 1);
    assert!(
        (0.0..=1.0).contains(&cfg.speed_persistence),
        "speed_persistence must be in [0, 1], got {}",
        cfg.speed_persistence
    );
    let steps_per_epoch = wl.examples.div_ceil(wl.batch_size * w as u64).max(1);
    let total = steps_per_epoch * wl.epochs; // steps each worker must complete
    let link = 2.0 * wl.param_bytes as f64 / cfg.worker_bandwidth;
    let ps = 2.0 * wl.param_bytes as f64 * w as f64 / cfg.ps_bandwidth;
    let base_compute = wl.batch_size as f64 * wl.secs_per_example;

    // Persistent per-worker speed: the shared cluster hands each worker a
    // machine somewhere between nominal and the log-extreme tail; the last
    // worker is pinned at the tail so every run has its straggler.
    let tail = cfg.straggler_cv * (2.0 * (w as f64).ln().max(0.0)).sqrt();
    let mut speed_rng = seeded_rng(derive_seed(cfg.seed, 0x55b));
    let mut speed: Vec<f64> =
        (0..w).map(|i| if i == w - 1 { 1.0 + tail } else { 1.0 + tail * speed_rng.gen_range(0.0..0.5) }).collect();
    let mut rngs: Vec<_> = (0..w).map(|i| seeded_rng(derive_seed(cfg.seed, 1 + i as u64))).collect();
    // With persistence < 1, epoch boundaries blend each worker's speed
    // toward a fresh draw from the *typical* band — so the job-start
    // straggler regresses to the pack instead of dragging the whole run.
    // At exactly 1.0 no rng draws are consumed, keeping runs bit-identical
    // to the fixed-speed model.
    let persistence = cfg.speed_persistence;

    let mut t = vec![0.0f64; w]; // wall time at which worker has finished `clock[i]` steps
    let mut clock = vec![0u64; w];
    // gate_open[m] = wall time at which every unfinished worker had
    // completed ≥ m steps (monotone; filled as the min clock advances).
    let mut gate_open = vec![f64::NAN; total as usize + 1];
    gate_open[0] = 0.0;
    let mut min_known = 0u64; // highest m with gate_open[m] recorded
    let mut wait_total = 0.0f64;
    let mut max_lead = 0u64;
    let mut remaining = w;

    while remaining > 0 {
        // Pick the runnable worker whose (possibly gated) start is earliest.
        let mut pick: Option<(usize, f64)> = None;
        for i in 0..w {
            if clock[i] >= total {
                continue;
            }
            let start = match slack {
                Some(s) if clock[i] > s => {
                    let needed = clock[i] - s;
                    if needed > min_known {
                        continue; // gate closed: a laggard must advance first
                    }
                    t[i].max(gate_open[needed as usize])
                }
                _ => t[i],
            };
            if pick.map_or(true, |(_, best)| start < best) {
                pick = Some((i, start));
            }
        }
        // The slowest unfinished worker is never gated (its clock equals the
        // min), so a runnable worker always exists — this is the same
        // induction that makes the real `agl-ps` SSP gate deadlock-free.
        let (i, start) = pick.expect("SSP clock sim: no runnable worker");
        wait_total += start - t[i];
        let jitter = rngs[i].gen_range(-1.0..1.0);
        t[i] = start + base_compute * speed[i] * (1.0 + 0.1 * jitter) + link + ps;
        clock[i] += 1;
        if clock[i] >= total {
            remaining -= 1;
        } else if persistence < 1.0 && clock[i] % steps_per_epoch == 0 {
            // Epoch boundary: re-draw this worker's machine speed. Drawing
            // from the worker's own rng keeps the simulation deterministic
            // regardless of event interleaving.
            let fresh = 1.0 + tail * rngs[i].gen_range(0.0..0.5);
            speed[i] = persistence * speed[i] + (1.0 - persistence) * fresh;
        }
        let min_unfinished = (0..w).filter(|&j| clock[j] < total).map(|j| clock[j]).min();
        if let Some(m) = min_unfinished {
            max_lead = max_lead.max(clock[i] - m);
            while min_known < m {
                min_known += 1;
                gate_open[min_known as usize] = t[i];
            }
        }
    }

    let wall = t.iter().copied().fold(0.0f64, f64::max);
    let wall_min = wall / 60.0;
    SspSimReport {
        report: SimReport {
            wall: Duration::from_secs_f64(wall),
            cpu_core_min: wall_min * w as f64,
            mem_gb_min: wall_min * w as f64 * cfg.worker_mem_gb,
        },
        mean_wait_frac: if wall > 0.0 { wait_total / (wall * w as f64) } else { 0.0 },
        max_lead_steps: max_lead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> TrainingWorkload {
        TrainingWorkload {
            examples: 1_200_000,
            secs_per_example: 2e-3,
            batch_size: 128,
            epochs: 1,
            param_bytes: 4 * 200_000,
        }
    }

    #[test]
    fn speedup_is_near_linear_with_slope_around_point_eight() {
        // The Fig. 8 claim: ~78× at 100 workers, slope ≈ 0.8 throughout.
        let curve = speedup_curve(&ClusterConfig::default(), &wl(), &[10, 20, 50, 100]);
        for &(w, s) in &curve {
            let slope = s / w as f64;
            assert!((0.7..=1.0).contains(&slope), "{w} workers: speedup {s:.1} (slope {slope:.2})");
        }
        let (_, s100) = curve.last().copied().unwrap();
        assert!((70.0..90.0).contains(&s100), "100 workers: {s100:.1}×");
    }

    #[test]
    fn speedup_is_monotone() {
        let curve = speedup_curve(&ClusterConfig::default(), &wl(), &[1, 2, 4, 8, 16, 32, 64, 100]);
        for pair in curve.windows(2) {
            assert!(pair[1].1 > pair[0].1, "{pair:?}");
        }
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_workers_cost_more_cpu_for_same_job() {
        let cfg = ClusterConfig::default();
        let a = simulate_sync_training(&cfg, &wl(), 10);
        let b = simulate_sync_training(&cfg, &wl(), 100);
        assert!(b.wall < a.wall, "faster wall-clock");
        assert!(b.cpu_core_min > a.cpu_core_min, "but more aggregate CPU (imperfect scaling)");
    }

    #[test]
    fn deterministic() {
        let cfg = ClusterConfig::default();
        assert_eq!(simulate_sync_training(&cfg, &wl(), 7), simulate_sync_training(&cfg, &wl(), 7));
        assert_eq!(simulate_ssp_training(&cfg, &wl(), 16, 4), simulate_ssp_training(&cfg, &wl(), 16, 4));
        assert_eq!(simulate_async_training(&cfg, &wl(), 16), simulate_async_training(&cfg, &wl(), 16));
    }

    #[test]
    fn ssp_wait_shrinks_as_slack_grows() {
        let cfg = ClusterConfig::default();
        let waits: Vec<f64> =
            [0, 1, 4, 16, 64].iter().map(|&s| simulate_ssp_training(&cfg, &wl(), 32, s).mean_wait_frac).collect();
        for pair in waits.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12, "wait frac should not grow with slack: {waits:?}");
        }
        assert!(waits[0] > waits[4], "slack 0 must wait strictly more than slack 64: {waits:?}");
        assert!(waits[4] < 0.02, "with huge slack the gate should all but vanish: {}", waits[4]);
    }

    #[test]
    fn ssp_lead_is_bounded_by_slack_plus_one() {
        // A worker may start step k only when min clock ≥ k − slack, so on
        // completion its lead is ≤ slack + 1 — same bound the live
        // parameter server enforces on gradient staleness.
        let cfg = ClusterConfig::default();
        for slack in [0u64, 1, 4, 16] {
            for w in [2usize, 8, 32] {
                let r = simulate_ssp_training(&cfg, &wl(), w, slack);
                assert!(r.max_lead_steps <= slack + 1, "w={w} slack={slack}: lead {} exceeds bound", r.max_lead_steps);
            }
        }
    }

    #[test]
    fn async_never_waits_but_drifts_further() {
        let cfg = ClusterConfig::default();
        let long = TrainingWorkload { epochs: 4, ..wl() };
        let a = simulate_async_training(&cfg, &long, 32);
        let s = simulate_ssp_training(&cfg, &long, 32, 1);
        assert_eq!(a.mean_wait_frac, 0.0);
        assert!(a.max_lead_steps > s.max_lead_steps, "async drift {} vs ssp {}", a.max_lead_steps, s.max_lead_steps);
        assert!(a.report.wall <= s.report.wall, "free-running can only finish sooner");
    }

    #[test]
    fn epoch_speed_redraw_softens_the_straggler_gate() {
        // Fixed speeds pin one worker at the log-extreme tail for the whole
        // run, so a slack-0 gate waits on it every step of every epoch.
        // With zero persistence the straggler's speed regresses to the
        // typical band at its first epoch boundary, and the total fraction
        // of worker-time lost at the gate must drop.
        let fixed = ClusterConfig::default();
        let churn = ClusterConfig { speed_persistence: 0.0, ..fixed };
        let long = TrainingWorkload { epochs: 6, ..wl() };
        let wait_fixed = simulate_ssp_training(&fixed, &long, 32, 0).mean_wait_frac;
        let wait_churn = simulate_ssp_training(&churn, &long, 32, 0).mean_wait_frac;
        assert!(
            wait_churn < wait_fixed,
            "re-drawn speeds should wait less at the gate: churn {wait_churn:.4} vs fixed {wait_fixed:.4}"
        );
        // Partial persistence lands between the extremes of the blend.
        let half = ClusterConfig { speed_persistence: 0.5, ..fixed };
        let wait_half = simulate_ssp_training(&half, &long, 32, 0).mean_wait_frac;
        assert!(wait_half < wait_fixed, "half persistence still softens the gate: {wait_half:.4} vs {wait_fixed:.4}");
    }

    #[test]
    fn elastic_speeds_stay_deterministic() {
        let churn = ClusterConfig { speed_persistence: 0.25, ..ClusterConfig::default() };
        let long = TrainingWorkload { epochs: 3, ..wl() };
        assert_eq!(simulate_ssp_training(&churn, &long, 16, 2), simulate_ssp_training(&churn, &long, 16, 2));
        assert_eq!(simulate_async_training(&churn, &long, 16), simulate_async_training(&churn, &long, 16));
    }

    #[test]
    fn single_worker_has_nothing_to_wait_for() {
        let cfg = ClusterConfig::default();
        let r = simulate_ssp_training(&cfg, &wl(), 1, 0);
        assert_eq!(r.mean_wait_frac, 0.0);
        assert_eq!(r.max_lead_steps, 0);
    }
}
