//! Synchronous parameter-server training model (Fig. 8).

use crate::SimReport;
use agl_tensor::rng::derive_seed;
use agl_tensor::rng::Rng;
use agl_tensor::seeded_rng;
use std::time::Duration;

/// Cluster characteristics (paper §4.2.2: 32-core / 64 GB commodity
/// machines on a shared, non-exclusive production cluster).
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Per-worker link bandwidth to the parameter servers, bytes/s.
    pub worker_bandwidth: f64,
    /// Aggregate parameter-server ingest bandwidth, bytes/s (more servers ⇒
    /// more aggregate bandwidth, but it is shared by all workers).
    pub ps_bandwidth: f64,
    /// Relative dispersion of task times on the shared cluster (drives the
    /// straggler effect — the max of `w` draws grows with `w`).
    pub straggler_cv: f64,
    /// Worker memory footprint in GB (the paper reports 5.5 GB/worker).
    pub worker_mem_gb: f64,
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            worker_bandwidth: 1.25e9 / 10.0, // 1 Gbps effective per worker
            ps_bandwidth: 2.5e9,             // shared PS ingest
            straggler_cv: 0.055,
            worker_mem_gb: 5.5,
            seed: 42,
        }
    }
}

/// The training job to replay.
#[derive(Debug, Clone, Copy)]
pub struct TrainingWorkload {
    /// Training examples per epoch.
    pub examples: u64,
    /// Measured (or assumed) seconds of worker compute per example —
    /// calibrate from a local `LocalTrainer` run.
    pub secs_per_example: f64,
    pub batch_size: u64,
    pub epochs: u64,
    /// Model size in bytes (pull + push per step each move this much).
    pub param_bytes: u64,
}

/// Expected maximum of `w` unit-mean draws with coefficient of variation
/// `cv` — the Gumbel-ish `max ≈ 1 + cv·√(2 ln w)` approximation, jittered
/// deterministically per step.
fn straggler_factor(w: usize, cv: f64, jitter: f64) -> f64 {
    if w <= 1 {
        return 1.0;
    }
    1.0 + cv * (2.0 * (w as f64).ln()).sqrt() * (1.0 + 0.1 * jitter)
}

/// One synchronous step's wall time.
fn step_time(cfg: &ClusterConfig, wl: &TrainingWorkload, w: usize, jitter: f64) -> f64 {
    let compute = wl.batch_size as f64 * wl.secs_per_example * straggler_factor(w, cfg.straggler_cv, jitter);
    // Pull + push over the worker's own link…
    let link = 2.0 * wl.param_bytes as f64 / cfg.worker_bandwidth;
    // …and the shared PS ingest all `w` workers contend on.
    let ps = 2.0 * wl.param_bytes as f64 * w as f64 / cfg.ps_bandwidth;
    compute + link + ps
}

/// Simulate a full synchronous training run on `w` workers.
pub fn simulate_sync_training(cfg: &ClusterConfig, wl: &TrainingWorkload, w: usize) -> SimReport {
    assert!(w >= 1);
    let steps_per_epoch = wl.examples.div_ceil(wl.batch_size * w as u64).max(1);
    let mut rng = seeded_rng(derive_seed(cfg.seed, w as u64));
    let mut wall = 0.0f64;
    // Sample a handful of steps and scale — steps within an epoch are iid
    // in this model.
    let probe = 64.min(steps_per_epoch) as usize;
    let mut probe_sum = 0.0;
    for _ in 0..probe {
        probe_sum += step_time(cfg, wl, w, rng.gen_range(-1.0..1.0));
    }
    let mean_step = probe_sum / probe as f64;
    wall += mean_step * steps_per_epoch as f64 * wl.epochs as f64;
    let wall_min = wall / 60.0;
    SimReport {
        wall: Duration::from_secs_f64(wall),
        cpu_core_min: wall_min * w as f64,
        mem_gb_min: wall_min * w as f64 * cfg.worker_mem_gb,
    }
}

/// Speedup ratios `T(1)/T(w)` for a sweep of worker counts (Fig. 8).
pub fn speedup_curve(cfg: &ClusterConfig, wl: &TrainingWorkload, workers: &[usize]) -> Vec<(usize, f64)> {
    let t1 = simulate_sync_training(cfg, wl, 1).wall.as_secs_f64();
    workers.iter().map(|&w| (w, t1 / simulate_sync_training(cfg, wl, w).wall.as_secs_f64())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> TrainingWorkload {
        TrainingWorkload {
            examples: 1_200_000,
            secs_per_example: 2e-3,
            batch_size: 128,
            epochs: 1,
            param_bytes: 4 * 200_000,
        }
    }

    #[test]
    fn speedup_is_near_linear_with_slope_around_point_eight() {
        // The Fig. 8 claim: ~78× at 100 workers, slope ≈ 0.8 throughout.
        let curve = speedup_curve(&ClusterConfig::default(), &wl(), &[10, 20, 50, 100]);
        for &(w, s) in &curve {
            let slope = s / w as f64;
            assert!((0.7..=1.0).contains(&slope), "{w} workers: speedup {s:.1} (slope {slope:.2})");
        }
        let (_, s100) = curve.last().copied().unwrap();
        assert!((70.0..90.0).contains(&s100), "100 workers: {s100:.1}×");
    }

    #[test]
    fn speedup_is_monotone() {
        let curve = speedup_curve(&ClusterConfig::default(), &wl(), &[1, 2, 4, 8, 16, 32, 64, 100]);
        for pair in curve.windows(2) {
            assert!(pair[1].1 > pair[0].1, "{pair:?}");
        }
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_workers_cost_more_cpu_for_same_job() {
        let cfg = ClusterConfig::default();
        let a = simulate_sync_training(&cfg, &wl(), 10);
        let b = simulate_sync_training(&cfg, &wl(), 100);
        assert!(b.wall < a.wall, "faster wall-clock");
        assert!(b.cpu_core_min > a.cpu_core_min, "but more aggregate CPU (imperfect scaling)");
    }

    #[test]
    fn deterministic() {
        let cfg = ClusterConfig::default();
        assert_eq!(simulate_sync_training(&cfg, &wl(), 7), simulate_sync_training(&cfg, &wl(), 7));
    }
}
