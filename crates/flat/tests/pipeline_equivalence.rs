//! GraphFlat correctness: the MapReduce pipeline must produce exactly the
//! k-hop neighborhoods of Definition 1 (message-passing edge rule), as
//! computed by the single-machine reference extractor — plus the §3.2.2
//! behaviours (sampling caps, re-indexing load spreading, fault tolerance).

use agl_flat::{decode_graph_feature, FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::graph::Graph;
use agl_graph::khop::{khop_subgraph, EdgeRule};
use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_mapreduce::{FaultPlan, SpillMode, TaskId};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, Matrix};

/// Random sparse directed graph with per-node labels.
fn random_graph(n: u64, avg_deg: usize, seed: u64) -> (NodeTable, EdgeTable) {
    let mut rng = seeded_rng(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats = Matrix::from_vec(n as usize, 3, (0..n as usize * 3).map(|i| (i as f32) * 0.01).collect());
    let labels = Matrix::from_vec(n as usize, 1, (0..n).map(|i| (i % 2) as f32).collect());
    let nodes = NodeTable::new(ids, feats, Some(labels));
    let mut pairs = Vec::new();
    for src in 0..n {
        let deg = rng.gen_range(0..=2 * avg_deg);
        for _ in 0..deg {
            let dst = rng.gen_range(0..n);
            if dst != src && !pairs.contains(&(src, dst)) {
                pairs.push((src, dst));
            }
        }
    }
    (nodes, EdgeTable::from_pairs(pairs))
}

/// Star: many leaves pointing at one hub (plus a chain behind the leaves so
/// 2-hop neighborhoods are non-trivial).
fn hub_graph(n_leaves: u64) -> (NodeTable, EdgeTable) {
    let n = 2 * n_leaves + 1;
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats = Matrix::from_vec(n as usize, 2, (0..n as usize * 2).map(|i| i as f32).collect());
    let nodes = NodeTable::new(ids, feats, None);
    let mut pairs = Vec::new();
    for l in 1..=n_leaves {
        pairs.push((l, 0)); // leaf -> hub
        pairs.push((n_leaves + l, l)); // grand-leaf -> leaf
    }
    (nodes, EdgeTable::from_pairs(pairs))
}

fn run_flat(cfg: FlatConfig, nodes: &NodeTable, edges: &EdgeTable, targets: TargetSpec) -> agl_flat::FlatOutput {
    GraphFlat::new(cfg).run(nodes, edges, &targets).expect("graphflat run")
}

#[test]
fn matches_reference_khop_for_all_nodes() {
    for k in [0usize, 1, 2, 3] {
        let (nodes, edges) = random_graph(40, 3, 7);
        let graph = Graph::from_tables(&nodes, &edges);
        let out = run_flat(FlatConfig { k_hops: k, ..FlatConfig::default() }, &nodes, &edges, TargetSpec::All);
        assert_eq!(out.examples.len(), 40, "k={k}: one GraphFeature per node");
        for ex in &out.examples {
            let got = decode_graph_feature(&ex.graph_feature).unwrap().canonicalize();
            let want = khop_subgraph(&graph, &[ex.target], k as u32, EdgeRule::Sufficient).canonicalize();
            assert_eq!(got, want, "k={k} target {}", ex.target);
        }
    }
}

#[test]
fn labels_ride_along_with_targets() {
    let (nodes, edges) = random_graph(20, 2, 9);
    let targets: Vec<NodeId> = vec![NodeId(3), NodeId(7), NodeId(11)];
    let out = run_flat(FlatConfig::default(), &nodes, &edges, TargetSpec::Ids(targets.clone()));
    assert_eq!(out.examples.len(), 3);
    for ex in &out.examples {
        assert!(targets.contains(&ex.target));
        assert_eq!(ex.label, vec![(ex.target.0 % 2) as f32]);
    }
}

#[test]
fn fault_injection_does_not_change_output() {
    let (nodes, edges) = random_graph(30, 3, 11);
    let clean = run_flat(FlatConfig::default(), &nodes, &edges, TargetSpec::All);
    let cfg = FlatConfig {
        fault_plan: FaultPlan::none()
            .fail_first(TaskId::map(0), 1)
            .fail_first(TaskId::reduce(0, 1), 2)
            .fail_first(TaskId::reduce(2, 3), 1),
        ..FlatConfig::default()
    };
    let faulty = run_flat(cfg, &nodes, &edges, TargetSpec::All);
    assert_eq!(clean.examples.len(), faulty.examples.len());
    for (a, b) in clean.examples.iter().zip(&faulty.examples) {
        assert_eq!(a.target, b.target);
        assert_eq!(a.graph_feature, b.graph_feature, "target {}", a.target);
    }
}

#[test]
fn spill_to_disk_matches_in_memory() {
    let (nodes, edges) = random_graph(25, 3, 13);
    let mem = run_flat(FlatConfig::default(), &nodes, &edges, TargetSpec::All);
    let dir = std::env::temp_dir().join(format!("agl-flat-spill-{}", std::process::id()));
    let cfg = FlatConfig { spill: SpillMode::Disk(dir.clone()), ..FlatConfig::default() };
    let disk = run_flat(cfg, &nodes, &edges, TargetSpec::All);
    for (a, b) in mem.examples.iter().zip(&disk.examples) {
        assert_eq!(a.graph_feature, b.graph_feature);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sampling_caps_neighborhood_size() {
    let (nodes, edges) = hub_graph(100);
    // Unsampled: the hub's 1-hop neighborhood has 101 nodes.
    let full =
        run_flat(FlatConfig { k_hops: 1, ..FlatConfig::default() }, &nodes, &edges, TargetSpec::Ids(vec![NodeId(0)]));
    let full_sub = decode_graph_feature(&full.examples[0].graph_feature).unwrap();
    assert_eq!(full_sub.n_nodes(), 101);
    // Sampled: at most 10 in-edges survive.
    for strategy in [
        SamplingStrategy::Uniform { max_degree: 10 },
        SamplingStrategy::Weighted { max_degree: 10 },
        SamplingStrategy::TopK { max_degree: 10 },
    ] {
        let capped = run_flat(
            FlatConfig { k_hops: 1, sampling: strategy, ..FlatConfig::default() },
            &nodes,
            &edges,
            TargetSpec::Ids(vec![NodeId(0)]),
        );
        let sub = decode_graph_feature(&capped.examples[0].graph_feature).unwrap();
        assert_eq!(sub.n_nodes(), 11, "{strategy:?}");
        assert_eq!(sub.n_edges(), 10, "{strategy:?}");
        assert!(capped.counters.get("flat.sampled_out_in_edges") >= 90, "{strategy:?}");
        // Target must still be present and first.
        assert_eq!(sub.node_ids[0], NodeId(0));
    }
}

#[test]
fn sampling_is_deterministic_across_runs() {
    let (nodes, edges) = hub_graph(50);
    let cfg =
        || FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 5 }, ..FlatConfig::default() };
    let a = run_flat(cfg(), &nodes, &edges, TargetSpec::All);
    let b = run_flat(cfg(), &nodes, &edges, TargetSpec::All);
    for (x, y) in a.examples.iter().zip(&b.examples) {
        assert_eq!(x.graph_feature, y.graph_feature);
    }
    // Different seed -> different sample.
    let c = run_flat(cfg().with_seed(1234), &nodes, &edges, TargetSpec::All);
    let differs = a.examples.iter().zip(&c.examples).any(|(x, y)| x.graph_feature != y.graph_feature);
    assert!(differs, "a different sampling seed must pick different neighbors somewhere");
}

#[test]
fn reindexing_preserves_output_upto_sampling() {
    // With sampling disabled, re-indexing (hub splitting + partial merge at
    // the Storing step) must not change any neighborhood.
    let (nodes, edges) = hub_graph(40);
    let plain = run_flat(FlatConfig { k_hops: 2, ..FlatConfig::default() }, &nodes, &edges, TargetSpec::All);
    let reindexed = run_flat(
        FlatConfig { k_hops: 2, hub_threshold: 10, reindex_fanout: 4, ..FlatConfig::default() },
        &nodes,
        &edges,
        TargetSpec::All,
    );
    assert!(reindexed.counters.get("flat.hub_partials_merged") > 0, "hub target was split and re-merged");
    assert_eq!(plain.examples.len(), reindexed.examples.len());
    for (a, b) in plain.examples.iter().zip(&reindexed.examples) {
        assert_eq!(a.target, b.target);
        let sa = decode_graph_feature(&a.graph_feature).unwrap().canonicalize();
        let sb = decode_graph_feature(&b.graph_feature).unwrap().canonicalize();
        assert_eq!(sa, sb, "target {}", a.target);
    }
}

#[test]
fn reindexing_spreads_hub_records_across_groups() {
    let (nodes, edges) = hub_graph(60);
    // Count the biggest in-edge group the merge round saw, via the merged
    // node counter deltas — instead, simply verify the partials counter and
    // that per-group sampled caps apply per *partial* group.
    let capped = run_flat(
        FlatConfig {
            k_hops: 1,
            hub_threshold: 10,
            reindex_fanout: 4,
            sampling: SamplingStrategy::Uniform { max_degree: 5 },
            ..FlatConfig::default()
        },
        &nodes,
        &edges,
        TargetSpec::Ids(vec![NodeId(0)]),
    );
    let sub = decode_graph_feature(&capped.examples[0].graph_feature).unwrap();
    // 4 groups × ≤5 sampled in-edges each = ≤20 neighbors + target.
    assert!(sub.n_nodes() <= 21, "got {}", sub.n_nodes());
    assert!(sub.n_nodes() > 5, "multiple groups contributed, got {}", sub.n_nodes());
}

#[test]
fn reindexing_shrinks_the_largest_reduce_group() {
    // The actual point of re-indexing (§3.2.2): no single reducer should
    // have to merge a hub's entire in-edge set. The max-group counter must
    // drop by roughly the fanout.
    let (nodes, edges) = hub_graph(120);
    let plain = run_flat(FlatConfig { k_hops: 1, ..FlatConfig::default() }, &nodes, &edges, TargetSpec::All);
    assert_eq!(plain.counters.get("flat.max_group_in_edges"), 120, "hub's full in-edge set in one group");
    let reindexed = run_flat(
        FlatConfig { k_hops: 1, hub_threshold: 20, reindex_fanout: 4, ..FlatConfig::default() },
        &nodes,
        &edges,
        TargetSpec::All,
    );
    let max_group = reindexed.counters.get("flat.max_group_in_edges");
    assert!(max_group < 60, "re-indexing with fanout 4 should split the 120-edge hub group, got {max_group}");
}

#[test]
fn dangling_edges_are_counted_not_fatal() {
    let nodes = NodeTable::new(vec![NodeId(1), NodeId(2)], Matrix::zeros(2, 1), None);
    // 1 -> 2 is fine; 1 -> 99 has an unknown destination; 98 -> 2 an unknown source.
    let edges = EdgeTable::from_pairs([(1, 2), (1, 99), (98, 2)]);
    let out = run_flat(FlatConfig { k_hops: 1, ..FlatConfig::default() }, &nodes, &edges, TargetSpec::All);
    assert_eq!(out.examples.len(), 2);
    assert!(out.counters.get("flat.dangling_edge_sources") + out.counters.get("flat.dangling_edge_destinations") > 0);
    let sub2 =
        decode_graph_feature(&out.examples.iter().find(|e| e.target == NodeId(2)).unwrap().graph_feature).unwrap();
    assert_eq!(sub2.n_nodes(), 2, "node 2 still gets its valid neighbor");
}

#[test]
fn edge_features_flow_through_the_pipeline() {
    // Edge features ride the in-edge information and must survive into the
    // stored GraphFeature (the `E_B` matrix of §3.3.1).
    use agl_graph::tables::EdgeRow;
    let nodes =
        NodeTable::new(vec![NodeId(1), NodeId(2), NodeId(3)], Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]), None);
    let rows = vec![
        EdgeRow { src: NodeId(2), dst: NodeId(1), weight: 1.0 },
        EdgeRow { src: NodeId(3), dst: NodeId(2), weight: 2.0 },
    ];
    let efeat = Matrix::from_rows(&[&[10.0, 11.0], &[20.0, 21.0]]);
    let edges = EdgeTable::new(rows, Some(efeat));
    let out =
        run_flat(FlatConfig { k_hops: 2, ..FlatConfig::default() }, &nodes, &edges, TargetSpec::Ids(vec![NodeId(1)]));
    let sub = decode_graph_feature(&out.examples[0].graph_feature).unwrap();
    assert_eq!(sub.n_edges(), 2);
    let ef = sub.edge_features.as_ref().expect("edge features preserved");
    assert_eq!(ef.cols(), 2);
    // Map back by endpoints to check values survived intact.
    for (i, e) in sub.edges.iter().enumerate() {
        let (src, dst) = (sub.node_ids[e.src as usize], sub.node_ids[e.dst as usize]);
        let want: &[f32] = if (src, dst) == (NodeId(2), NodeId(1)) { &[10.0, 11.0] } else { &[20.0, 21.0] };
        assert_eq!(ef.row(i), want, "edge {src}->{dst}");
    }
}

#[test]
fn batch_of_targets_union_is_consistent() {
    // GraphFeatures are per-target; merging them at training time must equal
    // the reference multi-target extraction. (The actual merge lives in the
    // trainer; here we sanity-check the per-target pieces cover it.)
    let (nodes, edges) = random_graph(30, 3, 17);
    let graph = Graph::from_tables(&nodes, &edges);
    let targets = vec![NodeId(1), NodeId(2), NodeId(3)];
    let out = run_flat(FlatConfig::default(), &nodes, &edges, TargetSpec::Ids(targets.clone()));
    let mut b = agl_flat::builder::SubgraphBuilder::new();
    for ex in &out.examples {
        b.absorb(&decode_graph_feature(&ex.graph_feature).unwrap());
    }
    let merged = b.build(&targets).canonicalize();
    let want = khop_subgraph(&graph, &targets, 2, EdgeRule::Sufficient).canonicalize();
    assert_eq!(merged, want);
}
