//! Property-based tests of GraphFlat against the reference extractor over
//! randomly generated graphs, plus invariants of the sampled pipeline.

use agl_flat::{decode_graph_feature, FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::graph::Graph;
use agl_graph::khop::{khop_subgraph, EdgeRule};
use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_tensor::Matrix;
use proptest::prelude::*;

/// Build a graph from a proptest-generated edge list over `n` nodes.
fn graph_from(n: u64, raw_edges: &[(u64, u64)]) -> (NodeTable, EdgeTable) {
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats = Matrix::from_vec(n as usize, 2, (0..n as usize * 2).map(|i| i as f32 * 0.1).collect());
    let nodes = NodeTable::new(ids, feats, None);
    let mut pairs: Vec<(u64, u64)> = raw_edges
        .iter()
        .map(|&(a, b)| (a % n, b % n))
        .filter(|&(a, b)| a != b)
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    (nodes, EdgeTable::from_pairs(pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GraphFlat equals the reference k-hop extraction on arbitrary graphs
    /// for every k in 0..=3.
    #[test]
    fn prop_flat_matches_reference(
        n in 2u64..18,
        raw_edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..60),
        k in 0usize..4,
    ) {
        let (nodes, edges) = graph_from(n, &raw_edges);
        let graph = Graph::from_tables(&nodes, &edges);
        let out = GraphFlat::new(FlatConfig { k_hops: k, ..FlatConfig::default() })
            .run(&nodes, &edges, &TargetSpec::All)
            .unwrap();
        prop_assert_eq!(out.examples.len(), n as usize);
        for ex in &out.examples {
            let got = decode_graph_feature(&ex.graph_feature).unwrap().canonicalize();
            let want = khop_subgraph(&graph, &[ex.target], k as u32, EdgeRule::Sufficient).canonicalize();
            prop_assert_eq!(got, want);
        }
    }

    /// Sampled GraphFeatures are always valid subgraphs containing their
    /// target, with in-degrees bounded by the cap at every node.
    #[test]
    fn prop_sampled_output_valid_and_capped(
        n in 4u64..20,
        raw_edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 10..80),
        cap in 1usize..5,
        seed in any::<u64>(),
    ) {
        let (nodes, edges) = graph_from(n, &raw_edges);
        let out = GraphFlat::new(FlatConfig {
            k_hops: 2,
            sampling: SamplingStrategy::Uniform { max_degree: cap },
            seed,
            ..FlatConfig::default()
        })
        .run(&nodes, &edges, &TargetSpec::All)
        .unwrap();
        for ex in &out.examples {
            let sub = decode_graph_feature(&ex.graph_feature).unwrap();
            prop_assert!(sub.validate().is_ok());
            prop_assert_eq!(sub.target_ids(), vec![ex.target]);
            // Per-destination in-degree within the stored subgraph is capped.
            let mut indeg = vec![0usize; sub.n_nodes()];
            for e in &sub.edges {
                indeg[e.dst as usize] += 1;
            }
            prop_assert!(indeg.iter().all(|&d| d <= cap), "cap {cap}, got {indeg:?}");
        }
    }

    /// A sampled neighborhood is always a subgraph of the unsampled one.
    #[test]
    fn prop_sampled_is_subgraph_of_full(
        n in 4u64..16,
        raw_edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 5..50),
        seed in any::<u64>(),
    ) {
        let (nodes, edges) = graph_from(n, &raw_edges);
        let full = GraphFlat::new(FlatConfig { k_hops: 2, ..FlatConfig::default() })
            .run(&nodes, &edges, &TargetSpec::All)
            .unwrap();
        let sampled = GraphFlat::new(FlatConfig {
            k_hops: 2,
            sampling: SamplingStrategy::Uniform { max_degree: 2 },
            seed,
            ..FlatConfig::default()
        })
        .run(&nodes, &edges, &TargetSpec::All)
        .unwrap();
        for (f, s) in full.examples.iter().zip(&sampled.examples) {
            prop_assert_eq!(f.target, s.target);
            let fs = decode_graph_feature(&f.graph_feature).unwrap();
            let ss = decode_graph_feature(&s.graph_feature).unwrap();
            let full_nodes: std::collections::HashSet<_> = fs.node_ids.iter().collect();
            prop_assert!(ss.node_ids.iter().all(|id| full_nodes.contains(id)));
            let full_edges: std::collections::HashSet<(u64, u64)> = fs
                .edges
                .iter()
                .map(|e| (fs.node_ids[e.src as usize].0, fs.node_ids[e.dst as usize].0))
                .collect();
            for e in &ss.edges {
                let key = (ss.node_ids[e.src as usize].0, ss.node_ids[e.dst as usize].0);
                prop_assert!(full_edges.contains(&key), "sampled edge {key:?} not in full set");
            }
        }
    }
}
