//! `GraphFlat::run_distributed` vs `GraphFlat::run`: the multi-process
//! driver must produce byte-identical GraphFeatures — same targets, same
//! labels, same encoded subgraphs — across hub re-indexing, sampling, and
//! multiple hop depths. The "workers" here are in-process threads running
//! the real `serve_shuffle` loop over real UDS sockets; the process-level
//! version of the same assertion lives in the `agl-core` CLI smoke suite.

use agl_flat::{flat_reducer_from_spec, FlatConfig, FlatWorkerSpec, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_mapreduce::transport::{Endpoint, Listener};
use agl_mapreduce::{serve_shuffle, Codec, DistOptions};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, Matrix};
use std::path::PathBuf;

fn random_graph(n: u64, avg_deg: usize, seed: u64) -> (NodeTable, EdgeTable) {
    let mut rng = seeded_rng(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats = Matrix::from_vec(n as usize, 3, (0..n as usize * 3).map(|i| (i as f32) * 0.01).collect());
    let labels = Matrix::from_vec(n as usize, 1, (0..n).map(|i| (i % 2) as f32).collect());
    let nodes = NodeTable::new(ids, feats, Some(labels));
    let mut pairs = Vec::new();
    for src in 0..n {
        let deg = rng.gen_range(0..=2 * avg_deg);
        for _ in 0..deg {
            let dst = rng.gen_range(0..n);
            if dst != src && !pairs.contains(&(src, dst)) {
                pairs.push((src, dst));
            }
        }
    }
    (nodes, EdgeTable::from_pairs(pairs))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agl-flatdist-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the distributed driver against `n_workers` serve_shuffle loops on
/// UDS listeners and assert the output equals the in-process run's, byte
/// for byte.
fn assert_dist_matches_local(tag: &str, cfg: FlatConfig, n_workers: usize) {
    let (nodes, edges) = random_graph(36, 3, 17);
    let targets = TargetSpec::All;
    let local = GraphFlat::new(cfg.clone()).run(&nodes, &edges, &targets).expect("local run");

    let dir = temp_dir(tag);
    let eps: Vec<Endpoint> = (0..n_workers).map(|i| Endpoint::Unix(dir.join(format!("w{i}.sock")))).collect();
    let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
    let dist = std::thread::scope(|s| {
        for l in &listeners {
            s.spawn(move || serve_shuffle(l, 10_000_000_000, &flat_reducer_from_spec).unwrap());
        }
        GraphFlat::new(cfg).run_distributed(&nodes, &edges, &targets, &eps, &DistOptions::default())
    })
    .expect("distributed run");
    drop(listeners);
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(local.examples.len(), dist.examples.len(), "{tag}: example counts");
    for (a, b) in local.examples.iter().zip(&dist.examples) {
        assert_eq!(a.target, b.target, "{tag}");
        assert_eq!(a.label, b.label, "{tag}: labels for {}", a.target);
        assert_eq!(a.graph_feature, b.graph_feature, "{tag}: GraphFeature bytes for {}", a.target);
    }
}

#[test]
fn distributed_matches_local_plain() {
    assert_dist_matches_local("plain", FlatConfig::default(), 2);
}

#[test]
fn distributed_matches_local_with_hubs_and_sampling() {
    let cfg = FlatConfig {
        k_hops: 2,
        hub_threshold: 4,
        reindex_fanout: 3,
        sampling: SamplingStrategy::Weighted { max_degree: 3 },
        ..FlatConfig::default()
    };
    assert_dist_matches_local("hubs", cfg, 3);
}

#[test]
fn distributed_matches_local_single_worker_three_hops() {
    let cfg = FlatConfig { k_hops: 3, ..FlatConfig::default() };
    assert_dist_matches_local("deep", cfg, 1);
}

#[test]
fn worker_spec_round_trips_and_is_deterministic() {
    let spec = FlatWorkerSpec {
        k_hops: 2,
        sampling: SamplingStrategy::TopK { max_degree: 7 },
        seed: 99,
        fanout: 4,
        hubs: vec![3, 17, 40],
    };
    let bytes = spec.to_bytes();
    assert_eq!(FlatWorkerSpec::from_bytes(&bytes).unwrap(), spec);
    assert_eq!(bytes, spec.to_bytes(), "encoding is stable");
}
