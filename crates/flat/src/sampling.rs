//! The sampling framework (§3.2.2): caps the in-edge records a reduce group
//! merges per round, *"to reduce the scale of the k-hop neighborhoods,
//! especially for those 'hub' nodes"*.
//!
//! All strategies are deterministic given the caller-derived seed, so a
//! re-executed reduce task samples identically — the property that keeps
//! fault-injected runs byte-identical, and that GraphInfer relies on for
//! *"unbiased inference with the model trained based on GraphFlat"* (§3.4).

use agl_tensor::rng::seeded_rng;
use agl_tensor::rng::Rng;

/// How a reduce group down-samples its in-edge records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplingStrategy {
    /// Keep everything (used for correctness tests and small graphs).
    None,
    /// Uniform without replacement, at most `max_degree` records.
    Uniform { max_degree: usize },
    /// Weighted without replacement (probability ∝ edge weight), at most
    /// `max_degree` records — the "weighed sampling" of §3.2.2.
    Weighted { max_degree: usize },
    /// Deterministically keep the `max_degree` heaviest edges.
    TopK { max_degree: usize },
}

impl SamplingStrategy {
    /// The cap this strategy enforces, if any.
    pub fn max_degree(&self) -> Option<usize> {
        match *self {
            SamplingStrategy::None => None,
            SamplingStrategy::Uniform { max_degree }
            | SamplingStrategy::Weighted { max_degree }
            | SamplingStrategy::TopK { max_degree } => Some(max_degree),
        }
    }

    /// Choose which of `weights.len()` records survive. Returns sorted
    /// indices. `seed` must be derived from (job seed, shuffle key, round)
    /// by the caller.
    pub fn select(&self, weights: &[f32], seed: u64) -> Vec<usize> {
        let n = weights.len();
        let max = match self.max_degree() {
            None => return (0..n).collect(),
            Some(m) => m,
        };
        if n <= max {
            return (0..n).collect();
        }
        let mut picked: Vec<usize> = match *self {
            SamplingStrategy::None => unreachable!(),
            SamplingStrategy::Uniform { .. } => {
                // Partial Fisher–Yates.
                let mut rng = seeded_rng(seed);
                let mut idx: Vec<usize> = (0..n).collect();
                for i in 0..max {
                    let j = rng.gen_range(i..n);
                    idx.swap(i, j);
                }
                idx.truncate(max);
                idx
            }
            SamplingStrategy::Weighted { .. } => {
                // A-Res weighted reservoir: key_i = u_i^(1/w_i); keep the
                // `max` largest keys.
                let mut rng = seeded_rng(seed);
                let mut keyed: Vec<(f64, usize)> = weights
                    .iter()
                    .enumerate()
                    .map(|(i, &w)| {
                        let u: f64 = rng.gen_range(1e-12..1.0);
                        let w = f64::from(w.max(1e-12));
                        (u.powf(1.0 / w), i)
                    })
                    .collect();
                keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                keyed.truncate(max);
                keyed.into_iter().map(|(_, i)| i).collect()
            }
            SamplingStrategy::TopK { .. } => {
                let mut idx: Vec<usize> = (0..n).collect();
                // Heaviest first; ties broken by index for determinism.
                idx.sort_by(|&a, &b| {
                    weights[b].partial_cmp(&weights[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
                });
                idx.truncate(max);
                idx
            }
        };
        picked.sort_unstable();
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_keeps_everything() {
        assert_eq!(SamplingStrategy::None.select(&[1.0; 5], 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(SamplingStrategy::None.max_degree(), None);
    }

    #[test]
    fn under_cap_keeps_everything() {
        for s in [
            SamplingStrategy::Uniform { max_degree: 10 },
            SamplingStrategy::Weighted { max_degree: 10 },
            SamplingStrategy::TopK { max_degree: 10 },
        ] {
            assert_eq!(s.select(&[1.0; 3], 7), vec![0, 1, 2], "{s:?}");
        }
    }

    #[test]
    fn caps_and_is_deterministic() {
        let w: Vec<f32> = (0..100).map(|i| (i as f32) + 1.0).collect();
        for s in [
            SamplingStrategy::Uniform { max_degree: 10 },
            SamplingStrategy::Weighted { max_degree: 10 },
            SamplingStrategy::TopK { max_degree: 10 },
        ] {
            let a = s.select(&w, 99);
            let b = s.select(&w, 99);
            assert_eq!(a, b, "{s:?} deterministic");
            assert_eq!(a.len(), 10, "{s:?} capped");
            assert!(a.windows(2).all(|p| p[0] < p[1]), "{s:?} sorted unique");
            assert!(a.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn different_seeds_differ_for_random_strategies() {
        let w = vec![1.0f32; 50];
        let u = SamplingStrategy::Uniform { max_degree: 5 };
        assert_ne!(u.select(&w, 1), u.select(&w, 2));
    }

    #[test]
    fn topk_takes_heaviest() {
        let w = vec![0.1f32, 5.0, 0.2, 9.0, 1.0];
        let s = SamplingStrategy::TopK { max_degree: 2 };
        assert_eq!(s.select(&w, 0), vec![1, 3]);
    }

    #[test]
    fn weighted_prefers_heavy_edges() {
        // One edge has 1000x the weight of the rest; across many seeds it
        // should almost always survive.
        let mut w = vec![0.001f32; 20];
        w[7] = 1.0;
        let s = SamplingStrategy::Weighted { max_degree: 3 };
        let hits = (0..200).filter(|&seed| s.select(&w, seed).contains(&7)).count();
        assert!(hits > 180, "heavy edge kept in {hits}/200 runs");
    }

    #[test]
    fn uniform_is_roughly_unbiased() {
        let w = vec![1.0f32; 10];
        let s = SamplingStrategy::Uniform { max_degree: 5 };
        let mut counts = [0usize; 10];
        for seed in 0..400 {
            for i in s.select(&w, seed) {
                counts[i] += 1;
            }
        }
        // Each index should be picked ~200 times.
        for (i, &c) in counts.iter().enumerate() {
            assert!((150..250).contains(&c), "index {i} picked {c} times");
        }
    }
}
