//! `agl-flat` — **GraphFlat**, the distributed k-hop neighborhood generator
//! (paper §3.2).
//!
//! GraphFlat turns a `(node table, edge table)` pair into one
//! *information-complete* subgraph per targeted node — the **GraphFeature**
//! — using nothing but MapReduce:
//!
//! 1. **Map** (runs once): node rows are keyed by node id; edge rows are
//!    keyed by their *source* so the join round can attach the source's
//!    features to each edge.
//! 2. **Reduce round 0 (join)**: for every node `u`, combine its features
//!    with its out-edge rows, then emit (a) `u`'s 0-hop self info, (b) an
//!    in-edge info record to every destination `v` carrying `u`'s features
//!    — this materialises the paper's *"in-edge information (feature of the
//!    in-edge and the neighbor node)"* — and (c) `u`'s out-edge info.
//! 3. **Reduce rounds 1..=K (merge & propagate)**: each node merges its
//!    self info with the in-edge payloads (growing its neighborhood by one
//!    hop), then propagates the merged result along its out-edges. After
//!    round `k` the self info of `v` is exactly the k-hop neighborhood
//!    `G^k_v` of Definition 1 (with the message-passing edge rule — see
//!    `agl_graph::khop::EdgeRule::Sufficient`).
//! 4. **Storing**: round K emits the flattened GraphFeature byte strings of
//!    the targeted nodes.
//!
//! Hub handling (§3.2.2) is implemented as in the paper's Figure 3:
//!
//! * **Re-indexing**: shuffle keys whose in-degree exceeds a threshold get
//!   a deterministic suffix, splitting the hot group across reducers. Self
//!   info is replicated to every suffix group; each in-/out-edge record
//!   goes to one group.
//! * **Sampling framework**: each reduce group caps its in-edge records per
//!   round using a pluggable strategy (uniform / weighted / top-k).
//! * **Inverted indexing**: suffixes are stripped when records are emitted,
//!   so downstream grouping sees original node ids; the final partial
//!   GraphFeatures of a hub target are unioned by the driver during the
//!   Storing step.

pub mod builder;
pub mod compact;
pub mod graphfeature;
pub mod messages;
pub mod pipeline;
pub mod sampling;
pub mod store;

pub use compact::{decode_graph_feature_compact, encode_graph_feature_compact};
pub use graphfeature::{decode_graph_feature, encode_graph_feature};
pub use pipeline::{
    flat_reducer_from_spec, FlatConfig, FlatOutput, FlatWorkerSpec, GraphFlat, TargetSpec, TrainingExample,
};
pub use sampling::SamplingStrategy;
pub use store::{FeatureStore, ShardIter, StoreFormat};
