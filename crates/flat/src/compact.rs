//! Compact GraphFeature encoding — the storage-cost answer to the paper's
//! §1 observation that features at industrial scale *"may result into 100
//! TB of data"*.
//!
//! Differences from the plain codec ([`crate::graphfeature`]):
//!
//! * integers are LEB128 varints;
//! * node ids are delta-encoded (zig-zag) in stored order — neighborhoods
//!   are id-clustered, so deltas are small;
//! * edge endpoints are **local indices** into the node section instead of
//!   two 8-byte global ids (a 2-hop neighborhood rarely has more than a few
//!   hundred nodes, so endpoints cost 1–2 bytes instead of 16);
//! * features remain raw `f32` (lossless round-trip is a test invariant).
//!
//! The [`crate::store::FeatureStore`] writes either format; its file header
//! records which one, so readers are format-transparent.

use agl_graph::{NodeId, SubEdge, Subgraph};
use agl_mapreduce::codec::CodecError;
use agl_tensor::Matrix;

// ---- varint primitives ----

/// LEB128-encode a u64.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode a LEB128 u64.
pub fn get_varint(input: &mut &[u8]) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = input.first().ok_or_else(|| CodecError("varint: truncated".into()))?;
        *input = &input[1..];
        if shift >= 64 {
            return Err(CodecError("varint: overflow".into()));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zig-zag encode a signed delta.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Zig-zag decode.
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_f32(input: &mut &[u8]) -> Result<f32, CodecError> {
    if input.len() < 4 {
        return Err(CodecError("f32: truncated".into()));
    }
    let (h, t) = input.split_at(4);
    *input = t;
    Ok(f32::from_le_bytes([h[0], h[1], h[2], h[3]]))
}

// ---- the compact format ----

/// Encode a [`Subgraph`] compactly.
pub fn encode_graph_feature_compact(sub: &Subgraph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + sub.n_nodes() * (2 + 4 * sub.features.cols()) + sub.n_edges() * 8);
    // Targets as local indices.
    put_varint(&mut buf, sub.target_locals.len() as u64);
    for &t in &sub.target_locals {
        put_varint(&mut buf, u64::from(t));
    }
    // Nodes: delta-encoded global ids + raw features.
    put_varint(&mut buf, sub.n_nodes() as u64);
    put_varint(&mut buf, sub.features.cols() as u64);
    let mut prev = 0i64;
    for (l, id) in sub.node_ids.iter().enumerate() {
        let cur = id.0 as i64;
        put_varint(&mut buf, zigzag(cur - prev));
        prev = cur;
        for &x in sub.features.row(l) {
            put_f32(&mut buf, x);
        }
    }
    // Edges: local endpoint indices.
    put_varint(&mut buf, sub.n_edges() as u64);
    let ef_dim = sub.edge_features.as_ref().map_or(0, Matrix::cols);
    put_varint(&mut buf, ef_dim as u64);
    for (i, e) in sub.edges.iter().enumerate() {
        put_varint(&mut buf, u64::from(e.src));
        put_varint(&mut buf, u64::from(e.dst));
        put_f32(&mut buf, e.weight);
        if let Some(ef) = &sub.edge_features {
            for &x in ef.row(i) {
                put_f32(&mut buf, x);
            }
        }
    }
    buf
}

/// Decode [`encode_graph_feature_compact`] output.
pub fn decode_graph_feature_compact(mut input: &[u8]) -> Result<Subgraph, CodecError> {
    let r = &mut input;
    let n_targets = get_varint(r)? as usize;
    if n_targets > r.len() {
        return Err(CodecError(format!("{n_targets} targets exceed input")));
    }
    let mut target_locals = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        target_locals.push(get_varint(r)? as u32);
    }
    let n_nodes = get_varint(r)? as usize;
    let f_dim = get_varint(r)? as usize;
    if n_nodes.saturating_mul(1 + 4 * f_dim) > r.len() {
        return Err(CodecError(format!("node section ({n_nodes}×{f_dim}) exceeds input of {}", r.len())));
    }
    let mut node_ids = Vec::with_capacity(n_nodes);
    let mut features = Matrix::zeros(n_nodes, f_dim);
    let mut prev = 0i64;
    for l in 0..n_nodes {
        let delta = unzigzag(get_varint(r)?);
        prev = prev.wrapping_add(delta);
        if prev < 0 {
            return Err(CodecError(format!("negative node id at {l}")));
        }
        node_ids.push(NodeId(prev as u64));
        for c in 0..f_dim {
            features[(l, c)] = get_f32(r)?;
        }
    }
    let n_edges = get_varint(r)? as usize;
    let ef_dim = get_varint(r)? as usize;
    if n_edges.saturating_mul(6 + 4 * ef_dim) > r.len() {
        return Err(CodecError(format!("edge section ({n_edges}×{ef_dim}) exceeds input of {}", r.len())));
    }
    let mut edges = Vec::with_capacity(n_edges);
    let mut edge_features = (ef_dim > 0).then(|| Matrix::zeros(n_edges, ef_dim));
    for i in 0..n_edges {
        let src = get_varint(r)? as u32;
        let dst = get_varint(r)? as u32;
        let weight = get_f32(r)?;
        edges.push(SubEdge { src, dst, weight });
        if let Some(efm) = &mut edge_features {
            for c in 0..ef_dim {
                efm[(i, c)] = get_f32(r)?;
            }
        }
    }
    if !r.is_empty() {
        return Err(CodecError(format!("{} trailing bytes", r.len())));
    }
    let sub = Subgraph { target_locals, node_ids, features, edges, edge_features };
    sub.validate().map_err(CodecError)?;
    Ok(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphfeature::encode_graph_feature;
    use agl_tensor::{seeded_rng, Rng};

    fn sample(n: u64) -> Subgraph {
        // Clustered ids like a real neighborhood.
        let node_ids: Vec<NodeId> = (0..n).map(|i| NodeId(1_000_000 + i * 3)).collect();
        let features = Matrix::from_vec(n as usize, 4, (0..n as usize * 4).map(|i| i as f32 * 0.1).collect());
        let mut edges = Vec::new();
        for i in 1..n as u32 {
            edges.push(SubEdge { src: i, dst: 0, weight: 1.0 });
        }
        Subgraph { target_locals: vec![0], node_ids, features, edges, edge_features: None }
    }

    #[test]
    fn varint_roundtrip_known_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r: &[u8] = &buf;
            assert_eq!(get_varint(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(unzigzag(zigzag(-123456)), -123456);
    }

    #[test]
    fn compact_roundtrip() {
        let s = sample(40);
        let back = decode_graph_feature_compact(&encode_graph_feature_compact(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn compact_is_smaller_than_plain() {
        let s = sample(200);
        let plain = encode_graph_feature(&s).len();
        let compact = encode_graph_feature_compact(&s).len();
        assert!((compact as f64) < (plain as f64) * 0.75, "compact {compact} vs plain {plain} — expected ≥25% saving");
    }

    #[test]
    fn truncation_rejected() {
        let b = encode_graph_feature_compact(&sample(10));
        for cut in [1, b.len() / 3, b.len() - 1] {
            assert!(decode_graph_feature_compact(&b[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn prop_varint_roundtrip() {
        let mut rng = seeded_rng(0xCAC_0001);
        for _ in 0..256 {
            let v: u64 = rng.gen();
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r: &[u8] = &buf;
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn prop_zigzag_roundtrip() {
        let mut rng = seeded_rng(0xCAC_0002);
        for _ in 0..256 {
            let v = rng.gen::<u64>() as i64;
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn prop_compact_garbage_never_panics() {
        let mut rng = seeded_rng(0xCAC_0003);
        for _ in 0..64 {
            let len = rng.gen_range(0..200usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            let _ = decode_graph_feature_compact(&bytes);
        }
    }

    #[test]
    fn prop_compact_equals_plain_semantics() {
        // Build pseudo-random valid subgraphs and check both codecs agree
        // on the decoded value.
        let mut rng = seeded_rng(0xCAC_0004);
        for _ in 0..32 {
            let n = rng.gen_range(1..30u64);
            let base = rng.gen_range(0..97u64);
            let node_ids: Vec<NodeId> = (0..n).map(|i| NodeId(i * 7 + base)).collect();
            let features = Matrix::from_vec(n as usize, 2, (0..n as usize * 2).map(|i| (i as f32) - 3.0).collect());
            let edges: Vec<SubEdge> = (0..2 * n)
                .map(|_| SubEdge { src: rng.gen_range(0..n) as u32, dst: rng.gen_range(0..n) as u32, weight: 0.5 })
                .collect();
            let s = Subgraph { target_locals: vec![0], node_ids, features, edges, edge_features: None };
            let a = decode_graph_feature_compact(&encode_graph_feature_compact(&s)).unwrap();
            let b = crate::graphfeature::decode_graph_feature(&encode_graph_feature(&s)).unwrap();
            assert_eq!(a, b);
        }
    }
}
