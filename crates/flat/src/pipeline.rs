//! The GraphFlat driver: Map + (K+1)-round Reduce over the MapReduce
//! substrate, producing `<TargetedNodeId, Label, GraphFeature>` triples.
//!
//! Round structure (engine round index in parentheses):
//!
//! * **Join (0)** — attach each node's features to its out-edge rows and
//!   emit the initial self / in-edge / out-edge information. The paper
//!   presents Map as already emitting in-edge info carrying *"the neighbor
//!   node"*'s features; a single-record Map cannot know them, so the join
//!   that industrial pipelines run beforehand is folded in here as the
//!   first Reduce round.
//! * **Merge & propagate (1..=K)** — per §3.2.1: merge self + in-edge info
//!   into the new self info (one more hop of neighborhood), propagate it
//!   along out-edges, keep out-edge info for the next round.
//! * **Storing** — round K emits targeted nodes' GraphFeatures; the driver
//!   unions the partial results of re-indexed hub targets (the tail end of
//!   inverted indexing) and returns the triples.

use crate::builder::SubgraphBuilder;
use crate::graphfeature::{decode_graph_feature, encode_graph_feature};
use crate::messages::{FlatKey, FlatMsg};
use crate::sampling::SamplingStrategy;
use agl_graph::{EdgeTable, NodeId, NodeTable, Subgraph};
use agl_mapreduce::codec::{get_f32, get_f32s, get_u64, get_u8, put_f32, put_f32s, put_u64, put_u8, Codec};
use agl_mapreduce::hash::fnv1a;
use agl_mapreduce::{
    Counters, DistJob, DistOptions, Endpoint, EngineConfig, FaultPlan, JobConfig, JobError, JobPlan, JobResult,
    MapReduceJob, Mapper, Reducer, SpillMode, WireSig,
};
use agl_tensor::rng::derive_seed;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// GraphFlat configuration — the `-h hops -s sampling_strategy` knobs of the
/// §3.5 command line, plus engine sizing.
#[derive(Debug, Clone)]
pub struct FlatConfig {
    /// K — neighborhood depth (= GNN layers the features must support).
    pub k_hops: usize,
    /// In-edge sampling per reduce group per round.
    pub sampling: SamplingStrategy,
    /// In-degree above which a shuffle key is re-indexed (§3.2.2; the paper
    /// suggests "like 10k"). `usize::MAX` disables re-indexing.
    pub hub_threshold: usize,
    /// Number of sub-keys a hub key is split into.
    pub reindex_fanout: u32,
    pub spill: SpillMode,
    pub fault_plan: FaultPlan,
    /// Shared engine knobs: task counts, parallelism, the sampling seed,
    /// and the observability handle (spans for the driver phases and the
    /// engine's per-round/per-task spans underneath, counters into the
    /// shared registry — disabled by default).
    pub engine: EngineConfig,
}

impl Default for FlatConfig {
    fn default() -> Self {
        Self {
            k_hops: 2,
            sampling: SamplingStrategy::None,
            hub_threshold: usize::MAX,
            reindex_fanout: 4,
            spill: SpillMode::InMemory,
            fault_plan: FaultPlan::none(),
            engine: EngineConfig::default(),
        }
    }
}

impl FlatConfig {
    /// Builder-style seed override (writes `engine.seed`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Builder-style obs-handle override (writes `engine.obs`).
    pub fn with_obs(mut self, obs: agl_obs::Obs) -> Self {
        self.engine.obs = obs;
        self
    }

    /// Builder-style engine-block override.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Which nodes get a GraphFeature.
#[derive(Debug, Clone)]
pub enum TargetSpec {
    /// Every node in the node table (inference over the whole graph).
    All,
    /// An explicit id list (the labeled training/validation/test nodes —
    /// the paper's observation that "the amount of labeled nodes is
    /// limited" is what makes storing their GraphFeatures cheap).
    Ids(Vec<NodeId>),
}

/// One training triple `<TargetedNodeId, Label, GraphFeature>` (§3.3.1).
#[derive(Debug, Clone)]
pub struct TrainingExample {
    pub target: NodeId,
    pub label: Vec<f32>,
    /// Flattened k-hop neighborhood (decode with
    /// [`crate::graphfeature::decode_graph_feature`]).
    pub graph_feature: Vec<u8>,
}

/// GraphFlat result.
#[derive(Debug)]
pub struct FlatOutput {
    /// Triples sorted by target id.
    pub examples: Vec<TrainingExample>,
    /// Engine + pipeline counters.
    pub counters: Counters,
}

/// The GraphFlat pipeline (see crate docs).
#[derive(Debug, Clone)]
pub struct GraphFlat {
    cfg: FlatConfig,
}

// ---- input record encoding (what "sits in the warehouse tables") ----

const REC_NODE: u8 = 0;
const REC_EDGE: u8 = 1;

fn encode_node_record(id: NodeId, features: &[f32], is_target: bool, label: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(13 + 4 * (features.len() + label.len()));
    put_u8(&mut buf, REC_NODE);
    put_u64(&mut buf, id.0);
    put_f32s(&mut buf, features);
    put_u8(&mut buf, u8::from(is_target));
    put_f32s(&mut buf, label);
    buf
}

fn encode_edge_record(src: NodeId, dst: NodeId, weight: f32, efeat: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(21 + 4 * efeat.len());
    put_u8(&mut buf, REC_EDGE);
    put_u64(&mut buf, src.0);
    put_u64(&mut buf, dst.0);
    put_f32(&mut buf, weight);
    put_f32s(&mut buf, efeat);
    buf
}

/// Decode a record this pipeline itself encoded. The [`Mapper`]/[`Reducer`]
/// contract has no error channel, and a decode failure of self-encoded
/// bytes means an engine invariant broke — aborting the task is the only
/// correct response, and the retry machinery reports it as a task failure.
fn must<T>(r: Result<T, agl_mapreduce::codec::CodecError>, what: &str) -> T {
    match r {
        Ok(v) => v,
        // agl-lint: allow(no-panic) — self-encoded record failed to decode: engine bug, and no error channel exists here.
        Err(e) => panic!("corrupt {what}: {e}"),
    }
}

/// Shared routing state: which keys are hubs, and the re-index fanout.
#[derive(Debug)]
struct Routing {
    hubs: HashSet<u64>,
    fanout: u32,
}

impl Routing {
    /// Key for a message *about* `member` heading to node `id`.
    fn key_for(&self, id: u64, member: u64) -> FlatKey {
        if self.hubs.contains(&id) {
            FlatKey::reindexed(id, member, self.fanout)
        } else {
            FlatKey::plain(id)
        }
    }

    /// All suffix groups of `id` (one for non-hubs).
    fn all_groups(&self, id: u64) -> Vec<FlatKey> {
        if self.hubs.contains(&id) {
            (0..self.fanout).map(|s| FlatKey { id, suffix: s }).collect()
        } else {
            vec![FlatKey::plain(id)]
        }
    }
}

struct FlatMapper {
    routing: Arc<Routing>,
}

impl Mapper for FlatMapper {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let mut r = input;
        match must(get_u8(&mut r), "record tag") {
            REC_NODE => {
                let id = must(get_u64(&mut r), "node id");
                let features = must(get_f32s(&mut r), "node features");
                let is_target = must(get_u8(&mut r), "target flag") != 0;
                let label = must(get_f32s(&mut r), "node label");
                let msg = FlatMsg::NodeRow { features, is_target, label }.to_bytes();
                // Replicate to every suffix group so each re-indexed piece
                // of a hub key has the node's own information.
                for key in self.routing.all_groups(id) {
                    emit(key.to_bytes(), msg.clone());
                }
            }
            REC_EDGE => {
                let src = must(get_u64(&mut r), "edge src");
                let dst = must(get_u64(&mut r), "edge dst");
                let weight = must(get_f32(&mut r), "edge weight");
                let efeat = must(get_f32s(&mut r), "edge features");
                // Keyed by source for the join round; spread over the
                // source's groups by destination.
                let key = self.routing.key_for(src, dst);
                emit(key.to_bytes(), FlatMsg::EdgeBySrc { dst, weight, efeat }.to_bytes());
            }
            // agl-lint: allow(no-panic) — inputs are produced by encode_node_record/encode_edge_record above.
            t => panic!("unknown input record tag {t}"),
        }
    }
}

struct FlatReducer {
    routing: Arc<Routing>,
    k_hops: usize,
    sampling: SamplingStrategy,
    seed: u64,
    counters: Counters,
}

impl FlatReducer {
    /// Leaf subgraph: just the node itself (the 0-hop neighborhood).
    fn leaf(id: u64, features: &[f32]) -> Vec<u8> {
        let sub = Subgraph {
            target_locals: vec![0],
            node_ids: vec![NodeId(id)],
            features: agl_tensor::Matrix::from_vec(1, features.len(), features.to_vec()),
            edges: vec![],
            edge_features: None,
        };
        encode_graph_feature(&sub)
    }
}

impl Reducer for FlatReducer {
    fn reduce(
        &self,
        round: usize,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
    ) {
        let k = must(FlatKey::from_bytes(key), "flat key");
        // Bucket the group's messages by kind.
        let mut node_row: Option<(Vec<f32>, bool, Vec<f32>)> = None;
        let mut edges_by_src: Vec<(u64, f32, Vec<f32>)> = Vec::new();
        let mut selfs: Vec<(Vec<u8>, bool, Vec<f32>)> = Vec::new();
        let mut in_edges: Vec<(u64, f32, Vec<f32>, Vec<u8>)> = Vec::new();
        let mut out_edges: Vec<(u64, f32, Vec<f32>)> = Vec::new();
        for v in values {
            match must(FlatMsg::from_bytes(v), "flat message") {
                FlatMsg::NodeRow { features, is_target, label } => {
                    node_row.get_or_insert((features, is_target, label));
                }
                FlatMsg::EdgeBySrc { dst, weight, efeat } => edges_by_src.push((dst, weight, efeat)),
                FlatMsg::SelfInfo { sub, is_target, label } => selfs.push((sub, is_target, label)),
                FlatMsg::InEdge { src, weight, efeat, sub } => in_edges.push((src, weight, efeat, sub)),
                FlatMsg::OutEdge { dst, weight, efeat } => out_edges.push((dst, weight, efeat)),
                // agl-lint: allow(no-panic) — Final is only emitted under a plain key in the last round.
                FlatMsg::Final { .. } => panic!("Final record re-entered the pipeline"),
            }
        }

        if round == 0 {
            // ---- Join round ----
            let Some((features, is_target, label)) = node_row else {
                // Edges whose source never appeared in the node table.
                self.counters.add("flat.dangling_edge_sources", edges_by_src.len() as u64);
                return;
            };
            let leaf = Self::leaf(k.id, &features);
            if self.k_hops == 0 {
                if is_target {
                    emit(FlatKey::plain(k.id).to_bytes(), FlatMsg::Final { sub: leaf, label }.to_bytes());
                }
                return;
            }
            emit(key.to_vec(), FlatMsg::encode_self_info(&leaf, is_target, &label));
            for (dst, weight, efeat) in &edges_by_src {
                let in_key = self.routing.key_for(*dst, k.id);
                emit(in_key.to_bytes(), FlatMsg::encode_in_edge(k.id, *weight, efeat, &leaf));
                // agl-lint: allow(no-hot-alloc) — the emit contract takes an owned key; this is the record key itself.
                emit(key.to_vec(), FlatMsg::encode_out_edge(*dst, *weight, efeat));
            }
            return;
        }

        // ---- Merge & propagate round (1..=K) ----
        if selfs.is_empty() {
            // In-edge info addressed to a node missing from the node table.
            self.counters.add("flat.dangling_edge_destinations", in_edges.len() as u64);
            return;
        }
        let is_target = selfs.iter().any(|(_, t, _)| *t);
        let label = selfs.iter().map(|(_, _, l)| l).find(|l| !l.is_empty()).cloned().unwrap_or_default();
        // Load-balance observability: the largest in-edge group any reducer
        // had to merge this job — re-indexing exists to shrink this.
        self.counters.record_max("flat.max_group_in_edges", in_edges.len() as u64);

        // Sampling framework: cap this group's in-edge records. The
        // candidate list is canonicalised (sorted by source id, with full
        // tie-breaks so parallel edges from one source order the same way
        // no matter how the shuffle delivered them) and the seed depends
        // only on the node, so every round — and later GraphInfer —
        // selects the *same* neighbor subset: the property behind §3.4's
        // "unbiased inference with the model trained based on GraphFlat".
        in_edges.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.total_cmp(&b.1))
                .then_with(|| a.2.iter().map(|f| f.to_bits()).cmp(b.2.iter().map(|f| f.to_bits())))
                .then_with(|| a.3.cmp(&b.3))
        });
        let weights: Vec<f32> = in_edges.iter().map(|(_, w, _, _)| *w).collect();
        let sample_seed = derive_seed(self.seed, fnv1a(&k.id.to_le_bytes()));
        let kept = self.sampling.select(&weights, sample_seed);
        if kept.len() < in_edges.len() {
            self.counters.add("flat.sampled_out_in_edges", (in_edges.len() - kept.len()) as u64);
        }

        // Merge: self infos ∪ sampled in-edge payloads + their edges.
        let mut builder = SubgraphBuilder::new();
        for (sub, _, _) in &selfs {
            builder.absorb(&must(decode_graph_feature(sub), "self subgraph"));
        }
        for &i in &kept {
            let (src, weight, efeat, sub) = &in_edges[i];
            builder.absorb(&must(decode_graph_feature(sub), "in-edge payload"));
            let ef = (!efeat.is_empty()).then_some(efeat.as_slice());
            builder.add_edge(NodeId(*src), NodeId(k.id), *weight, ef);
        }
        let merged = builder.build(&[NodeId(k.id)]);
        self.counters.add("flat.merged_nodes", merged.n_nodes() as u64);
        let merged_bytes = encode_graph_feature(&merged);

        if round < self.k_hops {
            emit(key.to_vec(), FlatMsg::encode_self_info(&merged_bytes, is_target, &label));
            for (dst, weight, efeat) in &out_edges {
                let in_key = self.routing.key_for(*dst, k.id);
                emit(in_key.to_bytes(), FlatMsg::encode_in_edge(k.id, *weight, efeat, &merged_bytes));
                // agl-lint: allow(no-hot-alloc) — the emit contract takes an owned key; this is the record key itself.
                emit(key.to_vec(), FlatMsg::encode_out_edge(*dst, *weight, efeat));
            }
        } else if is_target {
            // Storing step: inverted indexing — emit under the original key.
            emit(FlatKey::plain(k.id).to_bytes(), FlatMsg::Final { sub: merged_bytes, label }.to_bytes());
        }
    }
}

/// Everything a shuffle-worker process needs to rebuild this job's
/// [`Reducer`]: the `-h/-s` knobs plus the routing table (hub set and
/// re-index fanout), serialised as the `DistJob` init spec. The hub list is
/// sorted so the spec bytes — and therefore the whole distributed job — are
/// deterministic for a given graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatWorkerSpec {
    /// K — neighborhood depth.
    pub k_hops: usize,
    /// In-edge sampling per reduce group per round.
    pub sampling: SamplingStrategy,
    /// Seed for the sampling framework.
    pub seed: u64,
    /// Re-index fanout for hub keys.
    pub fanout: u32,
    /// Hub node ids, ascending.
    pub hubs: Vec<u64>,
}

const SAMP_NONE: u8 = 0;
const SAMP_UNIFORM: u8 = 1;
const SAMP_WEIGHTED: u8 = 2;
const SAMP_TOPK: u8 = 3;

impl Codec for FlatWorkerSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.k_hops as u64);
        match self.sampling {
            SamplingStrategy::None => {
                put_u8(buf, SAMP_NONE);
                put_u64(buf, 0);
            }
            SamplingStrategy::Uniform { max_degree } => {
                put_u8(buf, SAMP_UNIFORM);
                put_u64(buf, max_degree as u64);
            }
            SamplingStrategy::Weighted { max_degree } => {
                put_u8(buf, SAMP_WEIGHTED);
                put_u64(buf, max_degree as u64);
            }
            SamplingStrategy::TopK { max_degree } => {
                put_u8(buf, SAMP_TOPK);
                put_u64(buf, max_degree as u64);
            }
        }
        put_u64(buf, self.seed);
        put_u64(buf, u64::from(self.fanout));
        put_u64(buf, self.hubs.len() as u64);
        for h in &self.hubs {
            put_u64(buf, *h);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, agl_mapreduce::codec::CodecError> {
        let k_hops = get_u64(input)? as usize;
        let tag = get_u8(input)?;
        let max_degree = get_u64(input)? as usize;
        let sampling = match tag {
            SAMP_NONE => SamplingStrategy::None,
            SAMP_UNIFORM => SamplingStrategy::Uniform { max_degree },
            SAMP_WEIGHTED => SamplingStrategy::Weighted { max_degree },
            SAMP_TOPK => SamplingStrategy::TopK { max_degree },
            t => return Err(agl_mapreduce::codec::CodecError(format!("unknown sampling tag {t}"))),
        };
        let seed = get_u64(input)?;
        let fanout = get_u64(input)? as u32;
        let n_hubs = get_u64(input)? as usize;
        let mut hubs = Vec::with_capacity(n_hubs);
        for _ in 0..n_hubs {
            hubs.push(get_u64(input)?);
        }
        Ok(Self { k_hops, sampling, seed, fanout, hubs })
    }
}

/// Reducer factory for shuffle-worker processes: decodes a
/// [`FlatWorkerSpec`] shipped by the driver and builds the identical
/// [`Reducer`] the in-process engine would run, reporting pipeline counters
/// into `counters` (which `agl_mapreduce::serve_shuffle` sends back to the
/// driver at shutdown). Pass this to `serve_shuffle`.
pub fn flat_reducer_from_spec(spec: &[u8], counters: &Counters) -> Result<Box<dyn Reducer>, String> {
    let spec = FlatWorkerSpec::from_bytes(spec).map_err(|e| format!("bad GraphFlat worker spec: {e}"))?;
    let routing = Arc::new(Routing { hubs: spec.hubs.iter().copied().collect(), fanout: spec.fanout.max(1) });
    Ok(Box::new(FlatReducer {
        routing,
        k_hops: spec.k_hops,
        sampling: spec.sampling,
        seed: spec.seed,
        counters: counters.clone(),
    }))
}

impl GraphFlat {
    pub fn new(cfg: FlatConfig) -> Self {
        assert!(cfg.reindex_fanout >= 1);
        Self { cfg }
    }

    pub fn config(&self) -> &FlatConfig {
        &self.cfg
    }

    /// Hub detection + input encoding, shared by the in-process and
    /// distributed drivers: returns the routing table, the serialised
    /// warehouse records, and the counters handle the rest of the run
    /// reports into.
    fn prepare(
        &self,
        nodes: &NodeTable,
        edges: &EdgeTable,
        targets: &TargetSpec,
    ) -> (Arc<Routing>, Vec<Vec<u8>>, Counters) {
        let target_set: Option<HashSet<u64>> = match targets {
            TargetSpec::All => None,
            TargetSpec::Ids(ids) => Some(ids.iter().map(|n| n.0).collect()),
        };
        let is_target = |id: NodeId| target_set.as_ref().is_none_or(|s| s.contains(&id.0));

        // Hub detection for re-indexing: in-degree drives merge-round group
        // sizes; out-degree drives the join round. Either qualifies.
        let mut hubs = HashSet::new();
        if self.cfg.hub_threshold != usize::MAX {
            let mut in_deg: HashMap<u64, usize> = HashMap::new();
            let mut out_deg: HashMap<u64, usize> = HashMap::new();
            for (row, _) in edges.iter() {
                *in_deg.entry(row.dst.0).or_default() += 1;
                *out_deg.entry(row.src.0).or_default() += 1;
            }
            for (id, d) in in_deg.iter().chain(out_deg.iter()) {
                if *d > self.cfg.hub_threshold {
                    hubs.insert(*id);
                }
            }
        }
        let routing = Arc::new(Routing { hubs, fanout: self.cfg.reindex_fanout });

        // Serialise the warehouse tables into opaque input records.
        let encode_span = self.cfg.engine.obs.span("driver", "graphflat.encode_inputs");
        let mut inputs = Vec::with_capacity(nodes.len() + edges.len());
        let empty: Vec<f32> = Vec::new();
        for (i, (id, feat)) in nodes.iter().enumerate() {
            let label = nodes.labels().map_or(empty.as_slice(), |l| l.row(i));
            inputs.push(encode_node_record(id, feat, is_target(id), label));
        }
        for (row, ef) in edges.iter() {
            inputs.push(encode_edge_record(row.src, row.dst, row.weight, ef));
        }
        drop(encode_span);

        // With observability on, pipeline counters report into the run's
        // shared registry — the same one the engine writes to.
        let counters = match self.cfg.engine.obs.metrics() {
            Some(m) => Counters::with_registry(m.clone()),
            None => Counters::new(),
        };
        (routing, inputs, counters)
    }

    /// The engine configuration both drivers share.
    fn job_config(&self) -> JobConfig {
        JobConfig {
            map_tasks: self.cfg.engine.map_tasks,
            reduce_tasks: self.cfg.engine.reduce_tasks,
            reduce_rounds: self.cfg.k_hops + 1,
            parallelism: self.cfg.engine.parallelism,
            max_attempts: 4,
            fault_plan: self.cfg.fault_plan.clone(),
            spill: self.cfg.spill.clone(),
            // Every boundary of the K+1 rounds carries FlatKey/FlatMsg
            // records; debug builds verify the chain at construction.
            plan: Some(JobPlan::homogeneous(WireSig("flat-key/flat-msg"), self.cfg.k_hops + 1)),
            verify_determinism: cfg!(debug_assertions),
            metrics_flush_every: 4,
            obs: self.cfg.engine.obs.clone(),
        }
    }

    /// The worker-process spec equivalent to `routing` (hubs sorted for a
    /// deterministic wire image).
    fn worker_spec(&self, routing: &Routing) -> FlatWorkerSpec {
        let mut hubs: Vec<u64> = routing.hubs.iter().copied().collect();
        hubs.sort_unstable();
        FlatWorkerSpec {
            k_hops: self.cfg.k_hops,
            sampling: self.cfg.sampling,
            seed: self.cfg.engine.seed,
            fanout: self.cfg.reindex_fanout,
            hubs,
        }
    }

    /// Run the pipeline over the tables, producing GraphFeatures for the
    /// targets.
    pub fn run(&self, nodes: &NodeTable, edges: &EdgeTable, targets: &TargetSpec) -> Result<FlatOutput, JobError> {
        let mut flat_span = self.cfg.engine.obs.span("driver", "graphflat");
        let (routing, inputs, counters) = self.prepare(nodes, edges, targets);
        let mapper = FlatMapper { routing: routing.clone() };
        let reducer = FlatReducer {
            routing,
            k_hops: self.cfg.k_hops,
            sampling: self.cfg.sampling,
            seed: self.cfg.engine.seed,
            counters: counters.clone(),
        };
        let job = MapReduceJob::new(self.job_config());
        let result = job.run(&inputs, &mapper, &reducer)?;
        self.store(result, counters, &mut flat_span)
    }

    /// Run the *same* pipeline with the reduce work farmed out to shuffle
    /// worker processes at `endpoints` (each running
    /// `agl_mapreduce::serve_shuffle` with [`flat_reducer_from_spec`]).
    /// Output is byte-identical to [`GraphFlat::run`]: the map phase, the
    /// FNV-1a shuffle, the reduce logic (rebuilt from the shipped
    /// [`FlatWorkerSpec`]), and the final assembly order are all shared
    /// code paths.
    pub fn run_distributed(
        &self,
        nodes: &NodeTable,
        edges: &EdgeTable,
        targets: &TargetSpec,
        endpoints: &[Endpoint],
        opts: &DistOptions,
    ) -> Result<FlatOutput, JobError> {
        self.run_distributed_with_hook(nodes, edges, targets, endpoints, opts, None)
    }

    /// [`GraphFlat::run_distributed`] with the `DistJob` fault-injection
    /// hook exposed (fires after each reduce-task dispatch; used by the
    /// kill-a-worker CI suite).
    pub fn run_distributed_with_hook(
        &self,
        nodes: &NodeTable,
        edges: &EdgeTable,
        targets: &TargetSpec,
        endpoints: &[Endpoint],
        opts: &DistOptions,
        on_dispatch: Option<&(dyn Fn(usize) + Sync)>,
    ) -> Result<FlatOutput, JobError> {
        let mut flat_span = self.cfg.engine.obs.span("driver", "graphflat");
        let (routing, inputs, counters) = self.prepare(nodes, edges, targets);
        let spec = self.worker_spec(&routing).to_bytes();
        let mapper = FlatMapper { routing };
        let job = DistJob::new(self.job_config(), opts.clone());
        let result = job.run_with_hook(endpoints, &spec, &inputs, &mapper, on_dispatch)?;
        self.store(result, counters, &mut flat_span)
    }

    /// Storing step: group Final records by target id; union the partial
    /// GraphFeatures of re-indexed hub targets.
    fn store(
        &self,
        result: JobResult,
        counters: Counters,
        flat_span: &mut agl_obs::Span,
    ) -> Result<FlatOutput, JobError> {
        if !self.cfg.engine.obs.is_enabled() {
            // Shared-registry runs already see the engine counters; only
            // detached runs need the merge.
            for (name, v) in result.counters.snapshot() {
                counters.add(&name, v);
            }
        }
        let store_span = self.cfg.engine.obs.span("driver", "graphflat.store");
        let mut by_target: HashMap<u64, (Vec<Subgraph>, Vec<f32>)> = HashMap::new();
        for kv in &result.output {
            let key = FlatKey::from_bytes(&kv.key).map_err(|e| JobError::Corrupt(format!("final key: {e}")))?;
            let msg = FlatMsg::from_bytes(&kv.value).map_err(|e| JobError::Corrupt(format!("final msg: {e}")))?;
            match msg {
                FlatMsg::Final { sub, label } => {
                    let sub =
                        decode_graph_feature(&sub).map_err(|e| JobError::Corrupt(format!("final subgraph: {e}")))?;
                    let entry = by_target.entry(key.id).or_insert_with(|| (Vec::new(), label));
                    entry.0.push(sub);
                }
                other => return Err(JobError::Corrupt(format!("unexpected output record {other:?}"))),
            }
        }
        let mut examples: Vec<TrainingExample> = by_target
            .into_iter()
            .map(|(id, (subs, label))| {
                let graph_feature = if subs.len() == 1 {
                    encode_graph_feature(&subs[0])
                } else {
                    counters.add("flat.hub_partials_merged", subs.len() as u64);
                    let mut b = SubgraphBuilder::new();
                    for s in &subs {
                        b.absorb(s);
                    }
                    encode_graph_feature(&b.build(&[NodeId(id)]))
                };
                TrainingExample { target: NodeId(id), label, graph_feature }
            })
            .collect();
        examples.sort_by_key(|e| e.target);
        drop(store_span);
        counters.add("flat.examples", examples.len() as u64);
        flat_span.counter("examples", examples.len() as u64);
        Ok(FlatOutput { examples, counters })
    }
}
