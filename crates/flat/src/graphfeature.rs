//! The GraphFeature byte format — the flattened k-hop neighborhood.
//!
//! The paper serialises neighborhoods to protobuf strings; we use the
//! repository's length-prefixed binary codec (DESIGN.md documents the
//! substitution). Node ids inside the encoding are *global*; decoding
//! assigns local indices in encoding order, with targets first.

use agl_graph::{NodeId, SubEdge, Subgraph};
use agl_mapreduce::codec::{get_f32, get_f32s, get_u32, get_u64, put_f32, put_f32s, put_u32, put_u64, CodecError};
use agl_tensor::Matrix;
use std::collections::HashMap;

/// Encode a [`Subgraph`] into a flat GraphFeature byte string.
pub fn encode_graph_feature(sub: &Subgraph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + sub.n_nodes() * (8 + 4 * sub.features.cols()) + sub.n_edges() * 20);
    // Targets (global ids).
    put_u32(&mut buf, sub.target_locals.len() as u32);
    for &t in &sub.target_locals {
        put_u64(&mut buf, sub.node_ids[t as usize].0);
    }
    // Nodes.
    put_u32(&mut buf, sub.n_nodes() as u32);
    put_u32(&mut buf, sub.features.cols() as u32);
    for (l, id) in sub.node_ids.iter().enumerate() {
        put_u64(&mut buf, id.0);
        for &x in sub.features.row(l) {
            put_f32(&mut buf, x);
        }
    }
    // Edges (global endpoint ids).
    put_u32(&mut buf, sub.n_edges() as u32);
    let ef_dim = sub.edge_features.as_ref().map_or(0, Matrix::cols);
    put_u32(&mut buf, ef_dim as u32);
    for (i, e) in sub.edges.iter().enumerate() {
        put_u64(&mut buf, sub.node_ids[e.src as usize].0);
        put_u64(&mut buf, sub.node_ids[e.dst as usize].0);
        put_f32(&mut buf, e.weight);
        if let Some(ef) = &sub.edge_features {
            put_f32s(&mut buf, ef.row(i));
        }
    }
    buf
}

/// Decode a GraphFeature produced by [`encode_graph_feature`].
///
/// Local indices are assigned in stored-node order; targets keep whatever
/// position the encoder stored them at (GraphFlat stores targets first).
pub fn decode_graph_feature(mut input: &[u8]) -> Result<Subgraph, CodecError> {
    let r = &mut input;
    let n_targets = get_u32(r)? as usize;
    if n_targets.saturating_mul(8) > r.len() {
        return Err(CodecError(format!("target section ({n_targets}) exceeds input of {} bytes", r.len())));
    }
    let mut target_ids = Vec::with_capacity(n_targets);
    for _ in 0..n_targets {
        target_ids.push(NodeId(get_u64(r)?));
    }
    let n_nodes = get_u32(r)? as usize;
    let f_dim = get_u32(r)? as usize;
    // Guard allocations against corrupt counts: every node costs at least
    // 8 + 4*f_dim bytes of remaining input.
    if n_nodes.saturating_mul(8 + 4 * f_dim) > r.len() {
        return Err(CodecError(format!("node section ({n_nodes}×{f_dim}) exceeds input of {} bytes", r.len())));
    }
    let mut node_ids = Vec::with_capacity(n_nodes);
    let mut features = Matrix::zeros(n_nodes, f_dim);
    let mut local_of: HashMap<u64, u32> = HashMap::with_capacity(n_nodes);
    for l in 0..n_nodes {
        let id = get_u64(r)?;
        if local_of.insert(id, l as u32).is_some() {
            return Err(CodecError(format!("duplicate node id {id}")));
        }
        node_ids.push(NodeId(id));
        for c in 0..f_dim {
            features[(l, c)] = get_f32(r)?;
        }
    }
    let n_edges = get_u32(r)? as usize;
    let ef_dim = get_u32(r)? as usize;
    if n_edges.saturating_mul(20 + if ef_dim > 0 { 4 + 4 * ef_dim } else { 0 }) > r.len() {
        return Err(CodecError(format!("edge section ({n_edges}×{ef_dim}) exceeds input of {} bytes", r.len())));
    }
    let mut edges = Vec::with_capacity(n_edges);
    let mut edge_features = if ef_dim > 0 { Some(Matrix::zeros(n_edges, ef_dim)) } else { None };
    for i in 0..n_edges {
        let src = get_u64(r)?;
        let dst = get_u64(r)?;
        let w = get_f32(r)?;
        let lookup = |id: u64| {
            local_of.get(&id).copied().ok_or_else(|| CodecError(format!("edge references unknown node {id}")))
        };
        edges.push(SubEdge { src: lookup(src)?, dst: lookup(dst)?, weight: w });
        if let Some(efm) = &mut edge_features {
            let row = get_f32s(r)?;
            if row.len() != ef_dim {
                return Err(CodecError(format!("edge feature width {} != {ef_dim}", row.len())));
            }
            efm.row_mut(i).copy_from_slice(&row);
        }
    }
    if !r.is_empty() {
        return Err(CodecError(format!("{} trailing bytes", r.len())));
    }
    let target_locals = target_ids
        .iter()
        .map(|t| local_of.get(&t.0).copied().ok_or_else(|| CodecError(format!("target {t} not among nodes"))))
        .collect::<Result<Vec<_>, _>>()?;
    let sub = Subgraph { target_locals, node_ids, features, edges, edge_features };
    sub.validate().map_err(CodecError)?;
    Ok(sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::{seeded_rng, Rng};

    fn sample(with_ef: bool) -> Subgraph {
        Subgraph {
            target_locals: vec![0],
            node_ids: vec![NodeId(100), NodeId(7), NodeId(33)],
            features: Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]),
            edges: vec![
                SubEdge { src: 1, dst: 0, weight: 1.5 },
                SubEdge { src: 2, dst: 0, weight: 0.5 },
                SubEdge { src: 2, dst: 1, weight: 1.0 },
            ],
            edge_features: with_ef.then(|| Matrix::from_rows(&[&[9.0], &[8.0], &[7.0]])),
        }
    }

    #[test]
    fn roundtrip_without_edge_features() {
        let s = sample(false);
        let back = decode_graph_feature(&encode_graph_feature(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn roundtrip_with_edge_features() {
        let s = sample(true);
        let back = decode_graph_feature(&encode_graph_feature(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn truncated_rejected() {
        let b = encode_graph_feature(&sample(false));
        for cut in [1, b.len() / 2, b.len() - 1] {
            assert!(decode_graph_feature(&b[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_subgraph_single_node() {
        let s = Subgraph {
            target_locals: vec![0],
            node_ids: vec![NodeId(5)],
            features: Matrix::from_rows(&[&[0.5]]),
            edges: vec![],
            edge_features: None,
        };
        let back = decode_graph_feature(&encode_graph_feature(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn prop_roundtrip_random_subgraphs() {
        let mut rng = seeded_rng(0x6F_0001);
        for _ in 0..32 {
            // Build a random valid subgraph.
            let n_nodes = rng.gen_range(1..12usize);
            let f_dim = rng.gen_range(1..5usize);
            let node_ids: Vec<NodeId> = (0..n_nodes as u64).map(|i| NodeId(i * 13 + 2)).collect();
            let features =
                Matrix::from_vec(n_nodes, f_dim, (0..n_nodes * f_dim).map(|i| (i as f32) * 0.25 - 1.0).collect());
            let edges: Vec<SubEdge> = (0..n_nodes * 2)
                .map(|_| SubEdge {
                    src: rng.gen_range(0..n_nodes) as u32,
                    dst: rng.gen_range(0..n_nodes) as u32,
                    weight: rng.gen_range(0..100u32) as f32 * 0.01,
                })
                .collect();
            let s = Subgraph { target_locals: vec![0], node_ids, features, edges, edge_features: None };
            let back = decode_graph_feature(&encode_graph_feature(&s)).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn prop_decode_garbage_never_panics() {
        let mut rng = seeded_rng(0x6F_0002);
        for _ in 0..64 {
            let len = rng.gen_range(0..256usize);
            let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
            let _ = decode_graph_feature(&bytes);
        }
    }
}
