//! Subgraph union — the *merging* half of the message-passing scheme.
//!
//! A reduce group merges its self info with the payload subgraphs arriving
//! on in-edges. Nodes are deduplicated by global id (their features are
//! identical by construction); edges by `(src, dst)` endpoint pair.

use agl_graph::{NodeId, SubEdge, Subgraph};
use agl_tensor::Matrix;
use std::collections::HashMap;

/// Incrementally unions subgraphs in global-id space.
#[derive(Debug, Default)]
pub struct SubgraphBuilder {
    local_of: HashMap<u64, u32>,
    node_ids: Vec<NodeId>,
    node_features: Vec<Vec<f32>>,
    f_dim: Option<usize>,
    edge_set: HashMap<(u64, u64), usize>,
    edges: Vec<(u64, u64, f32)>,
    edge_features: Vec<Vec<f32>>,
    ef_dim: Option<usize>,
}

impl SubgraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes so far.
    pub fn n_nodes(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of distinct edges so far.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add (or re-add — idempotent) a node with its feature vector.
    pub fn add_node(&mut self, id: NodeId, features: &[f32]) {
        match self.f_dim {
            Some(d) => assert_eq!(d, features.len(), "inconsistent feature width"),
            None => self.f_dim = Some(features.len()),
        }
        if self.local_of.contains_key(&id.0) {
            return;
        }
        self.local_of.insert(id.0, self.node_ids.len() as u32);
        self.node_ids.push(id);
        self.node_features.push(features.to_vec());
    }

    /// True if the node is already present.
    pub fn has_node(&self, id: NodeId) -> bool {
        self.local_of.contains_key(&id.0)
    }

    /// Add (or re-add — idempotent) a directed edge in global ids. Both
    /// endpoints must already be present.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f32, edge_features: Option<&[f32]>) {
        assert!(self.has_node(src), "edge source {src} not added");
        assert!(self.has_node(dst), "edge destination {dst} not added");
        if let Some(ef) = edge_features {
            match self.ef_dim {
                Some(d) => assert_eq!(d, ef.len(), "inconsistent edge feature width"),
                None => self.ef_dim = Some(ef.len()),
            }
        }
        if self.edge_set.contains_key(&(src.0, dst.0)) {
            return;
        }
        self.edge_set.insert((src.0, dst.0), self.edges.len());
        self.edges.push((src.0, dst.0, weight));
        self.edge_features.push(edge_features.map(<[f32]>::to_vec).unwrap_or_default());
    }

    /// Union a whole subgraph (nodes first, then edges).
    pub fn absorb(&mut self, sub: &Subgraph) {
        for (l, id) in sub.node_ids.iter().enumerate() {
            self.add_node(*id, sub.features.row(l));
        }
        for (i, e) in sub.edges.iter().enumerate() {
            let ef = sub.edge_features.as_ref().map(|m| m.row(i));
            self.add_edge(sub.node_ids[e.src as usize], sub.node_ids[e.dst as usize], e.weight, ef);
        }
    }

    /// Finish, declaring `targets` (must all be present). Node order is
    /// targets first, then remaining nodes sorted by global id for
    /// determinism across merge orders.
    pub fn build(self, targets: &[NodeId]) -> Subgraph {
        let f_dim = self.f_dim.unwrap_or(0);
        let mut is_target: HashMap<u64, usize> = HashMap::with_capacity(targets.len());
        for (i, t) in targets.iter().enumerate() {
            assert!(self.local_of.contains_key(&t.0), "target {t} not in subgraph");
            is_target.insert(t.0, i);
        }
        let mut rest: Vec<u32> = (0..self.node_ids.len() as u32)
            .filter(|l| !is_target.contains_key(&self.node_ids[*l as usize].0))
            .collect();
        rest.sort_unstable_by_key(|&l| self.node_ids[l as usize]);
        let mut order: Vec<u32> = Vec::with_capacity(self.node_ids.len());
        for t in targets {
            order.push(self.local_of[&t.0]);
        }
        order.extend(rest);

        let mut new_local = HashMap::with_capacity(order.len());
        let mut node_ids = Vec::with_capacity(order.len());
        let mut features = Matrix::zeros(order.len(), f_dim);
        for (new, &old) in order.iter().enumerate() {
            let id = self.node_ids[old as usize];
            new_local.insert(id.0, new as u32);
            node_ids.push(id);
            features.row_mut(new).copy_from_slice(&self.node_features[old as usize]);
        }
        // Deterministic edge order: sort by (dst, src) global ids.
        let mut edge_order: Vec<usize> = (0..self.edges.len()).collect();
        edge_order.sort_unstable_by_key(|&i| (self.edges[i].1, self.edges[i].0));
        let edges: Vec<SubEdge> = edge_order
            .iter()
            .map(|&i| {
                let (s, d, w) = self.edges[i];
                SubEdge { src: new_local[&s], dst: new_local[&d], weight: w }
            })
            .collect();
        let edge_features = self.ef_dim.map(|d| {
            let mut m = Matrix::zeros(edges.len(), d);
            for (new, &old) in edge_order.iter().enumerate() {
                if !self.edge_features[old].is_empty() {
                    m.row_mut(new).copy_from_slice(&self.edge_features[old]);
                }
            }
            m
        });
        Subgraph { target_locals: (0..targets.len() as u32).collect(), node_ids, features, edges, edge_features }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(id: u64, feat: f32) -> Subgraph {
        Subgraph {
            target_locals: vec![0],
            node_ids: vec![NodeId(id)],
            features: Matrix::from_rows(&[&[feat]]),
            edges: vec![],
            edge_features: None,
        }
    }

    #[test]
    fn absorb_is_idempotent() {
        let mut b = SubgraphBuilder::new();
        let s = leaf(1, 0.5);
        b.absorb(&s);
        b.absorb(&s);
        assert_eq!(b.n_nodes(), 1);
        let out = b.build(&[NodeId(1)]);
        assert_eq!(out.n_nodes(), 1);
        assert_eq!(out.features.row(0), &[0.5]);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let build = |order: &[u64]| {
            let mut b = SubgraphBuilder::new();
            for &id in order {
                b.add_node(NodeId(id), &[id as f32]);
            }
            b.add_edge(NodeId(2), NodeId(1), 1.0, None);
            b.add_edge(NodeId(3), NodeId(1), 1.0, None);
            b.build(&[NodeId(1)])
        };
        let a = build(&[1, 2, 3]);
        let b = build(&[3, 1, 2]);
        assert_eq!(a, b, "deterministic regardless of insertion order");
        assert_eq!(a.node_ids[0], NodeId(1), "target first");
    }

    #[test]
    fn duplicate_edges_union_once() {
        let mut b = SubgraphBuilder::new();
        b.add_node(NodeId(1), &[0.0]);
        b.add_node(NodeId(2), &[0.0]);
        b.add_edge(NodeId(2), NodeId(1), 1.0, None);
        b.add_edge(NodeId(2), NodeId(1), 1.0, None);
        assert_eq!(b.n_edges(), 1);
        // Reverse direction is a distinct edge.
        b.add_edge(NodeId(1), NodeId(2), 1.0, None);
        assert_eq!(b.n_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "not added")]
    fn edge_without_endpoint_panics() {
        let mut b = SubgraphBuilder::new();
        b.add_node(NodeId(1), &[0.0]);
        b.add_edge(NodeId(2), NodeId(1), 1.0, None);
    }

    #[test]
    #[should_panic(expected = "not in subgraph")]
    fn build_with_missing_target_panics() {
        let b = SubgraphBuilder::new();
        let _ = b.build(&[NodeId(9)]);
    }

    #[test]
    fn edge_features_preserved_through_union() {
        let mut b = SubgraphBuilder::new();
        b.add_node(NodeId(1), &[0.0]);
        b.add_node(NodeId(2), &[0.0]);
        b.add_node(NodeId(3), &[0.0]);
        b.add_edge(NodeId(2), NodeId(1), 1.0, Some(&[7.0]));
        b.add_edge(NodeId(3), NodeId(1), 1.0, Some(&[8.0]));
        let s = b.build(&[NodeId(1)]);
        let ef = s.edge_features.as_ref().unwrap();
        // Edges sorted by (dst, src) global ids: (1<-2) then (1<-3).
        assert_eq!(ef.row(0), &[7.0]);
        assert_eq!(ef.row(1), &[8.0]);
    }
}
