//! The GraphFeature store — §3.2.1's *"flattened to a protobuf string and
//! stored on a distributed file system"*, §3.3's workers that *"read a
//! batch of training data from the disks"*.
//!
//! Triples are written to `shards` append-only files (`part-NNNNN.agl`)
//! with a length-prefixed record format, routed by hash of the target id —
//! the same layout a DFS directory would have. Readers can open the whole
//! store or a single shard; a training worker reads *only its own shards*,
//! which is exactly how GraphTrainer partitions work without coordination.

use crate::pipeline::TrainingExample;
use agl_graph::NodeId;
use agl_mapreduce::hash::partition;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Store-level errors.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt store: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

const MAGIC_RAW: &[u8; 8] = b"AGLSTOR1";
const MAGIC_COMPACT: &[u8; 8] = b"AGLSTOR2";

/// On-disk GraphFeature encoding. `Compact` transcodes through the varint +
/// delta codec of [`crate::compact`] (≈25–60 % smaller), transparently
/// restoring the plain format on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    #[default]
    Raw,
    Compact,
}

/// A sharded on-disk GraphFeature store.
#[derive(Debug, Clone)]
pub struct FeatureStore {
    dir: PathBuf,
    shards: usize,
    format: StoreFormat,
}

impl FeatureStore {
    /// Write `examples` into `dir` across `shards` files, replacing any
    /// existing store there.
    pub fn create(dir: impl AsRef<Path>, shards: usize, examples: &[TrainingExample]) -> Result<Self, StoreError> {
        Self::create_with_format(dir, shards, examples, StoreFormat::Raw)
    }

    /// [`FeatureStore::create`] with an explicit on-disk format.
    pub fn create_with_format(
        dir: impl AsRef<Path>,
        shards: usize,
        examples: &[TrainingExample],
        format: StoreFormat,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let shards = shards.max(1);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        fs::create_dir_all(&dir)?;
        let magic = match format {
            StoreFormat::Raw => MAGIC_RAW,
            StoreFormat::Compact => MAGIC_COMPACT,
        };
        let mut writers: Vec<BufWriter<File>> = (0..shards)
            .map(|s| {
                let f = File::create(dir.join(format!("part-{s:05}.agl")))?;
                let mut w = BufWriter::new(f);
                w.write_all(magic)?;
                Ok::<_, StoreError>(w)
            })
            .collect::<Result<_, _>>()?;
        for ex in examples {
            let s = partition(&ex.target.0.to_le_bytes(), shards);
            let w = &mut writers[s];
            let payload: Vec<u8> = match format {
                StoreFormat::Raw => ex.graph_feature.clone(),
                StoreFormat::Compact => {
                    let sub = crate::graphfeature::decode_graph_feature(&ex.graph_feature)
                        .map_err(|e| StoreError::Corrupt(e.to_string()))?;
                    crate::compact::encode_graph_feature_compact(&sub)
                }
            };
            w.write_all(&ex.target.0.to_le_bytes())?;
            w.write_all(&(ex.label.len() as u32).to_le_bytes())?;
            for &l in &ex.label {
                w.write_all(&l.to_le_bytes())?;
            }
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&payload)?;
        }
        for mut w in writers {
            w.flush()?;
        }
        Ok(Self { dir, shards, format })
    }

    /// Open an existing store (format auto-detected from the file header).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mut shards = 0;
        while dir.join(format!("part-{shards:05}.agl")).exists() {
            shards += 1;
        }
        if shards == 0 {
            return Err(StoreError::Corrupt(format!("no part files under {}", dir.display())));
        }
        let mut header = [0u8; 8];
        let mut f = File::open(dir.join("part-00000.agl"))?;
        f.read_exact(&mut header)?;
        let format = match &header {
            m if m == MAGIC_RAW => StoreFormat::Raw,
            m if m == MAGIC_COMPACT => StoreFormat::Compact,
            _ => return Err(StoreError::Corrupt("unknown store format".into())),
        };
        Ok(Self { dir, shards, format })
    }

    /// The on-disk format of this store.
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    pub fn n_shards(&self) -> usize {
        self.shards
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stream one shard's triples record by record: the reader holds one
    /// record resident at a time, never the shard — the bounded-memory
    /// ingest `agl-cli infer-stream` and large-store consumers are built
    /// on. Record order matches [`FeatureStore::read_shard`] exactly.
    pub fn stream_shard(&self, shard: usize) -> Result<ShardIter, StoreError> {
        assert!(shard < self.shards, "shard {shard} of {}", self.shards);
        let path = self.dir.join(format!("part-{shard:05}.agl"));
        let mut r = BufReader::new(File::open(&path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let expected = match self.format {
            StoreFormat::Raw => MAGIC_RAW,
            StoreFormat::Compact => MAGIC_COMPACT,
        };
        if &magic != expected {
            return Err(StoreError::Corrupt(format!("{}: bad magic", path.display())));
        }
        Ok(ShardIter { reader: r, format: self.format, done: false })
    }

    /// Stream every shard in shard order (record order matches
    /// [`FeatureStore::read_all`] — deterministic). Shards are opened
    /// lazily, one at a time.
    pub fn stream_all(&self) -> impl Iterator<Item = Result<TrainingExample, StoreError>> + '_ {
        (0..self.shards).flat_map(move |s| match self.stream_shard(s) {
            Ok(it) => Box::new(it) as Box<dyn Iterator<Item = Result<TrainingExample, StoreError>>>,
            Err(e) => Box::new(std::iter::once(Err(e))),
        })
    }

    /// Read one shard's triples.
    pub fn read_shard(&self, shard: usize) -> Result<Vec<TrainingExample>, StoreError> {
        self.stream_shard(shard)?.collect()
    }

    /// Read every shard (shard order, then record order — deterministic).
    pub fn read_all(&self) -> Result<Vec<TrainingExample>, StoreError> {
        self.stream_all().collect()
    }

    /// The shards assigned to worker `w` of `n_workers` — the static data
    /// partition a GraphTrainer worker owns.
    pub fn worker_shards(&self, w: usize, n_workers: usize) -> Vec<usize> {
        (0..self.shards).filter(|s| s % n_workers == w).collect()
    }

    /// Total bytes on disk.
    pub fn disk_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0;
        for s in 0..self.shards {
            total += fs::metadata(self.dir.join(format!("part-{s:05}.agl")))?.len();
        }
        Ok(total)
    }

    /// Delete the store directory.
    pub fn remove(self) -> Result<(), StoreError> {
        fs::remove_dir_all(&self.dir)?;
        Ok(())
    }
}

/// Streaming reader over one shard file — see
/// [`FeatureStore::stream_shard`]. Ends the stream after the first error
/// (a truncated or corrupt shard yields one `Err` and then `None`).
pub struct ShardIter {
    reader: BufReader<File>,
    format: StoreFormat,
    done: bool,
}

impl ShardIter {
    fn read_record(&mut self) -> Result<Option<TrainingExample>, StoreError> {
        let mut id8 = [0u8; 8];
        match self.reader.read_exact(&mut id8) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let mut len4 = [0u8; 4];
        self.reader.read_exact(&mut len4)?;
        let label_len = u32::from_le_bytes(len4) as usize;
        let mut label = Vec::with_capacity(label_len);
        for _ in 0..label_len {
            let mut f4 = [0u8; 4];
            self.reader.read_exact(&mut f4)?;
            label.push(f32::from_le_bytes(f4));
        }
        self.reader.read_exact(&mut len4)?;
        let gf_len = u32::from_le_bytes(len4) as usize;
        let mut graph_feature = vec![0u8; gf_len];
        self.reader.read_exact(&mut graph_feature)?;
        if self.format == StoreFormat::Compact {
            let sub = crate::compact::decode_graph_feature_compact(&graph_feature)
                .map_err(|e| StoreError::Corrupt(e.to_string()))?;
            graph_feature = crate::graphfeature::encode_graph_feature(&sub);
        }
        Ok(Some(TrainingExample { target: NodeId(u64::from_le_bytes(id8)), label, graph_feature }))
    }
}

impl Iterator for ShardIter {
    type Item = Result<TrainingExample, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.read_record() {
            Ok(Some(ex)) => Some(Ok(ex)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphfeature::encode_graph_feature;
    use agl_graph::{SubEdge, Subgraph};
    use agl_tensor::Matrix;

    fn examples(n: u64) -> Vec<TrainingExample> {
        (0..n)
            .map(|i| {
                let sub = Subgraph {
                    target_locals: vec![0],
                    node_ids: vec![NodeId(i), NodeId(i + 1000)],
                    features: Matrix::from_rows(&[&[i as f32], &[0.5]]),
                    edges: vec![SubEdge { src: 1, dst: 0, weight: 1.0 }],
                    edge_features: None,
                };
                TrainingExample {
                    target: NodeId(i),
                    label: vec![(i % 2) as f32],
                    graph_feature: encode_graph_feature(&sub),
                }
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("agl-store-{name}-{}", std::process::id()))
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmp("rt");
        let exs = examples(50);
        let store = FeatureStore::create(&dir, 4, &exs).unwrap();
        assert_eq!(store.n_shards(), 4);
        let mut back = store.read_all().unwrap();
        back.sort_by_key(|e| e.target);
        assert_eq!(back.len(), 50);
        for (a, b) in back.iter().zip(&exs) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.label, b.label);
            assert_eq!(a.graph_feature, b.graph_feature);
        }
        store.remove().unwrap();
    }

    #[test]
    fn shards_partition_by_target_and_cover_everything() {
        let dir = tmp("part");
        let exs = examples(60);
        let store = FeatureStore::create(&dir, 3, &exs).unwrap();
        let mut total = 0;
        for s in 0..3 {
            let shard = store.read_shard(s).unwrap();
            total += shard.len();
            for ex in &shard {
                assert_eq!(partition(&ex.target.0.to_le_bytes(), 3), s);
            }
        }
        assert_eq!(total, 60);
        store.remove().unwrap();
    }

    #[test]
    fn open_existing_store() {
        let dir = tmp("open");
        FeatureStore::create(&dir, 2, &examples(10)).unwrap();
        let reopened = FeatureStore::open(&dir).unwrap();
        assert_eq!(reopened.n_shards(), 2);
        assert_eq!(reopened.read_all().unwrap().len(), 10);
        assert!(reopened.disk_bytes().unwrap() > 0);
        reopened.remove().unwrap();
    }

    #[test]
    fn worker_shards_are_disjoint_and_complete() {
        let dir = tmp("workers");
        let store = FeatureStore::create(&dir, 8, &examples(8)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for w in 0..3 {
            for s in store.worker_shards(w, 3) {
                assert!(seen.insert(s));
            }
        }
        assert_eq!(seen.len(), 8);
        store.remove().unwrap();
    }

    #[test]
    fn open_missing_dir_fails() {
        assert!(FeatureStore::open(tmp("missing")).is_err());
    }

    #[test]
    fn streaming_matches_batch_reads_and_stops_after_a_torn_record() {
        let dir = tmp("stream");
        let exs = examples(40);
        let store = FeatureStore::create(&dir, 3, &exs).unwrap();
        let streamed: Vec<TrainingExample> = store.stream_all().collect::<Result<_, _>>().unwrap();
        let batch = store.read_all().unwrap();
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            assert_eq!((a.target, &a.label, &a.graph_feature), (b.target, &b.label, &b.graph_feature));
        }
        // A partially-consumed iterator is fine — records decode one at a
        // time, nothing requires draining the shard.
        let mut it = store.stream_shard(0).unwrap();
        assert!(it.next().unwrap().is_ok());
        drop(it);
        // Truncating mid-record turns the stream into one Err then None.
        let path = dir.join("part-00000.agl");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let mut it = store.stream_shard(0).unwrap();
        let mut saw_err = false;
        for r in &mut it {
            if r.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "torn tail record must surface as an error");
        assert!(it.next().is_none(), "the stream ends after the first error");
        store.remove().unwrap();
    }

    #[test]
    fn compact_store_roundtrips_and_shrinks() {
        let dir_raw = tmp("fmt-raw");
        let dir_c = tmp("fmt-compact");
        let exs = examples(60);
        let raw = FeatureStore::create_with_format(&dir_raw, 2, &exs, StoreFormat::Raw).unwrap();
        let compact = FeatureStore::create_with_format(&dir_c, 2, &exs, StoreFormat::Compact).unwrap();
        assert_eq!(compact.format(), StoreFormat::Compact);
        // Reads restore the plain byte format exactly.
        let mut a = raw.read_all().unwrap();
        let mut b = compact.read_all().unwrap();
        a.sort_by_key(|e| e.target);
        b.sort_by_key(|e| e.target);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph_feature, y.graph_feature);
        }
        assert!(
            compact.disk_bytes().unwrap() < raw.disk_bytes().unwrap(),
            "compact {} vs raw {}",
            compact.disk_bytes().unwrap(),
            raw.disk_bytes().unwrap()
        );
        // open() re-detects the format.
        let reopened = FeatureStore::open(&dir_c).unwrap();
        assert_eq!(reopened.format(), StoreFormat::Compact);
        assert_eq!(reopened.read_all().unwrap().len(), 60);
        raw.remove().unwrap();
        reopened.remove().unwrap();
    }

    #[test]
    fn corrupt_magic_detected() {
        let dir = tmp("corrupt");
        let store = FeatureStore::create(&dir, 1, &examples(3)).unwrap();
        let path = dir.join("part-00000.agl");
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, bytes).unwrap();
        assert!(matches!(store.read_shard(0), Err(StoreError::Corrupt(_))));
        store.remove().unwrap();
    }
}
