//! Shuffle keys and value messages of the GraphFlat pipeline.
//!
//! The shuffle key is `(node id, re-index suffix)` — the suffix realises the
//! paper's re-indexing strategy (§3.2.2): hub keys are split into `fanout`
//! sub-keys so their records spread across reducers. The value is one of the
//! three kinds of information of §3.2.1 (self / in-edge / out-edge), plus
//! the raw table rows feeding the join round and the final output record.

use agl_mapreduce::codec::{
    get_f32, get_f32s, get_u32, get_u64, get_u8, put_f32, put_f32s, put_u32, put_u64, put_u8, Codec, CodecError,
};
use agl_mapreduce::hash::fnv1a;

/// Suffix value meaning "not re-indexed".
pub const NO_SUFFIX: u32 = 0;

/// A shuffle key: node id plus re-index suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlatKey {
    pub id: u64,
    pub suffix: u32,
}

impl FlatKey {
    pub fn plain(id: u64) -> Self {
        Self { id, suffix: NO_SUFFIX }
    }

    /// Suffix for a record about `member` heading to hub `id` — a
    /// deterministic stand-in for the paper's "random suffix" (determinism
    /// is what lets a re-executed task reproduce its routing).
    pub fn reindexed(id: u64, member: u64, fanout: u32) -> Self {
        Self { id, suffix: (fnv1a(&member.to_le_bytes()) % fanout as u64) as u32 }
    }
}

impl Codec for FlatKey {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.id);
        put_u32(buf, self.suffix);
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Self { id: get_u64(input)?, suffix: get_u32(input)? })
    }
}

/// A value record of the GraphFlat pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatMsg {
    /// Raw node-table row (Map output, consumed by the join round).
    NodeRow { features: Vec<f32>, is_target: bool, label: Vec<f32> },
    /// Raw edge-table row keyed by its source (Map output, join round).
    EdgeBySrc { dst: u64, weight: f32, efeat: Vec<f32> },
    /// Self information: the node's merged neighborhood so far, flattened
    /// as GraphFeature bytes, plus target bookkeeping.
    SelfInfo { sub: Vec<u8>, is_target: bool, label: Vec<f32> },
    /// In-edge information: the edge `(src → key)` plus the source's
    /// current neighborhood payload.
    InEdge { src: u64, weight: f32, efeat: Vec<f32>, sub: Vec<u8> },
    /// Out-edge information: `(key → dst)` with its weight/features, kept
    /// so the merge result can be propagated each round.
    OutEdge { dst: u64, weight: f32, efeat: Vec<f32> },
    /// Final output: the targeted node's GraphFeature and label.
    Final { sub: Vec<u8>, label: Vec<f32> },
}

impl FlatMsg {
    const TAG_NODE: u8 = 0;
    const TAG_EDGE: u8 = 1;
    const TAG_SELF: u8 = 2;
    const TAG_IN: u8 = 3;
    const TAG_OUT: u8 = 4;
    const TAG_FINAL: u8 = 5;

    // ---- Borrowed encoders -------------------------------------------
    // The reducer's merge round encodes one `InEdge`/`OutEdge`/`SelfInfo`
    // per (sampled) edge per round; building an owned `FlatMsg` first means
    // cloning the neighborhood payload just to serialise it. These encode
    // straight from borrows and are byte-identical to `to_bytes()` on the
    // equivalent owned variant (tested below).

    /// Encode [`FlatMsg::SelfInfo`] without owning its fields.
    pub fn encode_self_info(sub: &[u8], is_target: bool, label: &[f32]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(10 + sub.len() + 4 * label.len());
        put_u8(&mut buf, Self::TAG_SELF);
        put_blob(&mut buf, sub);
        put_u8(&mut buf, u8::from(is_target));
        put_f32s(&mut buf, label);
        buf
    }

    /// Encode [`FlatMsg::InEdge`] without owning its fields.
    pub fn encode_in_edge(src: u64, weight: f32, efeat: &[f32], sub: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(21 + 4 * efeat.len() + sub.len());
        put_u8(&mut buf, Self::TAG_IN);
        put_u64(&mut buf, src);
        put_f32(&mut buf, weight);
        put_f32s(&mut buf, efeat);
        put_blob(&mut buf, sub);
        buf
    }

    /// Encode [`FlatMsg::OutEdge`] without owning its fields.
    pub fn encode_out_edge(dst: u64, weight: f32, efeat: &[f32]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(17 + 4 * efeat.len());
        put_u8(&mut buf, Self::TAG_OUT);
        put_u64(&mut buf, dst);
        put_f32(&mut buf, weight);
        put_f32s(&mut buf, efeat);
        buf
    }

    /// Encode [`FlatMsg::Final`] without owning its fields.
    pub fn encode_final(sub: &[u8], label: &[f32]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(9 + sub.len() + 4 * label.len());
        put_u8(&mut buf, Self::TAG_FINAL);
        put_blob(&mut buf, sub);
        put_f32s(&mut buf, label);
        buf
    }
}

fn put_blob(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn get_blob(input: &mut &[u8]) -> Result<Vec<u8>, CodecError> {
    let n = get_u32(input)? as usize;
    let b = agl_mapreduce::codec::take(input, n)?;
    Ok(b.to_vec())
}

impl Codec for FlatMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FlatMsg::NodeRow { features, is_target, label } => {
                put_u8(buf, Self::TAG_NODE);
                put_f32s(buf, features);
                put_u8(buf, u8::from(*is_target));
                put_f32s(buf, label);
            }
            FlatMsg::EdgeBySrc { dst, weight, efeat } => {
                put_u8(buf, Self::TAG_EDGE);
                put_u64(buf, *dst);
                put_f32(buf, *weight);
                put_f32s(buf, efeat);
            }
            FlatMsg::SelfInfo { sub, is_target, label } => {
                put_u8(buf, Self::TAG_SELF);
                put_blob(buf, sub);
                put_u8(buf, u8::from(*is_target));
                put_f32s(buf, label);
            }
            FlatMsg::InEdge { src, weight, efeat, sub } => {
                put_u8(buf, Self::TAG_IN);
                put_u64(buf, *src);
                put_f32(buf, *weight);
                put_f32s(buf, efeat);
                put_blob(buf, sub);
            }
            FlatMsg::OutEdge { dst, weight, efeat } => {
                put_u8(buf, Self::TAG_OUT);
                put_u64(buf, *dst);
                put_f32(buf, *weight);
                put_f32s(buf, efeat);
            }
            FlatMsg::Final { sub, label } => {
                put_u8(buf, Self::TAG_FINAL);
                put_blob(buf, sub);
                put_f32s(buf, label);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            Self::TAG_NODE => {
                FlatMsg::NodeRow { features: get_f32s(input)?, is_target: get_u8(input)? != 0, label: get_f32s(input)? }
            }
            Self::TAG_EDGE => {
                FlatMsg::EdgeBySrc { dst: get_u64(input)?, weight: get_f32(input)?, efeat: get_f32s(input)? }
            }
            Self::TAG_SELF => {
                FlatMsg::SelfInfo { sub: get_blob(input)?, is_target: get_u8(input)? != 0, label: get_f32s(input)? }
            }
            Self::TAG_IN => FlatMsg::InEdge {
                src: get_u64(input)?,
                weight: get_f32(input)?,
                efeat: get_f32s(input)?,
                sub: get_blob(input)?,
            },
            Self::TAG_OUT => {
                FlatMsg::OutEdge { dst: get_u64(input)?, weight: get_f32(input)?, efeat: get_f32s(input)? }
            }
            Self::TAG_FINAL => FlatMsg::Final { sub: get_blob(input)?, label: get_f32s(input)? },
            t => return Err(CodecError(format!("unknown FlatMsg tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_ordering() {
        let k = FlatKey { id: 42, suffix: 3 };
        assert_eq!(FlatKey::from_bytes(&k.to_bytes()).unwrap(), k);
        assert!(FlatKey::plain(1) < FlatKey::plain(2));
    }

    #[test]
    fn reindexed_suffix_deterministic_and_bounded() {
        let a = FlatKey::reindexed(7, 100, 4);
        let b = FlatKey::reindexed(7, 100, 4);
        assert_eq!(a, b);
        assert!(a.suffix < 4);
        // Different members generally land in different groups.
        let suffixes: std::collections::HashSet<u32> = (0..64u64).map(|m| FlatKey::reindexed(7, m, 4).suffix).collect();
        assert!(suffixes.len() > 1);
    }

    #[test]
    fn all_message_variants_roundtrip() {
        let msgs = vec![
            FlatMsg::NodeRow { features: vec![1.0, 2.0], is_target: true, label: vec![0.0, 1.0] },
            FlatMsg::EdgeBySrc { dst: 9, weight: 0.5, efeat: vec![3.0] },
            FlatMsg::SelfInfo { sub: vec![1, 2, 3], is_target: false, label: vec![] },
            FlatMsg::InEdge { src: 4, weight: 1.0, efeat: vec![], sub: vec![9; 10] },
            FlatMsg::OutEdge { dst: 5, weight: 2.0, efeat: vec![1.0, 2.0] },
            FlatMsg::Final { sub: vec![0; 4], label: vec![1.0] },
        ];
        for m in msgs {
            let back = FlatMsg::from_bytes(&m.to_bytes()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn borrowed_encoders_match_owned_encoding() {
        let sub = vec![7u8, 8, 9];
        let label = vec![0.5f32, -1.0];
        let efeat = vec![1.5f32];
        assert_eq!(
            FlatMsg::encode_self_info(&sub, true, &label),
            FlatMsg::SelfInfo { sub: sub.clone(), is_target: true, label: label.clone() }.to_bytes(),
        );
        assert_eq!(
            FlatMsg::encode_in_edge(4, 0.25, &efeat, &sub),
            FlatMsg::InEdge { src: 4, weight: 0.25, efeat: efeat.clone(), sub: sub.clone() }.to_bytes(),
        );
        assert_eq!(
            FlatMsg::encode_out_edge(5, 2.0, &efeat),
            FlatMsg::OutEdge { dst: 5, weight: 2.0, efeat: efeat.clone() }.to_bytes(),
        );
        assert_eq!(FlatMsg::encode_final(&sub, &label), FlatMsg::Final { sub, label }.to_bytes(),);
        // Empty payloads too.
        assert_eq!(
            FlatMsg::encode_self_info(&[], false, &[]),
            FlatMsg::SelfInfo { sub: vec![], is_target: false, label: vec![] }.to_bytes(),
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(FlatMsg::from_bytes(&[99]).is_err());
    }
}
