//! `agl-serve` — the online read path.
//!
//! GraphInfer exists to feed online products: the paper's industrial
//! setting scores billions of edges so that a serving tier can answer
//! point lookups and nearest-neighbor queries at interactive latency.
//! Everything upstream in this repo is batch; this crate is the read side:
//!
//! * [`EmbeddingStore`] ([`store`]): hash-sharded slabs of node vectors
//!   with a compact offset index and zero-copy `&[f32]` reads; exact
//!   top-k queries merged across shards.
//! * [`update`]: incremental maintenance — when a node's features change,
//!   only its k-hop *forward* neighborhood is stale; re-inferring the
//!   backward closure of that dirty set through the existing GraphInfer
//!   pipeline reproduces the full recompute byte-for-byte, and the
//!   affected shard slabs are swapped atomically.
//! * [`batch`]: a per-shard request batcher that coalesces concurrent
//!   lookups without ever reordering responses relative to request ids.
//! * [`loadgen`]: a closed-loop, seeded load generator replaying the
//!   power-law popularity skew of `agl-datasets`, reporting p50/p95/p99
//!   latency and QPS through `agl-obs` histograms.
//! * [`net`]: the multi-process mode — shard workers behind the
//!   length-prefixed transport, driven by `agl-cli serve`.

pub mod batch;
pub mod loadgen;
pub mod net;
pub mod store;
pub mod update;

pub use batch::RequestBatcher;
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use net::{serve_shard_worker, RemoteStore, ServeWireMsg};
pub use store::{shard_of, EmbeddingRef, EmbeddingStore, Neighbor, ShardSlab};
pub use update::{update_incremental, GraphDelta, UpdateReport};

use agl_mapreduce::EngineConfig;

/// Serving configuration — embedded in `AglJob` next to the stage configs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Store shard count (also the worker count in multi-process mode).
    pub shards: usize,
    /// Default result size for top-k queries issued by the load generator.
    pub topk: usize,
    /// Shared engine knobs: `engine.obs` receives latency histograms, QPS
    /// counters and per-shard occupancy gauges; `engine.seed` drives the
    /// load generator; the effective clock times requests.
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { shards: 4, topk: 8, engine: EngineConfig::default() }
    }
}

impl ServeConfig {
    /// Builder-style shard-count override.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style obs-handle override (writes `engine.obs`).
    pub fn with_obs(mut self, obs: agl_obs::Obs) -> Self {
        self.engine.obs = obs;
        self
    }

    /// Builder-style seed override (writes `engine.seed`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Builder-style engine-block override.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}
