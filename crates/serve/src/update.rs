//! Incremental store maintenance: re-infer only the dirty k-hop
//! neighborhood, byte-identically to a full recompute.
//!
//! When a node's features (or its in-edges) change, the only stale store
//! entries are the nodes whose k-hop *in*-neighborhood contains the change
//! — i.e. the **forward** BFS (along out-edges) of depth ≤ k from the
//! touched nodes, because embeddings aggregate upstream along edge
//! direction. Recomputing those dirty nodes needs their own k-hop
//! in-neighborhoods, the **backward** closure of the dirty set.
//!
//! Byte-identity with a full re-infer holds because the GraphInfer
//! sampling framework seeds per *node id* (not per task or slice) over a
//! canonically sorted candidate set: any node at backward distance `< k`
//! of the dirty set keeps its complete in-edge set inside the closure, so
//! it samples the same neighbors and aggregates the same partials, in the
//! same order, as in the full graph. Nodes at distance exactly `k`
//! contribute only their raw features. The dirty nodes' recomputed vectors
//! are therefore bit-for-bit those of a full recompute, and they are the
//! only entries [`EmbeddingStore::patch`] swaps in.

use crate::store::EmbeddingStore;
use agl_graph::bfs::{multi_source_distances, UNREACHED};
use agl_graph::tables::EdgeRow;
use agl_graph::{EdgeTable, Graph, NodeId, NodeTable};
use agl_infer::{GraphInfer, InferConfig};
use agl_mapreduce::JobError;
use agl_nn::GnnModel;
use agl_tensor::Matrix;

/// A graph change: the set of nodes whose inputs changed — nodes with new
/// features, plus the `dst` endpoint of every added/removed edge (the
/// aggregation that edge feeds).
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    pub touched: Vec<NodeId>,
}

impl GraphDelta {
    /// Delta for feature changes at the given nodes.
    pub fn features(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Self { touched: nodes.into_iter().collect() }
    }

    /// Record an added or removed edge: its `dst` aggregation changed.
    #[must_use]
    pub fn with_edge(mut self, _src: NodeId, dst: NodeId) -> Self {
        self.touched.push(dst);
        self
    }
}

/// What an incremental update did.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// Directly changed nodes (the delta).
    pub touched: usize,
    /// Stale store entries recomputed and patched.
    pub dirty: usize,
    /// Nodes of the backward closure the re-infer ran over.
    pub closure_nodes: usize,
    /// Edges of the closure sub-graph.
    pub closure_edges: usize,
}

/// Re-infer the dirty neighborhood of `delta` over the *post-update*
/// tables and patch the affected store shards (atomic per-shard swap).
///
/// `cfg` must be the configuration the store's vectors were produced with
/// (same sampling strategy and `engine.seed`), or byte-identity with a
/// full recompute is forfeit. `k` is the model's layer count.
pub fn update_incremental(
    store: &EmbeddingStore,
    model: &GnnModel,
    nodes: &NodeTable,
    edges: &EdgeTable,
    delta: &GraphDelta,
    cfg: &InferConfig,
) -> Result<UpdateReport, JobError> {
    let obs = cfg.engine.obs.clone();
    let _span = obs.span("serve", "serve.update");
    let k = model.n_layers() as u32;
    let graph = Graph::from_tables(nodes, edges);

    let touched_locals: Vec<u32> = delta.touched.iter().filter_map(|id| graph.local(*id)).collect();
    if touched_locals.is_empty() {
        return Ok(UpdateReport { touched: delta.touched.len(), dirty: 0, closure_nodes: 0, closure_edges: 0 });
    }

    // Dirty = forward BFS ≤ k along out-edges: every node whose k-hop
    // in-neighborhood contains a touched node.
    let fwd = multi_source_distances(graph.out_adj(), &touched_locals, Some(k));
    let dirty_locals: Vec<u32> = (0..graph.n_nodes() as u32).filter(|&v| fwd[v as usize] != UNREACHED).collect();

    // Closure = backward BFS ≤ k along in-edges from the dirty set: the
    // support needed to recompute every dirty node.
    let back = multi_source_distances(graph.in_adj(), &dirty_locals, Some(k));
    let closure_locals: Vec<u32> = (0..graph.n_nodes() as u32).filter(|&v| back[v as usize] != UNREACHED).collect();

    // Sub-tables. Edge rule: keep every in-edge of a node at backward
    // distance < k — that node's sampling candidate set must stay complete
    // — and nothing else (distance-k nodes only contribute features).
    let ids: Vec<NodeId> = closure_locals.iter().map(|&v| graph.node_id(v)).collect();
    let rows: Vec<&[f32]> = closure_locals.iter().map(|&v| graph.features().row(v as usize)).collect();
    let sub_nodes = NodeTable::new(ids, Matrix::from_rows(&rows), None);
    let mut sub_rows = Vec::new();
    for (row, _) in edges.iter() {
        let (Some(s), Some(d)) = (graph.local(row.src), graph.local(row.dst)) else { continue };
        if back[d as usize] < k && back[s as usize] != UNREACHED {
            sub_rows.push(EdgeRow { src: row.src, dst: row.dst, weight: row.weight });
        }
    }
    let closure_edges = sub_rows.len();
    let sub_edges = EdgeTable::new(sub_rows, None);

    // Re-infer the closure through the normal pipeline and keep only the
    // dirty nodes' vectors.
    let output = GraphInfer::new(cfg.clone()).run(model, &sub_nodes, &sub_edges)?;
    let dirty: std::collections::HashSet<u64> = dirty_locals.iter().map(|&v| graph.node_id(v).0).collect();
    let patched: Vec<(NodeId, Vec<f32>)> =
        output.scores.into_iter().filter(|s| dirty.contains(&s.node.0)).map(|s| (s.node, s.probs)).collect();
    let report = UpdateReport {
        touched: delta.touched.len(),
        dirty: patched.len(),
        closure_nodes: closure_locals.len(),
        closure_edges,
    };
    store.patch(patched);
    store.publish_occupancy(&obs);
    obs.metric_add("serve.update.dirty", report.dirty as u64);
    obs.metric_add("serve.update.closure_nodes", report.closure_nodes as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use agl_flat::SamplingStrategy;
    use agl_nn::{Loss, ModelConfig, ModelKind};
    use agl_tensor::rng::Rng;
    use agl_tensor::seeded_rng;

    fn toy(n: u64, seed: u64) -> (NodeTable, EdgeTable) {
        let mut rng = seeded_rng(seed);
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut feats = Matrix::zeros(n as usize, 4);
        for i in 0..n as usize {
            for d in 0..4 {
                feats[(i, d)] = rng.gen_range(-1.0..1.0f32);
            }
        }
        let mut pairs = Vec::new();
        for i in 0..n {
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if i != j {
                    pairs.push((i, j));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        (NodeTable::new(ids, feats, None), EdgeTable::from_pairs(pairs))
    }

    fn model() -> GnnModel {
        GnnModel::new(ModelConfig::new(ModelKind::Gcn, 4, 8, 3, 2, Loss::SoftmaxCrossEntropy))
    }

    fn infer_cfg() -> InferConfig {
        // Weighted sampling exercises the seeded sampling framework — the
        // part byte-identity most depends on.
        InferConfig { sampling: SamplingStrategy::Weighted { max_degree: 2 }, ..InferConfig::default() }.with_seed(5)
    }

    /// The pinned contract: dirty re-infer ≡ full recompute, byte-identical.
    #[test]
    fn incremental_update_matches_full_recompute_byte_identically() {
        let (nodes, edges) = toy(60, 9);
        let m = model();
        let cfg = infer_cfg();
        let scfg = ServeConfig { shards: 4, ..ServeConfig::default() };

        let store = EmbeddingStore::build(&GraphInfer::new(cfg.clone()).run(&m, &nodes, &edges).unwrap(), &scfg);

        // Perturb three nodes' features (post-update tables).
        let touched = [NodeId(3), NodeId(17), NodeId(42)];
        let mut feats = nodes.features().clone();
        for t in &touched {
            for d in 0..4 {
                feats[(t.0 as usize, d)] += 0.5;
            }
        }
        let new_nodes = NodeTable::new(nodes.ids().to_vec(), feats, None);

        let report = update_incremental(&store, &m, &new_nodes, &edges, &GraphDelta::features(touched), &cfg).unwrap();
        assert!(report.dirty >= touched.len(), "dirty {} < touched", report.dirty);
        assert!(report.closure_nodes >= report.dirty);

        // Reference: full recompute over the new tables.
        let full = GraphInfer::new(cfg).run(&m, &new_nodes, &edges).unwrap();
        for s in &full.scores {
            let got = store.get(s.node).unwrap();
            let got_bytes: Vec<[u8; 4]> = got.iter().map(|f| f.to_le_bytes()).collect();
            let want_bytes: Vec<[u8; 4]> = s.probs.iter().map(|f| f.to_le_bytes()).collect();
            assert_eq!(got_bytes, want_bytes, "node {} diverged", s.node.0);
        }
    }

    #[test]
    fn untouched_far_nodes_are_not_recomputed() {
        // A long chain: 0→1→2→...→9. Touching node 0 with a 2-layer model
        // dirties exactly {0, 1, 2}.
        let n = 10u64;
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut feats = Matrix::zeros(n as usize, 4);
        for i in 0..n as usize {
            feats[(i, 0)] = i as f32;
        }
        let edges = EdgeTable::from_pairs((0..n - 1).map(|i| (i, i + 1)));
        let nodes = NodeTable::new(ids, feats, None);
        let m = model();
        let cfg = InferConfig::default();
        let store = EmbeddingStore::build(
            &GraphInfer::new(cfg.clone()).run(&m, &nodes, &edges).unwrap(),
            &ServeConfig::default(),
        );
        let report = update_incremental(&store, &m, &nodes, &edges, &GraphDelta::features([NodeId(0)]), &cfg).unwrap();
        assert_eq!(report.dirty, 3, "chain: touched + 2 hops downstream");
        assert_eq!(report.closure_nodes, 3, "backward closure adds nothing new on a chain head");
    }

    #[test]
    fn empty_delta_is_a_noop() {
        let (nodes, edges) = toy(20, 1);
        let m = model();
        let cfg = InferConfig::default();
        let store = EmbeddingStore::build(
            &GraphInfer::new(cfg.clone()).run(&m, &nodes, &edges).unwrap(),
            &ServeConfig::default(),
        );
        let report = update_incremental(&store, &m, &nodes, &edges, &GraphDelta::default(), &cfg).unwrap();
        assert_eq!(report.dirty, 0);
    }
}
