//! Multi-process serving: shard workers behind the length-prefixed
//! transport.
//!
//! One worker process hosts one store shard. The driver (`agl-cli serve
//! --workers N`) spawns them under the same `ChildReaper` supervision
//! `dist-run` uses, loads each worker with its hash-partition of the
//! vectors, and then routes queries: point lookups go only to the owning
//! shard, top-k fans out to every worker and merges the per-shard
//! candidates by the same total order the in-process store uses — so the
//! distributed answer is bit-identical to the single-process one.

use crate::store::{shard_of, Neighbor, ShardSlab};
use agl_graph::NodeId;
use agl_mapreduce::codec::{
    get_counters, get_f32, get_f32s, get_span_ctx, get_trace_event, get_u32, get_u64, get_u8, put_counters, put_f32,
    put_f32s, put_span_ctx, put_trace_event, put_u32, put_u64, put_u8, CodecError,
};
use agl_mapreduce::transport::{connect, FrameStats};
use agl_mapreduce::{Endpoint, Framed, Listener, TransportError};
use agl_obs::{Clock, Obs, SpanContext, TraceEvent};

/// Serving wire protocol (u32-le length-prefixed frames via [`Framed`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeWireMsg {
    /// Driver → worker: replace the shard contents. Also carries the trace
    /// identity (`trace` enables worker-side tracing under the shared
    /// `trace_id`; `salt` keeps this shard's span ids collision-free in
    /// the merged trace) and the metrics flush cadence (`flush_every`
    /// answered requests; 0 disables mid-flight snapshots).
    Load { dim: u32, entries: Vec<(u64, Vec<f32>)>, trace: bool, trace_id: u64, salt: u64, flush_every: u64 },
    /// Worker → driver: load acknowledged, with the entry count.
    Loaded { n: u64 },
    /// Driver → worker: point lookups (only ids this shard owns). `ctx` is
    /// the driver-side RPC span; the worker span parents under it.
    Lookup { ids: Vec<u64>, ctx: Option<SpanContext> },
    /// Worker → driver: positional answers (empty vec = miss).
    LookupResp { answers: Vec<Vec<f32>> },
    /// Driver → worker: per-shard top-k candidates for a query vector.
    TopK { query: Vec<f32>, k: u32, exclude: Option<u64>, ctx: Option<SpanContext> },
    /// Worker → driver: this shard's candidates, (score, id) best-first.
    TopKResp { candidates: Vec<(f32, u64)> },
    /// Driver → worker: exit cleanly (the worker answers [`Self::Bye`]).
    Shutdown,
    /// Worker → driver, ahead of a reply: *cumulative* counter snapshot,
    /// flushed every `flush_every` answered requests. Merged with
    /// `counter_max`, so a repeated snapshot never double-counts.
    Metrics { counters: Vec<(String, u64)> },
    /// Worker → driver: shutdown acknowledged; final counters and trace
    /// events for the driver's merged view.
    Bye { counters: Vec<(String, u64)>, trace: Vec<TraceEvent> },
}

const TAG_LOAD: u8 = 0;
const TAG_LOADED: u8 = 1;
const TAG_LOOKUP: u8 = 2;
const TAG_LOOKUP_RESP: u8 = 3;
const TAG_TOPK: u8 = 4;
const TAG_TOPK_RESP: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;
const TAG_METRICS: u8 = 7;
const TAG_BYE: u8 = 8;

/// Metric-name for a frame's leading tag byte (RPC telemetry); the serve
/// protocol is symmetric, so one namer covers both directions.
fn serve_msg_name(tag: u8) -> &'static str {
    match tag {
        TAG_LOAD => "load",
        TAG_LOADED => "loaded",
        TAG_LOOKUP => "lookup",
        TAG_LOOKUP_RESP => "lookup_resp",
        TAG_TOPK => "topk",
        TAG_TOPK_RESP => "topk_resp",
        TAG_SHUTDOWN => "shutdown",
        TAG_METRICS => "metrics",
        TAG_BYE => "bye",
        _ => "unknown",
    }
}

impl ServeWireMsg {
    /// Serialise to a frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::Load { dim, entries, trace, trace_id, salt, flush_every } => {
                put_u8(&mut buf, TAG_LOAD);
                put_u32(&mut buf, *dim);
                put_u64(&mut buf, entries.len() as u64);
                for (id, v) in entries {
                    put_u64(&mut buf, *id);
                    put_f32s(&mut buf, v);
                }
                put_u8(&mut buf, u8::from(*trace));
                put_u64(&mut buf, *trace_id);
                put_u64(&mut buf, *salt);
                put_u64(&mut buf, *flush_every);
            }
            Self::Loaded { n } => {
                put_u8(&mut buf, TAG_LOADED);
                put_u64(&mut buf, *n);
            }
            Self::Lookup { ids, ctx } => {
                put_u8(&mut buf, TAG_LOOKUP);
                put_u64(&mut buf, ids.len() as u64);
                for id in ids {
                    put_u64(&mut buf, *id);
                }
                put_span_ctx(&mut buf, *ctx);
            }
            Self::LookupResp { answers } => {
                put_u8(&mut buf, TAG_LOOKUP_RESP);
                put_u64(&mut buf, answers.len() as u64);
                for v in answers {
                    put_f32s(&mut buf, v);
                }
            }
            Self::TopK { query, k, exclude, ctx } => {
                put_u8(&mut buf, TAG_TOPK);
                put_f32s(&mut buf, query);
                put_u32(&mut buf, *k);
                match exclude {
                    Some(id) => {
                        put_u8(&mut buf, 1);
                        put_u64(&mut buf, *id);
                    }
                    None => put_u8(&mut buf, 0),
                }
                put_span_ctx(&mut buf, *ctx);
            }
            Self::TopKResp { candidates } => {
                put_u8(&mut buf, TAG_TOPK_RESP);
                put_u64(&mut buf, candidates.len() as u64);
                for (score, id) in candidates {
                    put_f32(&mut buf, *score);
                    put_u64(&mut buf, *id);
                }
            }
            Self::Shutdown => put_u8(&mut buf, TAG_SHUTDOWN),
            Self::Metrics { counters } => {
                put_u8(&mut buf, TAG_METRICS);
                put_counters(&mut buf, counters);
            }
            Self::Bye { counters, trace } => {
                put_u8(&mut buf, TAG_BYE);
                put_counters(&mut buf, counters);
                put_u32(&mut buf, trace.len() as u32);
                for e in trace {
                    put_trace_event(&mut buf, e);
                }
            }
        }
        buf
    }

    /// Parse a frame payload.
    pub fn from_bytes(mut input: &[u8]) -> Result<Self, CodecError> {
        let input = &mut input;
        let msg = match get_u8(input)? {
            TAG_LOAD => {
                let dim = get_u32(input)?;
                let n = get_u64(input)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = get_u64(input)?;
                    entries.push((id, get_f32s(input)?));
                }
                let trace = get_u8(input)? != 0;
                let trace_id = get_u64(input)?;
                let salt = get_u64(input)?;
                let flush_every = get_u64(input)?;
                Self::Load { dim, entries, trace, trace_id, salt, flush_every }
            }
            TAG_LOADED => Self::Loaded { n: get_u64(input)? },
            TAG_LOOKUP => {
                let n = get_u64(input)? as usize;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(get_u64(input)?);
                }
                let ctx = get_span_ctx(input)?;
                Self::Lookup { ids, ctx }
            }
            TAG_LOOKUP_RESP => {
                let n = get_u64(input)? as usize;
                let mut answers = Vec::with_capacity(n);
                for _ in 0..n {
                    answers.push(get_f32s(input)?);
                }
                Self::LookupResp { answers }
            }
            TAG_TOPK => {
                let query = get_f32s(input)?;
                let k = get_u32(input)?;
                let exclude = if get_u8(input)? == 1 { Some(get_u64(input)?) } else { None };
                let ctx = get_span_ctx(input)?;
                Self::TopK { query, k, exclude, ctx }
            }
            TAG_TOPK_RESP => {
                let n = get_u64(input)? as usize;
                let mut candidates = Vec::with_capacity(n);
                for _ in 0..n {
                    let score = get_f32(input)?;
                    candidates.push((score, get_u64(input)?));
                }
                Self::TopKResp { candidates }
            }
            TAG_SHUTDOWN => Self::Shutdown,
            TAG_METRICS => Self::Metrics { counters: get_counters(input)? },
            TAG_BYE => {
                let counters = get_counters(input)?;
                let n = get_u32(input)? as usize;
                let mut trace = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    trace.push(get_trace_event(input)?);
                }
                Self::Bye { counters, trace }
            }
            t => return Err(CodecError(format!("serve wire msg: bad tag {t}"))),
        };
        Ok(msg)
    }
}

fn sort_candidates(c: &mut Vec<(f32, u64)>, k: usize) {
    c.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    c.truncate(k);
}

/// Host one shard: accept a single driver connection and answer requests
/// until `Shutdown` or EOF. Blocks the calling thread; `agl-cli
/// serve-worker` calls this as the child process's whole life.
///
/// When the `Load` message enables tracing, every lookup/top-k opens a
/// span on the `serve` track parented under the driver RPC span whose
/// context rode the request, a cumulative counter snapshot is flushed
/// every `flush_every` answered requests, and `Shutdown` is acknowledged
/// with a `Bye` carrying the final counters and trace.
pub fn serve_shard_worker(ep: &Endpoint) -> Result<(), TransportError> {
    let listener = Listener::bind(ep)?;
    let mut framed = Framed::new(listener.accept()?);
    let mut slab = ShardSlab::default();
    let mut obs = Obs::default();
    let mut flush_every = 0u64;
    let mut answered = 0u64;
    while let Some(frame) = framed.recv()? {
        let msg = ServeWireMsg::from_bytes(&frame)
            .map_err(|e| TransportError::Protocol(format!("serve worker: bad frame: {e}")))?;
        let reply = match msg {
            ServeWireMsg::Load { dim, entries, trace, trace_id, salt, flush_every: fe } => {
                // Logical clock: span timestamps depend only on this
                // worker's own request order, so merged traces from a
                // seeded run are byte-stable.
                obs = if trace { Obs::enabled_with_identity(Clock::logical(), trace_id, salt) } else { Obs::default() };
                flush_every = fe;
                slab = ShardSlab::build(entries, dim as usize);
                obs.metric_add("serve.loaded_entries", slab.len() as u64);
                ServeWireMsg::Loaded { n: slab.len() as u64 }
            }
            ServeWireMsg::Lookup { ids, ctx } => {
                let mut span = obs.span_child_of("serve", "serve.lookup", ctx);
                span.counter("ids", ids.len() as u64);
                obs.metric_add("serve.lookups", 1);
                answered += 1;
                ServeWireMsg::LookupResp {
                    answers: ids
                        .iter()
                        .map(|&id| slab.get(NodeId(id)).map(<[f32]>::to_vec).unwrap_or_default())
                        .collect(),
                }
            }
            ServeWireMsg::TopK { query, k, exclude, ctx } => {
                let mut span = obs.span_child_of("serve", "serve.topk", ctx);
                span.counter("k", u64::from(k));
                obs.metric_add("serve.topks", 1);
                answered += 1;
                let mut candidates: Vec<(f32, u64)> = slab
                    .iter()
                    .filter(|(node, _)| Some(node.0) != exclude)
                    .map(|(node, v)| (v.iter().zip(&query).map(|(a, b)| a * b).sum::<f32>(), node.0))
                    .collect();
                sort_candidates(&mut candidates, k as usize);
                ServeWireMsg::TopKResp { candidates }
            }
            ServeWireMsg::Shutdown => {
                let trace = obs.trace().map(|t| t.events()).unwrap_or_default();
                framed.send(&ServeWireMsg::Bye { counters: obs.counter_snapshot(), trace }.to_bytes())?;
                break;
            }
            other => {
                return Err(TransportError::Protocol(format!("serve worker: unexpected request {other:?}")));
            }
        };
        // Flush ahead of the reply so the driver always reads the snapshot
        // before the answer it is waiting on.
        if flush_every > 0 && answered > 0 && answered % flush_every == 0 {
            framed.send(&ServeWireMsg::Metrics { counters: obs.counter_snapshot() }.to_bytes())?;
        }
        framed.send(&reply.to_bytes())?;
    }
    Ok(())
}

/// Read the next *reply* from a shard connection, absorbing any
/// mid-flight `Metrics` snapshots the worker flushed ahead of it
/// (cumulative, merged with `counter_max` under a `shard{i}.` prefix —
/// idempotent, so a re-read snapshot never double-counts).
fn expect(framed: &mut Framed, obs: &Obs, shard: usize) -> Result<ServeWireMsg, TransportError> {
    loop {
        let frame = framed.recv()?.ok_or_else(|| TransportError::Protocol("worker closed connection".into()))?;
        let msg = ServeWireMsg::from_bytes(&frame).map_err(|e| TransportError::Protocol(format!("bad reply: {e}")))?;
        if let ServeWireMsg::Metrics { counters } = msg {
            for (name, v) in counters {
                obs.counter_max(&format!("shard{shard}.{name}"), v);
            }
            continue;
        }
        return Ok(msg);
    }
}

/// Driver-side handle over `N` shard workers — the same query surface as
/// the in-process store, answered over sockets.
pub struct RemoteStore {
    conns: Vec<Framed>,
    dim: usize,
    /// Driver-side observability: RPC spans and frame telemetry, plus the
    /// merge target for worker snapshots and `Bye` traces.
    obs: Obs,
}

impl RemoteStore {
    /// Connect to every worker (in shard order) and load each with its
    /// hash-partition of `vectors`.
    pub fn connect(
        endpoints: &[Endpoint],
        vectors: impl IntoIterator<Item = (NodeId, Vec<f32>)>,
        clock: &Clock,
        timeout_ns: u64,
    ) -> Result<Self, TransportError> {
        Self::connect_with_obs(endpoints, vectors, clock, timeout_ns, Obs::default(), 0)
    }

    /// [`RemoteStore::connect`] with observability: every connection gets
    /// RPC frame telemetry (`rpc.serve.s{i}.*`), queries carry the caller's
    /// span context so worker spans parent under driver RPCs, mid-flight
    /// worker snapshots land as `shard{i}.{name}` counters, and
    /// [`RemoteStore::shutdown`] merges each worker's trace under a
    /// `shard{i}/` track prefix.
    pub fn connect_with_obs(
        endpoints: &[Endpoint],
        vectors: impl IntoIterator<Item = (NodeId, Vec<f32>)>,
        clock: &Clock,
        timeout_ns: u64,
        obs: Obs,
        flush_every: u64,
    ) -> Result<Self, TransportError> {
        let n = endpoints.len();
        assert!(n > 0, "need at least one shard worker");
        let mut buckets: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); n];
        let mut dim = 0usize;
        for (node, v) in vectors {
            dim = v.len();
            buckets[shard_of(node, n)].push((node.0, v));
        }
        let trace_id = obs.trace().map(|t| t.trace_id()).unwrap_or(0);
        let mut conns = Vec::with_capacity(n);
        for (i, (ep, bucket)) in endpoints.iter().zip(buckets).enumerate() {
            let stats = FrameStats::from_obs(&obs, &format!("serve.s{i}"), serve_msg_name, serve_msg_name);
            let mut framed = Framed::new(connect(ep, clock, timeout_ns)?).with_stats(stats);
            let loaded = bucket.len() as u64;
            let load = ServeWireMsg::Load {
                dim: dim as u32,
                entries: bucket,
                trace: obs.is_enabled(),
                trace_id,
                // Serve shards salt above the PS shards (2001+i vs 1001+s)
                // so merged span ids never collide across subsystems.
                salt: 2001 + i as u64,
                flush_every,
            };
            framed.send(&load.to_bytes())?;
            match expect(&mut framed, &obs, i)? {
                ServeWireMsg::Loaded { n } if n == loaded => {}
                other => return Err(TransportError::Protocol(format!("bad load ack: {other:?}"))),
            }
            conns.push(framed);
        }
        Ok(Self { conns, dim, obs })
    }

    /// Vector dimension of the loaded store.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Batched point lookups: ids grouped per owning shard (one round trip
    /// per touched shard), answers returned positionally.
    pub fn lookup(&mut self, ids: &[NodeId]) -> Result<Vec<Option<Vec<f32>>>, TransportError> {
        let span = self.obs.span("serve.driver", "rpc.serve.lookup");
        let ctx = span.context();
        let n = self.conns.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pos, id) in ids.iter().enumerate() {
            groups[shard_of(*id, n)].push(pos);
        }
        let mut out: Vec<Option<Vec<f32>>> = vec![None; ids.len()];
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let req = ServeWireMsg::Lookup { ids: group.iter().map(|&p| ids[p].0).collect(), ctx };
            self.conns[shard].send(&req.to_bytes())?;
            match expect(&mut self.conns[shard], &self.obs, shard)? {
                ServeWireMsg::LookupResp { answers } if answers.len() == group.len() => {
                    for (&pos, v) in group.iter().zip(answers) {
                        out[pos] = if v.is_empty() { None } else { Some(v) };
                    }
                }
                other => return Err(TransportError::Protocol(format!("bad lookup reply: {other:?}"))),
            }
        }
        Ok(out)
    }

    /// Exact top-k across all shards: fan out, merge candidates by
    /// (score desc, id asc) — bit-identical to the in-process store.
    pub fn topk(&mut self, query: &[f32], k: usize, exclude: Option<NodeId>) -> Result<Vec<Neighbor>, TransportError> {
        let span = self.obs.span("serve.driver", "rpc.serve.topk");
        let ctx = span.context();
        let req = ServeWireMsg::TopK { query: query.to_vec(), k: k as u32, exclude: exclude.map(|n| n.0), ctx };
        let bytes = req.to_bytes();
        let mut merged: Vec<(f32, u64)> = Vec::new();
        for conn in &mut self.conns {
            conn.send(&bytes)?;
        }
        for (shard, conn) in self.conns.iter_mut().enumerate() {
            match expect(conn, &self.obs, shard)? {
                ServeWireMsg::TopKResp { candidates } => merged.extend(candidates),
                other => return Err(TransportError::Protocol(format!("bad topk reply: {other:?}"))),
            }
        }
        sort_candidates(&mut merged, k);
        Ok(merged.into_iter().map(|(score, id)| Neighbor { node: NodeId(id), score }).collect())
    }

    /// Ask every worker to exit. Each worker acknowledges with a `Bye`;
    /// its trace merges into this driver's sink under a `shard{i}/` track
    /// prefix and its final counters land as `shard{i}.{name}` (via
    /// `counter_max`, superseding any mid-flight snapshots). Errors are
    /// swallowed: a worker that already died has already shut down.
    pub fn shutdown(&mut self) {
        let bytes = ServeWireMsg::Shutdown.to_bytes();
        for (shard, conn) in self.conns.iter_mut().enumerate() {
            if conn.send(&bytes).is_err() {
                continue;
            }
            if let Ok(ServeWireMsg::Bye { counters, trace }) = expect(conn, &self.obs, shard) {
                self.obs.import_trace(&format!("shard{shard}/"), trace);
                for (name, v) in counters {
                    self.obs.counter_max(&format!("shard{shard}.{name}"), v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EmbeddingStore;
    use crate::ServeConfig;

    #[test]
    fn wire_roundtrip() {
        let msgs = [
            ServeWireMsg::Load {
                dim: 3,
                entries: vec![(7, vec![1.0, 2.0, 3.0]), (9, vec![0.0, -1.0, 0.5])],
                trace: true,
                trace_id: 42,
                salt: 2001,
                flush_every: 8,
            },
            ServeWireMsg::Loaded { n: 2 },
            ServeWireMsg::Lookup { ids: vec![7, 11], ctx: Some(SpanContext { trace_id: 42, span_id: 9 }) },
            ServeWireMsg::LookupResp { answers: vec![vec![1.0, 2.0, 3.0], vec![]] },
            ServeWireMsg::TopK { query: vec![0.5, 0.5, 0.5], k: 4, exclude: Some(7), ctx: None },
            ServeWireMsg::TopKResp { candidates: vec![(2.5, 9), (1.0, 7)] },
            ServeWireMsg::Shutdown,
            ServeWireMsg::Metrics { counters: vec![("serve.lookups".to_string(), 3)] },
            ServeWireMsg::Bye {
                counters: vec![("serve.topks".to_string(), 2)],
                trace: vec![TraceEvent {
                    track: "serve".to_string(),
                    seq: 0,
                    name: "serve.topk".to_string(),
                    ts: 1,
                    dur: 2,
                    depth: 0,
                    args: vec![("k".to_string(), 4)],
                    span_id: 11,
                    parent_id: 12,
                }],
            },
        ];
        for m in msgs {
            assert_eq!(ServeWireMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn truncated_bye_and_bad_ctx_version_are_rejected() {
        let bye = ServeWireMsg::Bye { counters: vec![("c".to_string(), 1)], trace: vec![] }.to_bytes();
        assert!(ServeWireMsg::from_bytes(&bye[..bye.len() - 2]).is_err());
        let mut lookup = ServeWireMsg::Lookup { ids: vec![], ctx: None }.to_bytes();
        *lookup.last_mut().unwrap() = 250; // span-ctx version byte
        let err = ServeWireMsg::from_bytes(&lookup).unwrap_err();
        assert!(err.0.contains("unknown span context version 250"), "{}", err.0);
    }

    #[test]
    fn obs_parents_worker_spans_and_flushes_metrics() {
        let dir = std::env::temp_dir().join(format!("agl-serve-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("shard{i}.sock")))).collect();
        let vectors: Vec<(NodeId, Vec<f32>)> = (0..16u64).map(|i| (NodeId(i), vec![i as f32, 1.0])).collect();
        let obs = Obs::enabled_with_identity(Clock::logical(), 5, 0);
        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || serve_shard_worker(ep).unwrap());
            }
            let clock = Clock::monotonic();
            let mut remote =
                RemoteStore::connect_with_obs(&eps, vectors, &clock, 2_000_000_000, obs.clone(), 1).unwrap();
            remote.lookup(&[NodeId(3), NodeId(8)]).unwrap();
            remote.topk(&[1.0, 0.0], 4, None).unwrap();
            remote.shutdown();
        });
        let events = obs.trace().unwrap().events();
        let driver_ids: std::collections::HashSet<u64> =
            events.iter().filter(|e| e.track == "serve.driver").map(|e| e.span_id).collect();
        assert!(!driver_ids.is_empty(), "driver RPC spans recorded");
        let worker_spans: Vec<_> = events.iter().filter(|e| e.track.starts_with("shard")).collect();
        assert!(!worker_spans.is_empty(), "worker traces merged");
        for e in &worker_spans {
            assert!(
                driver_ids.contains(&e.parent_id),
                "worker span {} on {} has parent {} outside the driver RPC spans",
                e.name,
                e.track,
                e.parent_id
            );
        }
        let m = obs.metrics().unwrap();
        assert_eq!(m.get("shard0.serve.topks") + m.get("shard1.serve.topks"), 2, "{}", m.render());
        assert!(m.get("rpc.serve.s0.send.topk.frames") > 0, "{}", m.render());
        assert!(m.get("rpc.serve.s0.recv.metrics.frames") > 0, "flush_every=1 must snapshot: {}", m.render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two in-process "workers" over UDS answer bit-identically to the
    /// single-process store.
    #[test]
    fn remote_matches_local_store() {
        let dir = std::env::temp_dir().join(format!("agl-serve-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("shard{i}.sock")))).collect();
        let vectors: Vec<(NodeId, Vec<f32>)> =
            (0..40u64).map(|i| (NodeId(i), vec![i as f32 * 0.1, 1.0 - i as f32 * 0.05, 0.3])).collect();
        let local = EmbeddingStore::from_vectors(vectors.clone(), &ServeConfig { shards: 2, ..ServeConfig::default() });

        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || serve_shard_worker(ep).unwrap());
            }
            let clock = Clock::monotonic();
            let mut remote = RemoteStore::connect(&eps, vectors.clone(), &clock, 2_000_000_000).unwrap();

            let ids: Vec<NodeId> = [5u64, 0, 39, 99, 12].map(NodeId).to_vec();
            let got = remote.lookup(&ids).unwrap();
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(got[i], local.get(*id).map(|r| r.to_vec()), "id {}", id.0);
            }

            let query = [1.0f32, -0.5, 2.0];
            let want = local.topk(&query, 6);
            let have = remote.topk(&query, 6, None).unwrap();
            assert_eq!(have, want);

            let want_nb = local.topk_neighbors(NodeId(3), 5).unwrap();
            let q = local.get(NodeId(3)).unwrap().to_vec();
            let have_nb = remote.topk(&q, 5, Some(NodeId(3))).unwrap();
            assert_eq!(have_nb, want_nb);

            remote.shutdown();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
