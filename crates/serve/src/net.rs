//! Multi-process serving: shard workers behind the length-prefixed
//! transport.
//!
//! One worker process hosts one store shard. The driver (`agl-cli serve
//! --workers N`) spawns them under the same `ChildReaper` supervision
//! `dist-run` uses, loads each worker with its hash-partition of the
//! vectors, and then routes queries: point lookups go only to the owning
//! shard, top-k fans out to every worker and merges the per-shard
//! candidates by the same total order the in-process store uses — so the
//! distributed answer is bit-identical to the single-process one.

use crate::store::{shard_of, Neighbor, ShardSlab};
use agl_graph::NodeId;
use agl_mapreduce::codec::{
    get_f32, get_f32s, get_u32, get_u64, get_u8, put_f32, put_f32s, put_u32, put_u64, put_u8, CodecError,
};
use agl_mapreduce::transport::connect;
use agl_mapreduce::{Endpoint, Framed, Listener, TransportError};
use agl_obs::Clock;

/// Serving wire protocol (u32-le length-prefixed frames via [`Framed`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeWireMsg {
    /// Driver → worker: replace the shard contents.
    Load { dim: u32, entries: Vec<(u64, Vec<f32>)> },
    /// Worker → driver: load acknowledged, with the entry count.
    Loaded { n: u64 },
    /// Driver → worker: point lookups (only ids this shard owns).
    Lookup { ids: Vec<u64> },
    /// Worker → driver: positional answers (empty vec = miss).
    LookupResp { answers: Vec<Vec<f32>> },
    /// Driver → worker: per-shard top-k candidates for a query vector.
    TopK { query: Vec<f32>, k: u32, exclude: Option<u64> },
    /// Worker → driver: this shard's candidates, (score, id) best-first.
    TopKResp { candidates: Vec<(f32, u64)> },
    /// Driver → worker: exit cleanly.
    Shutdown,
}

const TAG_LOAD: u8 = 0;
const TAG_LOADED: u8 = 1;
const TAG_LOOKUP: u8 = 2;
const TAG_LOOKUP_RESP: u8 = 3;
const TAG_TOPK: u8 = 4;
const TAG_TOPK_RESP: u8 = 5;
const TAG_SHUTDOWN: u8 = 6;

impl ServeWireMsg {
    /// Serialise to a frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::Load { dim, entries } => {
                put_u8(&mut buf, TAG_LOAD);
                put_u32(&mut buf, *dim);
                put_u64(&mut buf, entries.len() as u64);
                for (id, v) in entries {
                    put_u64(&mut buf, *id);
                    put_f32s(&mut buf, v);
                }
            }
            Self::Loaded { n } => {
                put_u8(&mut buf, TAG_LOADED);
                put_u64(&mut buf, *n);
            }
            Self::Lookup { ids } => {
                put_u8(&mut buf, TAG_LOOKUP);
                put_u64(&mut buf, ids.len() as u64);
                for id in ids {
                    put_u64(&mut buf, *id);
                }
            }
            Self::LookupResp { answers } => {
                put_u8(&mut buf, TAG_LOOKUP_RESP);
                put_u64(&mut buf, answers.len() as u64);
                for v in answers {
                    put_f32s(&mut buf, v);
                }
            }
            Self::TopK { query, k, exclude } => {
                put_u8(&mut buf, TAG_TOPK);
                put_f32s(&mut buf, query);
                put_u32(&mut buf, *k);
                match exclude {
                    Some(id) => {
                        put_u8(&mut buf, 1);
                        put_u64(&mut buf, *id);
                    }
                    None => put_u8(&mut buf, 0),
                }
            }
            Self::TopKResp { candidates } => {
                put_u8(&mut buf, TAG_TOPK_RESP);
                put_u64(&mut buf, candidates.len() as u64);
                for (score, id) in candidates {
                    put_f32(&mut buf, *score);
                    put_u64(&mut buf, *id);
                }
            }
            Self::Shutdown => put_u8(&mut buf, TAG_SHUTDOWN),
        }
        buf
    }

    /// Parse a frame payload.
    pub fn from_bytes(mut input: &[u8]) -> Result<Self, CodecError> {
        let input = &mut input;
        let msg = match get_u8(input)? {
            TAG_LOAD => {
                let dim = get_u32(input)?;
                let n = get_u64(input)? as usize;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = get_u64(input)?;
                    entries.push((id, get_f32s(input)?));
                }
                Self::Load { dim, entries }
            }
            TAG_LOADED => Self::Loaded { n: get_u64(input)? },
            TAG_LOOKUP => {
                let n = get_u64(input)? as usize;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(get_u64(input)?);
                }
                Self::Lookup { ids }
            }
            TAG_LOOKUP_RESP => {
                let n = get_u64(input)? as usize;
                let mut answers = Vec::with_capacity(n);
                for _ in 0..n {
                    answers.push(get_f32s(input)?);
                }
                Self::LookupResp { answers }
            }
            TAG_TOPK => {
                let query = get_f32s(input)?;
                let k = get_u32(input)?;
                let exclude = if get_u8(input)? == 1 { Some(get_u64(input)?) } else { None };
                Self::TopK { query, k, exclude }
            }
            TAG_TOPK_RESP => {
                let n = get_u64(input)? as usize;
                let mut candidates = Vec::with_capacity(n);
                for _ in 0..n {
                    let score = get_f32(input)?;
                    candidates.push((score, get_u64(input)?));
                }
                Self::TopKResp { candidates }
            }
            TAG_SHUTDOWN => Self::Shutdown,
            t => return Err(CodecError(format!("serve wire msg: bad tag {t}"))),
        };
        Ok(msg)
    }
}

fn sort_candidates(c: &mut Vec<(f32, u64)>, k: usize) {
    c.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    c.truncate(k);
}

/// Host one shard: accept a single driver connection and answer requests
/// until `Shutdown` or EOF. Blocks the calling thread; `agl-cli
/// serve-worker` calls this as the child process's whole life.
pub fn serve_shard_worker(ep: &Endpoint) -> Result<(), TransportError> {
    let listener = Listener::bind(ep)?;
    let mut framed = Framed::new(listener.accept()?);
    let mut slab = ShardSlab::default();
    while let Some(frame) = framed.recv()? {
        let msg = ServeWireMsg::from_bytes(&frame)
            .map_err(|e| TransportError::Protocol(format!("serve worker: bad frame: {e}")))?;
        let reply = match msg {
            ServeWireMsg::Load { dim, entries } => {
                slab = ShardSlab::build(entries, dim as usize);
                ServeWireMsg::Loaded { n: slab.len() as u64 }
            }
            ServeWireMsg::Lookup { ids } => ServeWireMsg::LookupResp {
                answers: ids.iter().map(|&id| slab.get(NodeId(id)).map(<[f32]>::to_vec).unwrap_or_default()).collect(),
            },
            ServeWireMsg::TopK { query, k, exclude } => {
                let mut candidates: Vec<(f32, u64)> = slab
                    .iter()
                    .filter(|(node, _)| Some(node.0) != exclude)
                    .map(|(node, v)| (v.iter().zip(&query).map(|(a, b)| a * b).sum::<f32>(), node.0))
                    .collect();
                sort_candidates(&mut candidates, k as usize);
                ServeWireMsg::TopKResp { candidates }
            }
            ServeWireMsg::Shutdown => break,
            other => {
                return Err(TransportError::Protocol(format!("serve worker: unexpected request {other:?}")));
            }
        };
        framed.send(&reply.to_bytes())?;
    }
    Ok(())
}

/// Driver-side handle over `N` shard workers — the same query surface as
/// the in-process store, answered over sockets.
pub struct RemoteStore {
    conns: Vec<Framed>,
    dim: usize,
}

impl RemoteStore {
    /// Connect to every worker (in shard order) and load each with its
    /// hash-partition of `vectors`.
    pub fn connect(
        endpoints: &[Endpoint],
        vectors: impl IntoIterator<Item = (NodeId, Vec<f32>)>,
        clock: &Clock,
        timeout_ns: u64,
    ) -> Result<Self, TransportError> {
        let n = endpoints.len();
        assert!(n > 0, "need at least one shard worker");
        let mut buckets: Vec<Vec<(u64, Vec<f32>)>> = vec![Vec::new(); n];
        let mut dim = 0usize;
        for (node, v) in vectors {
            dim = v.len();
            buckets[shard_of(node, n)].push((node.0, v));
        }
        let mut conns = Vec::with_capacity(n);
        for (ep, bucket) in endpoints.iter().zip(buckets) {
            let mut framed = Framed::new(connect(ep, clock, timeout_ns)?);
            let loaded = bucket.len() as u64;
            framed.send(&ServeWireMsg::Load { dim: dim as u32, entries: bucket }.to_bytes())?;
            match Self::expect(&mut framed)? {
                ServeWireMsg::Loaded { n } if n == loaded => {}
                other => return Err(TransportError::Protocol(format!("bad load ack: {other:?}"))),
            }
            conns.push(framed);
        }
        Ok(Self { conns, dim })
    }

    fn expect(framed: &mut Framed) -> Result<ServeWireMsg, TransportError> {
        let frame = framed.recv()?.ok_or_else(|| TransportError::Protocol("worker closed connection".into()))?;
        ServeWireMsg::from_bytes(&frame).map_err(|e| TransportError::Protocol(format!("bad reply: {e}")))
    }

    /// Vector dimension of the loaded store.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Batched point lookups: ids grouped per owning shard (one round trip
    /// per touched shard), answers returned positionally.
    pub fn lookup(&mut self, ids: &[NodeId]) -> Result<Vec<Option<Vec<f32>>>, TransportError> {
        let n = self.conns.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pos, id) in ids.iter().enumerate() {
            groups[shard_of(*id, n)].push(pos);
        }
        let mut out: Vec<Option<Vec<f32>>> = vec![None; ids.len()];
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let req = ServeWireMsg::Lookup { ids: group.iter().map(|&p| ids[p].0).collect() };
            self.conns[shard].send(&req.to_bytes())?;
            match Self::expect(&mut self.conns[shard])? {
                ServeWireMsg::LookupResp { answers } if answers.len() == group.len() => {
                    for (&pos, v) in group.iter().zip(answers) {
                        out[pos] = if v.is_empty() { None } else { Some(v) };
                    }
                }
                other => return Err(TransportError::Protocol(format!("bad lookup reply: {other:?}"))),
            }
        }
        Ok(out)
    }

    /// Exact top-k across all shards: fan out, merge candidates by
    /// (score desc, id asc) — bit-identical to the in-process store.
    pub fn topk(&mut self, query: &[f32], k: usize, exclude: Option<NodeId>) -> Result<Vec<Neighbor>, TransportError> {
        let req = ServeWireMsg::TopK { query: query.to_vec(), k: k as u32, exclude: exclude.map(|n| n.0) };
        let bytes = req.to_bytes();
        let mut merged: Vec<(f32, u64)> = Vec::new();
        for conn in &mut self.conns {
            conn.send(&bytes)?;
        }
        for conn in &mut self.conns {
            match Self::expect(conn)? {
                ServeWireMsg::TopKResp { candidates } => merged.extend(candidates),
                other => return Err(TransportError::Protocol(format!("bad topk reply: {other:?}"))),
            }
        }
        sort_candidates(&mut merged, k);
        Ok(merged.into_iter().map(|(score, id)| Neighbor { node: NodeId(id), score }).collect())
    }

    /// Ask every worker to exit.
    pub fn shutdown(&mut self) {
        let bytes = ServeWireMsg::Shutdown.to_bytes();
        for conn in &mut self.conns {
            let _ = conn.send(&bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EmbeddingStore;
    use crate::ServeConfig;

    #[test]
    fn wire_roundtrip() {
        let msgs = [
            ServeWireMsg::Load { dim: 3, entries: vec![(7, vec![1.0, 2.0, 3.0]), (9, vec![0.0, -1.0, 0.5])] },
            ServeWireMsg::Loaded { n: 2 },
            ServeWireMsg::Lookup { ids: vec![7, 11] },
            ServeWireMsg::LookupResp { answers: vec![vec![1.0, 2.0, 3.0], vec![]] },
            ServeWireMsg::TopK { query: vec![0.5, 0.5, 0.5], k: 4, exclude: Some(7) },
            ServeWireMsg::TopKResp { candidates: vec![(2.5, 9), (1.0, 7)] },
            ServeWireMsg::Shutdown,
        ];
        for m in msgs {
            assert_eq!(ServeWireMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    /// Two in-process "workers" over UDS answer bit-identically to the
    /// single-process store.
    #[test]
    fn remote_matches_local_store() {
        let dir = std::env::temp_dir().join(format!("agl-serve-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("shard{i}.sock")))).collect();
        let vectors: Vec<(NodeId, Vec<f32>)> =
            (0..40u64).map(|i| (NodeId(i), vec![i as f32 * 0.1, 1.0 - i as f32 * 0.05, 0.3])).collect();
        let local = EmbeddingStore::from_vectors(vectors.clone(), &ServeConfig { shards: 2, ..ServeConfig::default() });

        std::thread::scope(|s| {
            for ep in &eps {
                s.spawn(move || serve_shard_worker(ep).unwrap());
            }
            let clock = Clock::monotonic();
            let mut remote = RemoteStore::connect(&eps, vectors.clone(), &clock, 2_000_000_000).unwrap();

            let ids: Vec<NodeId> = [5u64, 0, 39, 99, 12].map(NodeId).to_vec();
            let got = remote.lookup(&ids).unwrap();
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(got[i], local.get(*id).map(|r| r.to_vec()), "id {}", id.0);
            }

            let query = [1.0f32, -0.5, 2.0];
            let want = local.topk(&query, 6);
            let have = remote.topk(&query, 6, None).unwrap();
            assert_eq!(have, want);

            let want_nb = local.topk_neighbors(NodeId(3), 5).unwrap();
            let q = local.get(NodeId(3)).unwrap().to_vec();
            let have_nb = remote.topk(&q, 5, Some(NodeId(3))).unwrap();
            assert_eq!(have_nb, want_nb);

            remote.shutdown();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
