//! Closed-loop load generator: seeded power-law request skew, latency
//! histograms through `agl-obs`.
//!
//! Industrial read traffic is as hub-heavy as the graph itself — a few hot
//! users absorb most lookups. The generator replays that shape by drawing
//! request targets from the same [`PowerLaw`] distribution the UUG-like
//! generator grows graphs with: the hottest store entry is item 0 of the
//! popularity ranking. Each worker is closed-loop (the next batch is
//! issued only after the previous one completed — latency feedback throttles
//! offered load) and owns a seed derived from `(seed, worker)`, so a run
//! is deterministic in which requests it issues.

use crate::batch::RequestBatcher;
use crate::store::EmbeddingStore;
use crate::ServeConfig;
use agl_datasets::PowerLaw;
use agl_graph::NodeId;
use agl_obs::{MetricValue, Obs};
use agl_tensor::rng::derive_seed;
use agl_tensor::seeded_rng;

/// Histogram of point-lookup batch latencies (nanoseconds).
pub const LOOKUP_HIST: &str = "serve.lookup_nanos";
/// Histogram of top-k query latencies (nanoseconds).
pub const TOPK_HIST: &str = "serve.topk_nanos";

/// Load-generator shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop workers.
    pub workers: usize,
    /// Batches each worker issues.
    pub batches_per_worker: usize,
    /// Point lookups per batch.
    pub batch_size: usize,
    /// Issue one top-k query after every this many batches (0 = never).
    pub topk_every: usize,
    /// Power-law exponent of the popularity skew (γ of `agl-datasets`).
    pub gamma: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self { workers: 4, batches_per_worker: 250, batch_size: 16, topk_every: 10, gamma: 2.1 }
    }
}

/// What a run measured. Latencies are nanoseconds from the configured
/// clock; percentiles come from the obs log2 histograms.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub lookups: u64,
    pub topk_queries: u64,
    pub elapsed_nanos: u64,
    /// Point lookups per second (0 when the clock measured no elapsed time,
    /// e.g. a logical clock).
    pub qps: u64,
    pub lookup_p50: u64,
    pub lookup_p95: u64,
    pub lookup_p99: u64,
    pub topk_p99: u64,
}

impl LoadReport {
    /// One-line human summary (the `serve-bench` output).
    pub fn render(&self) -> String {
        format!(
            "lookups={} topk={} elapsed={:.3}s qps={} p50={}ns p95={}ns p99={}ns topk_p99={}ns",
            self.lookups,
            self.topk_queries,
            self.elapsed_nanos as f64 / 1e9,
            self.qps,
            self.lookup_p50,
            self.lookup_p95,
            self.lookup_p99,
            self.topk_p99,
        )
    }
}

fn histogram_percentiles(obs: &Obs, name: &str) -> (u64, u64, u64) {
    let Some(m) = obs.metrics() else { return (0, 0, 0) };
    for (n, v) in m.snapshot() {
        if n == name {
            if let MetricValue::Histogram(h) = v {
                return (h.p50, h.p95, h.p99);
            }
        }
    }
    (0, 0, 0)
}

/// Run the closed-loop workload against a store. Latency histograms,
/// QPS counters and occupancy gauges land in `cfg.engine.obs` when it is
/// enabled; when it is disabled a private enabled handle is used so the
/// report still carries percentiles.
pub fn run_load(store: &EmbeddingStore, cfg: &ServeConfig, load: &LoadConfig) -> LoadReport {
    let obs = if cfg.engine.obs.is_enabled() { cfg.engine.obs.clone() } else { Obs::enabled() };
    let clock = cfg.engine.effective_clock();

    // Popularity ranking: store ids sorted ascending; rank r maps to the
    // r-th id, so low ids of a freshly built store are the hot set.
    let mut ids: Vec<u64> = Vec::with_capacity(store.len());
    for s in 0..store.n_shards() {
        ids.extend(store.shard(s).iter().map(|(id, _)| id.0));
    }
    ids.sort_unstable();
    assert!(!ids.is_empty(), "load generator needs a non-empty store");
    let popularity = PowerLaw::new(ids.len(), load.gamma);

    let start = clock.now();
    std::thread::scope(|s| {
        for w in 0..load.workers {
            let (ids, popularity, obs, clock) = (&ids, &popularity, &obs, &clock);
            let batcher = RequestBatcher::new(store);
            s.spawn(move || {
                let mut rng = seeded_rng(derive_seed(cfg.engine.seed, w as u64));
                for b in 0..load.batches_per_worker {
                    let batch: Vec<NodeId> =
                        (0..load.batch_size).map(|_| NodeId(ids[popularity.sample(&mut rng)])).collect();
                    let t0 = clock.now();
                    let answers = batcher.submit(&batch);
                    obs.observe(LOOKUP_HIST, clock.since(t0));
                    obs.metric_add("serve.requests", answers.len() as u64);
                    if load.topk_every > 0 && (b + 1) % load.topk_every == 0 {
                        let probe = NodeId(ids[popularity.sample(&mut rng)]);
                        let t1 = clock.now();
                        let found = store.topk_neighbors(probe, cfg.topk);
                        obs.observe(TOPK_HIST, clock.since(t1));
                        obs.metric_add("serve.topk_queries", 1);
                        debug_assert!(found.is_some(), "probe ids come from the store");
                    }
                }
            });
        }
    });
    let elapsed_nanos = clock.since(start);

    store.publish_occupancy(&obs);
    let metrics = obs.metrics();
    let lookups = metrics.map_or(0, |m| m.get("serve.requests"));
    let topk_queries = metrics.map_or(0, |m| m.get("serve.topk_queries"));
    let (lookup_p50, lookup_p95, lookup_p99) = histogram_percentiles(&obs, LOOKUP_HIST);
    let (_, _, topk_p99) = histogram_percentiles(&obs, TOPK_HIST);
    let qps = if elapsed_nanos == 0 { 0 } else { (lookups as u128 * 1_000_000_000 / elapsed_nanos as u128) as u64 };
    LoadReport { lookups, topk_queries, elapsed_nanos, qps, lookup_p50, lookup_p95, lookup_p99, topk_p99 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: u64) -> EmbeddingStore {
        let cfg = ServeConfig::default();
        EmbeddingStore::from_vectors((0..n).map(|i| (NodeId(i), vec![(i % 5) as f32, 1.0])), &cfg)
    }

    #[test]
    fn reports_latency_percentiles_and_counts() {
        let s = store(200);
        let cfg = ServeConfig::default().with_obs(Obs::enabled());
        let load = LoadConfig { workers: 2, batches_per_worker: 30, batch_size: 8, topk_every: 5, gamma: 2.1 };
        let r = run_load(&s, &cfg, &load);
        assert_eq!(r.lookups, 2 * 30 * 8);
        assert_eq!(r.topk_queries, 2 * (30 / 5));
        assert!(r.lookup_p99 > 0, "nonzero p99");
        assert!(r.lookup_p50 <= r.lookup_p95 && r.lookup_p95 <= r.lookup_p99);
        assert!(r.qps > 0);
    }

    #[test]
    fn request_stream_is_seeded_and_heavy_tailed() {
        // Same seed → same histogram counts; and the hot head absorbs a
        // disproportionate share of lookups.
        let s = store(500);
        let run = |seed| {
            let obs = Obs::enabled();
            let cfg = ServeConfig::default().with_obs(obs.clone()).with_seed(seed);
            let load = LoadConfig { workers: 1, batches_per_worker: 50, batch_size: 4, topk_every: 0, gamma: 2.1 };
            run_load(&s, &cfg, &load).lookups
        };
        assert_eq!(run(3), run(3));
        let p = PowerLaw::new(500, 2.1);
        let mut rng = seeded_rng(1);
        let hot = (0..4000).filter(|_| p.sample(&mut rng) < 5).count();
        assert!(hot > 400, "1% of items should take >10% of draws, got {hot}/4000");
    }
}
