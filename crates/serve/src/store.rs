//! The sharded, read-optimised embedding store.
//!
//! Layout: node vectors are hash-sharded by FNV-1a over the node id (the
//! same routing the MapReduce shuffle uses, so a store shard corresponds
//! to a stable partition of any upstream reduce output). Each shard is an
//! immutable [`ShardSlab`]: one contiguous `Vec<f32>` holding every vector
//! back-to-back plus a compact, id-sorted offset index. Point reads binary
//! search the index and hand out a zero-copy `&[f32]` into the slab.
//!
//! Writers never mutate a slab in place. An update builds a replacement
//! slab off to the side and swaps the shard's `Arc` under a write lock
//! (see CONCURRENCY.md "Serving slab swap"); readers that cloned the old
//! `Arc` keep a consistent snapshot until they drop it.

use crate::ServeConfig;
use agl_graph::NodeId;
use agl_infer::{InferOutput, NodeEmbedding};
use agl_mapreduce::hash::fnv1a;
use std::sync::{Arc, RwLock};

/// Route a node id to its shard — FNV-1a over the little-endian id bytes,
/// exactly like the MapReduce shuffle routes reduce keys.
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    (fnv1a(&node.0.to_le_bytes()) % shards as u64) as usize
}

/// One immutable shard: all vectors in a single slab, plus an id-sorted
/// `(node, offset)` index. `offset` counts floats, not bytes.
#[derive(Debug, Clone, Default)]
pub struct ShardSlab {
    /// Sorted by node id; `u32` offsets keep the index at 12 bytes/node.
    index: Vec<(u64, u32)>,
    data: Vec<f32>,
    dim: usize,
}

impl ShardSlab {
    /// Build from `(node, vector)` pairs (any order; sorted internally).
    pub fn build(mut entries: Vec<(u64, Vec<f32>)>, dim: usize) -> Self {
        entries.sort_unstable_by_key(|(id, _)| *id);
        let mut index = Vec::with_capacity(entries.len());
        let mut data = Vec::with_capacity(entries.len() * dim);
        for (id, v) in &entries {
            assert_eq!(v.len(), dim, "node {id}: vector dim {} != store dim {dim}", v.len());
            // agl-lint: allow(no-panic) — >4G floats in one shard is out of scope for the in-memory store.
            let off = u32::try_from(data.len()).expect("shard slab exceeds u32 float offsets");
            index.push((*id, off));
            data.extend_from_slice(v);
        }
        Self { index, data, dim }
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Zero-copy read of one vector.
    pub fn get(&self, node: NodeId) -> Option<&[f32]> {
        let i = self.index.binary_search_by_key(&node.0, |(id, _)| *id).ok()?;
        let off = self.index[i].1 as usize;
        Some(&self.data[off..off + self.dim])
    }

    /// Iterate `(node, vector)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[f32])> {
        self.index.iter().map(move |&(id, off)| (NodeId(id), &self.data[off as usize..off as usize + self.dim]))
    }

    /// Exact brute-force top-k of this shard by dot product against
    /// `query`, excluding `exclude`. Candidates are ordered by
    /// (score desc, node id asc) — a total order, so the cross-shard merge
    /// is bit-identical to a global scan.
    fn topk_into(&self, query: &[f32], exclude: Option<NodeId>, out: &mut Vec<(f32, u64)>) {
        for (node, v) in self.iter() {
            if exclude == Some(node) {
                continue;
            }
            let score: f32 = v.iter().zip(query).map(|(a, b)| a * b).sum();
            out.push((score, node.0));
        }
    }
}

/// A zero-copy view of one stored vector: holds the shard snapshot alive
/// and derefs to the `&[f32]` inside it.
#[derive(Debug, Clone)]
pub struct EmbeddingRef {
    slab: Arc<ShardSlab>,
    offset: usize,
}

impl std::ops::Deref for EmbeddingRef {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.slab.data[self.offset..self.offset + self.slab.dim]
    }
}

/// One ranked neighbor from a top-k query.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    pub node: NodeId,
    pub score: f32,
}

/// The sharded store. Cheap to share (`Arc` it or hand out `&`); reads
/// take a shard read lock only long enough to clone the slab `Arc`.
#[derive(Debug)]
pub struct EmbeddingStore {
    shards: Vec<RwLock<Arc<ShardSlab>>>,
    dim: usize,
}

impl EmbeddingStore {
    /// Build from a GraphInfer score output: each node's probability vector
    /// becomes its stored vector.
    pub fn build(output: &InferOutput, cfg: &ServeConfig) -> Self {
        Self::from_vectors(output.scores.iter().map(|s| (s.node, s.probs.clone())), cfg)
    }

    /// Build from final-layer embeddings (`GraphInfer::run_embeddings`).
    pub fn from_embeddings(embeddings: &[NodeEmbedding], cfg: &ServeConfig) -> Self {
        Self::from_vectors(embeddings.iter().map(|e| (e.node, e.embedding.clone())), cfg)
    }

    /// Build from raw `(node, vector)` pairs.
    pub fn from_vectors(vectors: impl IntoIterator<Item = (NodeId, Vec<f32>)>, cfg: &ServeConfig) -> Self {
        let shards = cfg.shards.max(1);
        let mut buckets: Vec<Vec<(u64, Vec<f32>)>> = (0..shards).map(|_| Vec::new()).collect();
        let mut dim = 0usize;
        for (node, v) in vectors {
            dim = v.len();
            buckets[shard_of(node, shards)].push((node.0, v));
        }
        let store = Self {
            shards: buckets.into_iter().map(|b| RwLock::new(Arc::new(ShardSlab::build(b, dim)))).collect(),
            dim,
        };
        store.publish_occupancy(&cfg.engine.obs);
        store
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total stored vectors.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.snapshot_of(s).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn snapshot_of(&self, shard: &RwLock<Arc<ShardSlab>>) -> Arc<ShardSlab> {
        // agl-lint: allow(no-panic) — a poisoned lock means a writer panicked mid-swap; nothing to serve.
        shard.read().expect("shard lock poisoned").clone()
    }

    /// Snapshot one shard (readers keep it consistent across a swap).
    pub fn shard(&self, i: usize) -> Arc<ShardSlab> {
        self.snapshot_of(&self.shards[i])
    }

    /// Point lookup, zero-copy: the returned ref derefs to `&[f32]`.
    pub fn get(&self, node: NodeId) -> Option<EmbeddingRef> {
        let slab = self.shard(shard_of(node, self.shards.len()));
        let i = slab.index.binary_search_by_key(&node.0, |(id, _)| *id).ok()?;
        let offset = slab.index[i].1 as usize;
        Some(EmbeddingRef { slab, offset })
    }

    /// Exact top-k nearest neighbors of an arbitrary query vector by dot
    /// product: brute-force per shard, merged across shards. Ties broken
    /// by node id ascending, so the result is independent of shard count.
    pub fn topk(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.topk_impl(query, k, None)
    }

    /// Top-k neighbors of a *stored* node (the node itself excluded).
    pub fn topk_neighbors(&self, node: NodeId, k: usize) -> Option<Vec<Neighbor>> {
        let q = self.get(node)?;
        Some(self.topk_impl(&q, k, Some(node)))
    }

    fn topk_impl(&self, query: &[f32], k: usize, exclude: Option<NodeId>) -> Vec<Neighbor> {
        let mut candidates = Vec::new();
        for shard in &self.shards {
            let slab = self.snapshot_of(shard);
            // Per-shard brute force; keep only each shard's top-k before
            // the merge — the global top-k is a subset of the per-shard
            // top-k sets.
            let start = candidates.len();
            slab.topk_into(query, exclude, &mut candidates);
            let shard_slice = &mut candidates[start..];
            shard_slice.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            let keep = k.min(shard_slice.len());
            candidates.truncate(start + keep);
        }
        candidates.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        candidates.truncate(k);
        candidates.into_iter().map(|(score, id)| Neighbor { node: NodeId(id), score }).collect()
    }

    /// Replace the vectors of `patched` nodes (inserting new ids) by
    /// rebuilding only the affected shards and swapping each slab `Arc`
    /// atomically. Readers either see the whole old slab or the whole new
    /// one — never a torn shard.
    pub fn patch(&self, patched: impl IntoIterator<Item = (NodeId, Vec<f32>)>) {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<(u64, Vec<f32>)>> = (0..n).map(|_| Vec::new()).collect();
        for (node, v) in patched {
            buckets[shard_of(node, n)].push((node.0, v));
        }
        for (i, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            // Build the replacement outside the lock: start from the old
            // snapshot, overlay the patches, then swap under the write
            // lock. `patch` callers are serialised by the updater, so the
            // read-then-swap window cannot lose concurrent patches.
            let old = self.shard(i);
            let mut entries: Vec<(u64, Vec<f32>)> = old.iter().map(|(id, v)| (id.0, v.to_vec())).collect();
            for (id, v) in bucket {
                match entries.binary_search_by_key(&id, |(e, _)| *e) {
                    Ok(pos) => entries[pos].1 = v,
                    Err(pos) => entries.insert(pos, (id, v)),
                }
            }
            let fresh = Arc::new(ShardSlab::build(entries, self.dim));
            // agl-lint: allow(no-panic) — poisoned only if a prior writer panicked; store is dead then.
            *self.shards[i].write().expect("shard lock poisoned") = fresh;
        }
    }

    /// Report per-shard occupancy gauges (`serve.shard<i>.nodes`) into an
    /// obs handle's metrics registry.
    pub fn publish_occupancy(&self, obs: &agl_obs::Obs) {
        if !obs.is_enabled() {
            return;
        }
        for (i, shard) in self.shards.iter().enumerate() {
            obs.gauge_set(&format!("serve.shard{i}.nodes"), self.snapshot_of(shard).len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize) -> ServeConfig {
        ServeConfig { shards, ..ServeConfig::default() }
    }

    fn vectors(n: u64, dim: usize) -> Vec<(NodeId, Vec<f32>)> {
        (0..n).map(|i| (NodeId(i), (0..dim).map(|d| ((i + d as u64) % 7) as f32 - 3.0).collect())).collect()
    }

    #[test]
    fn point_lookup_roundtrips_zero_copy() {
        let store = EmbeddingStore::from_vectors(vectors(100, 8), &cfg(4));
        assert_eq!(store.len(), 100);
        for (id, v) in vectors(100, 8) {
            let got = store.get(id).unwrap();
            assert_eq!(&*got, v.as_slice());
        }
        assert!(store.get(NodeId(100)).is_none());
    }

    /// The pinned contract: exact top-k, bit-identical to a naive global
    /// scan, for every shard count.
    #[test]
    fn topk_matches_naive_scan_across_shard_counts() {
        let vecs = vectors(257, 6);
        let query: Vec<f32> = vec![0.3, -1.0, 2.0, 0.0, 1.5, -0.2];
        let mut naive: Vec<(f32, u64)> =
            vecs.iter().map(|(id, v)| (v.iter().zip(&query).map(|(a, b)| a * b).sum::<f32>(), id.0)).collect();
        naive.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        naive.truncate(8);
        for shards in [1, 2, 4] {
            let store = EmbeddingStore::from_vectors(vecs.clone(), &cfg(shards));
            let got: Vec<(f32, u64)> = store.topk(&query, 8).into_iter().map(|n| (n.score, n.node.0)).collect();
            assert_eq!(got, naive, "shards={shards}");
        }
    }

    #[test]
    fn topk_neighbors_excludes_self() {
        let store = EmbeddingStore::from_vectors(vectors(50, 4), &cfg(2));
        let nb = store.topk_neighbors(NodeId(3), 5).unwrap();
        assert_eq!(nb.len(), 5);
        assert!(nb.iter().all(|n| n.node != NodeId(3)));
    }

    #[test]
    fn patch_swaps_only_dirty_shards_and_preserves_rest() {
        let store = EmbeddingStore::from_vectors(vectors(40, 4), &cfg(4));
        let before: Vec<Arc<ShardSlab>> = (0..4).map(|i| store.shard(i)).collect();
        let target = NodeId(11);
        store.patch([(target, vec![9.0, 9.0, 9.0, 9.0])]);
        assert_eq!(&*store.get(target).unwrap(), &[9.0, 9.0, 9.0, 9.0]);
        let dirty = shard_of(target, 4);
        for i in 0..4 {
            let same = Arc::ptr_eq(&before[i], &store.shard(i));
            assert_eq!(same, i != dirty, "shard {i}");
        }
        // Old snapshots stay readable (consistent view across the swap).
        assert_ne!(before[dirty].get(target).unwrap(), &[9.0, 9.0, 9.0, 9.0]);
    }

    #[test]
    fn patch_inserts_new_nodes() {
        let store = EmbeddingStore::from_vectors(vectors(10, 3), &cfg(2));
        store.patch([(NodeId(77), vec![1.0, 2.0, 3.0])]);
        assert_eq!(store.len(), 11);
        assert_eq!(&*store.get(NodeId(77)).unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn occupancy_gauges_cover_every_shard() {
        let obs = agl_obs::Obs::enabled_logical();
        let c = ServeConfig { shards: 3, ..ServeConfig::default() }.with_obs(obs.clone());
        let store = EmbeddingStore::from_vectors(vectors(30, 2), &c);
        let m = obs.metrics().unwrap();
        let total: u64 = (0..3).map(|i| m.get(&format!("serve.shard{i}.nodes"))).sum();
        assert_eq!(total, 30);
        assert_eq!(store.n_shards(), 3);
    }
}
