//! Per-shard request batching.
//!
//! Under heavy traffic, many concurrent lookups land on the same shard.
//! Touching a shard costs a read-lock acquisition and an `Arc` clone; the
//! batcher pays that once per shard per batch instead of once per request,
//! and answers every request in the batch from the same slab snapshot (so
//! one batch observes one store version, never a torn mix).
//!
//! The response contract is positional: `submit(ids)[i]` is always the
//! answer for `ids[i]`, no matter how requests were regrouped per shard —
//! pinned by the `never_reorders` tests.

use crate::store::{shard_of, EmbeddingStore};
use agl_graph::NodeId;

/// Coalesces lookups per shard against a store.
#[derive(Debug)]
pub struct RequestBatcher<'a> {
    store: &'a EmbeddingStore,
}

impl<'a> RequestBatcher<'a> {
    pub fn new(store: &'a EmbeddingStore) -> Self {
        Self { store }
    }

    /// Answer a batch of point lookups. Responses are positional: slot `i`
    /// answers `ids[i]` (`None` for absent nodes), even with duplicate or
    /// interleaved ids.
    pub fn submit(&self, ids: &[NodeId]) -> Vec<Option<Vec<f32>>> {
        let n_shards = self.store.n_shards();
        // Gather request positions per shard, preserving submission order
        // within each shard group.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_shards];
        for (pos, id) in ids.iter().enumerate() {
            groups[shard_of(*id, n_shards)].push(pos);
        }
        let mut out: Vec<Option<Vec<f32>>> = vec![None; ids.len()];
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // One snapshot per shard per batch: every request in the group
            // reads the same slab version.
            let slab = self.store.shard(shard);
            for pos in group {
                out[pos] = slab.get(ids[pos]).map(<[f32]>::to_vec);
            }
        }
        out
    }

    /// Number of distinct shards a batch of ids would touch — the lock
    /// traffic a batch costs.
    pub fn shards_touched(&self, ids: &[NodeId]) -> usize {
        let n = self.store.n_shards();
        let mut hit = vec![false; n];
        for id in ids {
            hit[shard_of(*id, n)] = true;
        }
        hit.iter().filter(|h| **h).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;

    fn store(n: u64, shards: usize) -> EmbeddingStore {
        let cfg = ServeConfig { shards, ..ServeConfig::default() };
        EmbeddingStore::from_vectors((0..n).map(|i| (NodeId(i), vec![i as f32, -(i as f32)])), &cfg)
    }

    /// The pinned contract: responses never reorder relative to request
    /// ids, whatever the shard layout does to the processing order.
    #[test]
    fn never_reorders_responses() {
        let s = store(64, 4);
        let b = RequestBatcher::new(&s);
        // Adversarial order: interleave shards, include misses and dups.
        let ids: Vec<NodeId> = [63, 0, 7, 0, 99, 21, 63, 5, 100, 13].map(NodeId).to_vec();
        let got = b.submit(&ids);
        assert_eq!(got.len(), ids.len());
        for (i, id) in ids.iter().enumerate() {
            match got[i].as_deref() {
                Some(v) => assert_eq!(v, &[id.0 as f32, -(id.0 as f32)], "slot {i}"),
                None => assert!(id.0 >= 64, "slot {i} should have hit"),
            }
        }
    }

    #[test]
    fn batch_equals_pointwise_lookups() {
        let s = store(40, 3);
        let b = RequestBatcher::new(&s);
        let ids: Vec<NodeId> = (0..50).rev().map(NodeId).collect();
        let batched = b.submit(&ids);
        for (i, id) in ids.iter().enumerate() {
            let point = s.get(*id).map(|r| r.to_vec());
            assert_eq!(batched[i], point, "id {}", id.0);
        }
    }

    #[test]
    fn coalesces_to_one_touch_per_shard() {
        let s = store(64, 4);
        let b = RequestBatcher::new(&s);
        let ids: Vec<NodeId> = (0..64).map(NodeId).collect();
        assert_eq!(b.shards_touched(&ids), 4, "64 ids cost 4 shard touches, not 64");
    }
}
