//! Golden-file coverage for the `agl-obs` Chrome trace export.
//!
//! Two claims, checked against `tests/golden/chrome_trace.json`:
//!
//! 1. The export is well-formed JSON — proven by running it through the
//!    bench crate's strict recursive-descent parser (the same one that
//!    gates `BENCH_pr<N>.json` snapshots), not by substring checks.
//! 2. Under the logical clock the export is byte-stable: the golden file
//!    is the exact output, so any formatting or ordering drift in
//!    `TraceSink::to_chrome_json` shows up as a diff here.
//!
//! Regenerate after a deliberate format change with
//! `AGL_UPDATE_GOLDEN=1 cargo test -p agl-bench --test chrome_trace`.

use agl_bench::validate_json;
use agl_obs::Obs;
use std::fs;
use std::path::Path;

/// A small fixed workload exercising nesting, counters, multiple tracks,
/// and out-of-order track creation.
fn sample_trace() -> String {
    let obs = Obs::enabled_logical();
    {
        let mut job = obs.span("driver", "mapreduce.job");
        {
            let mut map = obs.span("map.t1", "map");
            map.counter("records", 128);
        }
        {
            let mut map = obs.span("map.t0", "map");
            map.counter("records", 130);
        }
        let _pull = obs.span("ps.w0", "ps.pull");
        job.counter("bytes", 4096);
    }
    obs.trace().expect("enabled handle").to_chrome_json()
}

#[test]
fn chrome_export_is_wellformed_and_byte_stable() {
    let json = sample_trace();
    validate_json(&json).expect("chrome export must be well-formed JSON");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"ph\":\"M\""), "thread_name metadata events: {json}");
    assert!(json.contains("\"ph\":\"X\""), "complete events: {json}");

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/chrome_trace.json");
    if std::env::var_os("AGL_UPDATE_GOLDEN").is_some() {
        fs::write(&golden_path, &json).expect("write golden");
    }
    let golden = fs::read_to_string(&golden_path).expect(
        "golden file missing — regenerate with AGL_UPDATE_GOLDEN=1 cargo test -p agl-bench --test chrome_trace",
    );
    assert_eq!(
        json, golden,
        "logical-clock chrome export must be byte-stable; if the format change \
         is deliberate, regenerate tests/golden/chrome_trace.json with AGL_UPDATE_GOLDEN=1"
    );
}

#[test]
fn stage_snapshots_parse_like_bench_snapshots() {
    // The `--trace-json` stage snapshot reuses the bench snapshot schema;
    // keep the two formats from drifting apart.
    let json = "{\n  \"suite\": \"stage-trace\",\n  \"mode\": \"smoke\",\n  \"iters\": 3,\n  \"benches\": [\n    \
                {\"name\": \"stage/flat.total\", \"median_ms\": 12.5}\n  ]\n}\n";
    let snap = agl_bench::BenchSnapshot::parse(json).expect("stage snapshot parses");
    assert_eq!(snap.suite, "stage-trace");
    assert_eq!(snap.benches[0].name, "stage/flat.total");
}
