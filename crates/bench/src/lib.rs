//! `agl-bench` — shared machinery for the experiment harnesses.
//!
//! One binary per table/figure of the paper's evaluation (§4):
//!
//! | binary     | reproduces                                     |
//! |------------|------------------------------------------------|
//! | `table2`   | dataset summary                                |
//! | `table3`   | effectiveness (accuracy / micro-F1 / AUC)      |
//! | `table4`   | time-per-epoch ablation on PPI                 |
//! | `table5`   | inference efficiency on UUG                    |
//! | `fig7`     | convergence vs worker count                    |
//! | `fig8`     | speedup vs worker count                        |
//! | `headline` | the 14 h train / 1.2 h inference extrapolation |
//!
//! Scale knobs (environment variables, all optional):
//!
//! * `AGL_PPI_SCALE` — PPI-like size factor (default 0.08; 1.0 = paper).
//! * `AGL_UUG_NODES` — UUG-like node count (default 10000).
//! * `AGL_EPOCHS` — training epochs for effectiveness runs (default 30).

pub mod compare;

pub use compare::{compare_snapshots, validate_json, BenchComparison, BenchDelta, BenchEntry, BenchSnapshot};

use agl_datasets::{Dataset, Split};
use agl_flat::{FlatConfig, GraphFlat, SamplingStrategy, TargetSpec, TrainingExample};
use agl_graph::{Graph, NodeId};
use agl_mapreduce::JobError;
use std::time::Duration;

/// Read a scale knob from the environment.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// GraphFlat over one graph for an explicit target list, with labels pulled
/// from the graph's node table.
pub fn flatten_targets(graph: &Graph, targets: &[NodeId], cfg: &FlatConfig) -> Result<Vec<TrainingExample>, JobError> {
    let (nodes, edges) = graph.to_tables();
    let out = GraphFlat::new(cfg.clone()).run(&nodes, &edges, &TargetSpec::Ids(targets.to_vec()))?;
    Ok(out.examples)
}

/// GraphFlat over every node of a set of graphs (the inductive protocol).
pub fn flatten_graphs(graphs: &[Graph], cfg: &FlatConfig) -> Result<Vec<TrainingExample>, JobError> {
    let mut all = Vec::new();
    for g in graphs {
        let (nodes, edges) = g.to_tables();
        let out = GraphFlat::new(cfg.clone()).run(&nodes, &edges, &TargetSpec::All)?;
        all.extend(out.examples);
    }
    Ok(all)
}

/// Materialised train/val/test triples for a dataset.
pub struct FlattenedDataset {
    pub train: Vec<TrainingExample>,
    pub val: Vec<TrainingExample>,
    pub test: Vec<TrainingExample>,
}

/// Run GraphFlat for a dataset's three splits.
pub fn flatten_dataset(ds: &Dataset, k_hops: usize, sampling: SamplingStrategy) -> Result<FlattenedDataset, JobError> {
    let cfg = FlatConfig { k_hops, sampling, ..FlatConfig::default() };
    let split = |s: &Split| -> Result<Vec<TrainingExample>, JobError> {
        match s {
            Split::Nodes(ids) => flatten_targets(ds.graph(), ids, &cfg),
            Split::Graphs(gi) => {
                let graphs: Vec<Graph> = gi.iter().map(|&i| ds.graphs[i].clone()).collect();
                flatten_graphs(&graphs, &cfg)
            }
        }
    };
    Ok(FlattenedDataset { train: split(&ds.train)?, val: split(&ds.val)?, test: split(&ds.test)? })
}

/// Pretty seconds.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}s", d.as_secs_f64())
}

/// Pretty hours.
pub fn fmt_hours(d: Duration) -> String {
    format!("{:.2}h", d.as_secs_f64() / 3600.0)
}

/// Print a header block for a harness.
pub fn banner(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_datasets::{uug_like, UugConfig};

    #[test]
    fn flatten_dataset_produces_split_sized_outputs() {
        let ds = uug_like(UugConfig { n_nodes: 300, avg_degree: 4.0, ..UugConfig::default() });
        let f = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 10 }).unwrap();
        assert_eq!(f.train.len(), ds.train.len());
        assert_eq!(f.val.len(), ds.val.len());
        assert_eq!(f.test.len(), ds.test.len());
    }

    #[test]
    fn env_knobs_parse_with_defaults() {
        assert_eq!(env_f64("AGL_DOES_NOT_EXIST", 0.5), 0.5);
        assert_eq!(env_usize("AGL_DOES_NOT_EXIST", 7), 7);
    }
}
