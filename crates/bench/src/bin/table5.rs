//! Table 5 — inference efficiency on the User-User Graph.
//!
//! Compares the **original inference module** (GraphFlat over all nodes +
//! per-GraphFeature forward propagation) against **GraphInfer** (K+1-slice
//! message-passing inference) on the laptop-scale UUG-like graph, then
//! extrapolates both to the paper's 6.23×10⁹-node scale with the cluster
//! model (1000 workers, as in §4.2.2).
//!
//! Paper reference (2-layer GAT, 8-dim embedding, 1000 workers):
//!
//! | method    | phase               | time (s) | CPU (core·min) | Mem (GB·min) |
//! |-----------|---------------------|----------|----------------|--------------|
//! | Original  | GraphFlat           | 13454    | 436016         | 654024       |
//! | Original  | Forward propagation | 5760     | 93240          | 1053150      |
//! | Original  | Total               | 18214    | 529256         | 1707174      |
//! | GraphInfer| Total               | 4423     | 267764         | 401646       |

use agl_bench::{banner, env_usize, fmt_secs};
use agl_cluster_sim::{simulate_mr_job, MrJobModel};
use agl_datasets::uug::{UUG_PAPER_EDGES, UUG_PAPER_NODES};
use agl_datasets::{uug_like, UugConfig};
use agl_flat::{FlatConfig, SamplingStrategy};
use agl_infer::{GraphInfer, InferConfig, OriginalInference};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_obs::Clock;
use std::time::Duration;

fn main() {
    banner("Table 5: Inference efficiency on User-User Graph (2-layer GAT, 8-dim)");
    let n = env_usize("AGL_UUG_NODES", 20_000);
    let ds = uug_like(UugConfig { n_nodes: n, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    println!("UUG-like: {} nodes, {} edges (paper: {UUG_PAPER_NODES:.2e} / {UUG_PAPER_EDGES:.2e})\n", n, ds.n_edges());

    // 2-layer GAT producing an 8-dim embedding, like the paper's deployment.
    let model =
        GnnModel::new(ModelConfig::new(ModelKind::Gat { heads: 2 }, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits));
    let sampling = SamplingStrategy::Uniform { max_degree: 15 };

    // ---- Original inference module ----
    let original = OriginalInference::new(FlatConfig { k_hops: 2, sampling, ..FlatConfig::default() });
    let orig = original.run(&model, &nodes, &edges).expect("original inference");

    // ---- GraphInfer ----
    let clock = Clock::monotonic();
    let t = clock.now();
    let fast = GraphInfer::new(InferConfig { sampling, ..InferConfig::default() })
        .run(&model, &nodes, &edges)
        .expect("graphinfer");
    let fast_time = Duration::from_nanos(clock.since(t));

    println!("-- measured (this machine, laptop scale) --");
    println!("{:<12} {:<22} {:>10} {:>22}", "method", "phase", "time", "embeddings computed");
    println!("{:<12} {:<22} {:>10} {:>22}", "Original", "GraphFlat", fmt_secs(orig.graphflat_time), "-");
    println!(
        "{:<12} {:<22} {:>10} {:>22}",
        "Original",
        "Forward propagation",
        fmt_secs(orig.forward_time),
        orig.embeddings_computed
    );
    println!("{:<12} {:<22} {:>10} {:>22}", "Original", "Total", fmt_secs(orig.total_time()), orig.embeddings_computed);
    println!(
        "{:<12} {:<22} {:>10} {:>22}",
        "GraphInfer",
        "Total",
        fmt_secs(fast_time),
        fast.counters.get("infer.embeddings_computed")
    );
    let speedup = orig.total_time().as_secs_f64() / fast_time.as_secs_f64();
    let repetition = orig.embeddings_computed as f64 / fast.counters.get("infer.embeddings_computed").max(1) as f64;
    println!("\nGraphInfer speedup: {speedup:.1}x (paper: ~4.1x); embedding repetition eliminated: {repetition:.1}x");

    // ---- Cluster extrapolation to paper scale (1000 workers) ----
    println!("\n-- extrapolated to 6.23e9 nodes / 3.38e11 edges, 1000 workers (cluster model) --");
    let records = UUG_PAPER_NODES + UUG_PAPER_EDGES;
    // Calibrate per-record reducer costs from the measured run.
    let local_records = (ds.n_nodes() + ds.n_edges()) as f64;
    let flat_spr = orig.graphflat_time.as_secs_f64() / (local_records * 3.0); // K+1 rounds
    let fwd_spr = orig.forward_time.as_secs_f64() / ds.n_nodes() as f64;
    let infer_spr = fast_time.as_secs_f64() / (local_records * 4.0); // K+2 rounds
                                                                     // Shuffle volume per record per round, from the measured jobs' own
                                                                     // counters: GraphFlat ships growing subgraph payloads, GraphInfer ships
                                                                     // one embedding per edge — this asymmetry is the paper's Table 5 story.
    let flat_bpr = (orig.counters.get("shuffle.bytes") as f64 / (local_records * 3.0)) as u64;
    let infer_bpr = (fast.counters.get("shuffle.bytes") as f64 / (local_records * 4.0)) as u64;

    let flat_sim = simulate_mr_job(&MrJobModel {
        worker_mem_gb: 1.5,
        bytes_per_record: flat_bpr.max(1),
        ..MrJobModel::new(records as u64, 3, flat_spr, 1000)
    });
    let fwd_sim = simulate_mr_job(&MrJobModel {
        worker_mem_gb: 3.0,
        ..MrJobModel::new(UUG_PAPER_NODES as u64, 1, fwd_spr, 1000)
    });
    let infer_sim = simulate_mr_job(&MrJobModel {
        worker_mem_gb: 1.0,
        bytes_per_record: infer_bpr.max(1),
        ..MrJobModel::new(records as u64, 4, infer_spr, 1000)
    });
    println!("calibrated shuffle volume: GraphFlat {flat_bpr} B/record/round vs GraphInfer {infer_bpr} B/record/round");

    println!("{:<12} {:<22} {:>12} {:>16} {:>16}", "method", "phase", "time (s)", "CPU (core*min)", "Mem (GB*min)");
    let row = |m: &str, p: &str, r: &agl_cluster_sim::SimReport| {
        println!("{:<12} {:<22} {:>12.0} {:>16.0} {:>16.0}", m, p, r.wall.as_secs_f64(), r.cpu_core_min, r.mem_gb_min);
    };
    row("Original", "GraphFlat", &flat_sim);
    row("Original", "Forward propagation", &fwd_sim);
    let total = agl_cluster_sim::SimReport {
        wall: flat_sim.wall + fwd_sim.wall,
        cpu_core_min: flat_sim.cpu_core_min + fwd_sim.cpu_core_min,
        mem_gb_min: flat_sim.mem_gb_min + fwd_sim.mem_gb_min,
    };
    row("Original", "Total", &total);
    row("GraphInfer", "Total", &infer_sim);
    println!(
        "\nExtrapolated GraphInfer advantage: {:.1}x time, {:.0}% CPU saved, {:.0}% memory saved",
        total.wall.as_secs_f64() / infer_sim.wall.as_secs_f64(),
        100.0 * (1.0 - infer_sim.cpu_core_min / total.cpu_core_min),
        100.0 * (1.0 - infer_sim.mem_gb_min / total.mem_gb_min),
    );
    println!("(paper: 4.1x time, 49% CPU, 76% memory)");
}
