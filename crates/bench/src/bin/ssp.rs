//! SSP convergence experiment — the consistency spectrum on Cora-like.
//!
//! Trains the same GCN under sync, SSP(1), SSP(4), SSP(16), and async with
//! 4 data-parallel workers, comparing:
//!
//! * the training-loss curve per epoch (does bounded staleness hurt
//!   convergence?),
//! * the parameter server's observed staleness / gate-wait statistics,
//! * a paper-scale extrapolation: the cluster model's SSP gate-wait
//!   fraction and clock drift at 100 workers for the same slack sweep.
//!
//! The expectation this reproduces: SSP with small slack converges like
//! sync while waiting far less at the gate; async never waits but its
//! gradient clock drifts without bound.

use agl_bench::{banner, env_usize, flatten_dataset};
use agl_cluster_sim::{simulate_async_training, simulate_ssp_training, ClusterConfig, TrainingWorkload};
use agl_datasets::cora_like;
use agl_flat::SamplingStrategy;
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_trainer::{Consistency, DistTrainer, TrainOptions};

fn main() {
    banner("SSP: convergence and gate cost across the consistency spectrum");
    let epochs = env_usize("AGL_EPOCHS", 8);
    let ds = cora_like(7);
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).expect("graphflat");
    println!(
        "Cora-like; train/val = {}/{}; GCN 2-layer, 4 workers, {epochs} epochs\n",
        flat.train.len(),
        flat.val.len()
    );

    let modes = [
        Consistency::Sync,
        Consistency::Ssp { slack: 1 },
        Consistency::Ssp { slack: 4 },
        Consistency::Ssp { slack: 16 },
        Consistency::Async,
    ];

    let mut runs = Vec::new();
    for &consistency in &modes {
        let cfg = ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 16, ds.label_dim, 2, Loss::SoftmaxCrossEntropy);
        let mut model = GnnModel::new(cfg);
        let trainer = DistTrainer::new(
            4,
            TrainOptions { epochs, lr: 0.02, batch_size: 32, pruning: true, consistency, ..TrainOptions::default() },
        );
        let r = trainer.train(&mut model, &flat.train, Some(&flat.val));
        runs.push((consistency, r));
    }

    println!("-- training loss per epoch --");
    print!("{:<8}", "epoch");
    for (c, _) in &runs {
        print!("{:>10}", c.to_string());
    }
    println!();
    for e in 0..epochs {
        print!("{:<8}", e + 1);
        for (_, r) in &runs {
            print!("{:>10.4}", r.epochs[e].loss);
        }
        println!();
    }

    println!("\n-- parameter-server staleness accounting (4 workers) --");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "mode", "final acc", "staleness ≤", "gate waits", "waited ms", "steps"
    );
    for (c, r) in &runs {
        let acc = r.val_curve.last().and_then(|m| m.accuracy).unwrap_or(0.0);
        println!(
            "{:<10} {:>10.4} {:>12} {:>10} {:>12.1} {:>10}",
            c.to_string(),
            acc,
            r.max_staleness,
            r.ps_stats.ssp_waits,
            r.ps_stats.ssp_wait_nanos as f64 / 1e6,
            r.ps_stats.steps
        );
    }

    // Paper-scale extrapolation: replay the workload on the cluster model
    // at 100 workers for the same slack sweep, reporting what fraction of
    // worker-time the SSP gate eats vs how far async clocks drift.
    println!("\n-- cluster model, 100 workers (paper scale) --");
    let cfg = ClusterConfig::default();
    let wl = TrainingWorkload {
        examples: 1_200_000,
        secs_per_example: 2e-3,
        batch_size: 128,
        epochs: 2,
        param_bytes: 4 * 200_000,
    };
    println!("{:<10} {:>12} {:>12} {:>12}", "mode", "wall (min)", "wait frac", "max drift");
    for slack in [0u64, 1, 4, 16] {
        let r = simulate_ssp_training(&cfg, &wl, 100, slack);
        println!(
            "{:<10} {:>12.1} {:>11.1}% {:>12}",
            format!("ssp({slack})"),
            r.report.wall.as_secs_f64() / 60.0,
            r.mean_wait_frac * 100.0,
            r.max_lead_steps
        );
    }
    let a = simulate_async_training(&cfg, &wl, 100);
    println!(
        "{:<10} {:>12.1} {:>11.1}% {:>12}",
        "async",
        a.report.wall.as_secs_f64() / 60.0,
        a.mean_wait_frac * 100.0,
        a.max_lead_steps
    );
    println!("\n(SSP buys back nearly all of the sync gate's wait with single-digit slack,");
    println!(" while keeping the gradient clock drift bounded — async drifts with run length.)");
}
