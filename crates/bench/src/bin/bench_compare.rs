//! `bench_compare` — the CI regression gate over bench-history snapshots.
//!
//! ```text
//! bench_compare --baseline results/BENCH_pr2.json \
//!               --current  results/BENCH_pr3.json [--tolerance 0.20]
//! ```
//!
//! Exits non-zero (failing `ci.sh --bench`) when any micro-bench median in
//! the current snapshot is more than `tolerance` slower than the baseline.
//! Benches that appear or disappear between snapshots are reported but
//! never fail the gate — renames shouldn't block a PR.
//!
//! `--trace-baseline <old> --trace-current <new>` additionally diffs two
//! `TRACE_pr<N>.json` per-stage snapshots; stage-time deltas are printed
//! but never fail the gate (end-to-end stage medians are too noisy to
//! block a PR on).

use agl_bench::{compare_snapshots, BenchSnapshot};
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn load(path: &str) -> Result<BenchSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchSnapshot::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(base_path), Some(cur_path)) = (flag(&args, "--baseline"), flag(&args, "--current")) else {
        eprintln!("usage: bench_compare --baseline <old.json> --current <new.json> [--tolerance <frac>]");
        return ExitCode::from(2);
    };
    let tolerance: f64 = match flag(&args, "--tolerance").as_deref().unwrap_or("0.20").parse() {
        Ok(t) if t >= 0.0 => t,
        _ => {
            eprintln!("bench_compare: --tolerance must be a non-negative fraction");
            return ExitCode::from(2);
        }
    };

    let (baseline, current) = match (load(&base_path), load(&cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let cmp = compare_snapshots(&baseline, &current, tolerance);
    println!(
        "bench_compare: {} vs {} (tolerance {:.0}%, noise floor {:.0}us)",
        cur_path,
        base_path,
        tolerance * 100.0,
        agl_bench::compare::NOISE_FLOOR_MS * 1000.0
    );
    for d in &cmp.unchanged {
        println!(
            "  ok      {:<40} {:>9.3} -> {:>9.3} ms  ({:+.1}%)",
            d.name,
            d.baseline_ms,
            d.current_ms,
            d.change * 100.0
        );
    }
    for name in &cmp.added {
        println!("  new     {name}");
    }
    for name in &cmp.removed {
        println!("  removed {name}");
    }
    for d in &cmp.regressions {
        println!(
            "  REGRESS {:<40} {:>9.3} -> {:>9.3} ms  ({:+.1}%)",
            d.name,
            d.baseline_ms,
            d.current_ms,
            d.change * 100.0
        );
    }
    if let (Some(tb), Some(tc)) = (flag(&args, "--trace-baseline"), flag(&args, "--trace-current")) {
        match (load(&tb), load(&tc)) {
            (Ok(base), Ok(cur)) => {
                // Infinite tolerance: every stage lands in `unchanged`, so
                // the deltas are reported without ever failing the gate.
                let t = compare_snapshots(&base, &cur, f64::INFINITY);
                println!("stage-time deltas: {tc} vs {tb} (informational, never failing)");
                for d in &t.unchanged {
                    println!(
                        "  stage   {:<40} {:>9.3} -> {:>9.3} ms  ({:+.1}%)",
                        d.name,
                        d.baseline_ms,
                        d.current_ms,
                        d.change * 100.0
                    );
                }
                for name in &t.added {
                    println!("  new     {name}");
                }
                for name in &t.removed {
                    println!("  removed {name}");
                }
            }
            (Err(e), _) | (_, Err(e)) => println!("stage-time deltas skipped: {e}"),
        }
    }
    if cmp.is_pass() {
        println!("bench_compare: pass ({} benches within tolerance)", cmp.unchanged.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_compare: FAIL — {} bench(es) regressed more than {:.0}%",
            cmp.regressions.len(),
            tolerance * 100.0
        );
        ExitCode::FAILURE
    }
}
