//! The §4.2.2 headline: *"AGL can finish the training of a 2-layer GAT
//! model with 1.2×10⁸ target nodes in 14 hours (7 epochs until convergence,
//! 100 workers), and completes the inference on the whole graph in 1.2
//! hours"* — replayed through the calibrated cluster model.
//!
//! Breakdown the paper gives: GraphFlat ≈ 3.7 h on 1000 workers;
//! GraphTrainer ≈ 10 h on 100 workers; GraphInfer ≈ 1.2 h on 1000 workers;
//! 5.5 GB memory per training worker (550 GB total) vs 35.5 TB to store the
//! graph in memory.

use agl_bench::{banner, env_usize, flatten_dataset, fmt_hours};
use agl_cluster_sim::{simulate_mr_job, simulate_sync_training, ClusterConfig, MrJobModel, TrainingWorkload};
use agl_datasets::uug::{UUG_PAPER_EDGES, UUG_PAPER_NODES, UUG_PAPER_TRAIN};
use agl_datasets::{uug_like, UugConfig};
use agl_flat::{FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_obs::Clock;
use agl_trainer::{LocalTrainer, TrainOptions};

fn main() {
    banner("Headline: 14h training / 1.2h inference at 6.23e9 nodes (cluster model)");
    let n = env_usize("AGL_UUG_NODES", 6_000);
    // Feature width for calibration (AGL_UUG_FEATURES). Default 32: our
    // in-process reducer copies raw feature vectors per record, so width
    // inflates its per-record cost in a way real columnar reducers avoid;
    // 32-dim calibration lands closest to the per-record cost the paper's
    // own numbers imply (printed below).
    let fdim = env_usize("AGL_UUG_FEATURES", 32);
    let ds = uug_like(UugConfig { n_nodes: n, feature_dim: fdim, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let sampling = SamplingStrategy::Uniform { max_degree: 15 };

    // ---- calibrate GraphFlat cost/record ----
    let clock = Clock::monotonic();
    let t = clock.now();
    let flat_all = GraphFlat::new(FlatConfig { k_hops: 2, sampling, ..FlatConfig::default() })
        .run(&nodes, &edges, &TargetSpec::All)
        .expect("graphflat");
    let flat_secs = clock.since(t) as f64 / 1e9;
    let local_records = (ds.n_nodes() + ds.n_edges()) as f64;
    let flat_spr = flat_secs / (local_records * 3.0);

    // ---- calibrate training cost/example (at the paper's 656-dim width:
    // worker compute is feature-bound, unlike the shuffle-bound reducers) ----
    let ds_train = uug_like(UugConfig { n_nodes: (n / 3).max(1000), feature_dim: 656, ..UugConfig::default() });
    let flat = flatten_dataset(&ds_train, 2, sampling).expect("flat splits");
    let cfg = ModelConfig::new(ModelKind::Gat { heads: 2 }, ds_train.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg.clone());
    let opts = TrainOptions { epochs: 3, lr: 0.01, batch_size: 32, pruning: true, ..TrainOptions::default() };
    let result = LocalTrainer::new(opts).train(&mut model, &flat.train);
    let secs_per_example = result.mean_epoch_time().as_secs_f64() / flat.train.len() as f64;
    println!(
        "calibration: GraphFlat {:.2e}s/record/round, training {:.2e}s/example (laptop, {} GraphFeatures)\n",
        flat_spr,
        secs_per_example,
        flat_all.examples.len()
    );

    // ---- paper-scale replays ----
    let records = (UUG_PAPER_NODES + UUG_PAPER_EDGES) as u64;
    let graphflat = simulate_mr_job(&MrJobModel::new(records, 3, flat_spr, 1000));
    let training = simulate_sync_training(
        &ClusterConfig::default(),
        &TrainingWorkload {
            examples: UUG_PAPER_TRAIN as u64,
            secs_per_example,
            batch_size: 128,
            epochs: 7,
            param_bytes: 4 * GnnModel::new(cfg).param_count() as u64,
        },
        100,
    );
    let inference = simulate_mr_job(&MrJobModel::new(records, 4, flat_spr * 0.6, 1000));

    println!("{:<28} {:>10} {:>10}", "phase", "simulated", "paper");
    println!("{:<28} {:>10} {:>10}", "GraphFlat (1000 workers)", fmt_hours(graphflat.wall), "3.7h");
    println!("{:<28} {:>10} {:>10}", "GraphTrainer (100 workers)", fmt_hours(training.wall), "10h");
    println!("{:<28} {:>10} {:>10}", "Total training pipeline", fmt_hours(graphflat.wall + training.wall), "14h");
    println!("{:<28} {:>10} {:>10}", "GraphInfer (1000 workers)", fmt_hours(inference.wall), "1.2h");
    // What the paper's own wall-clocks imply per record/example — the
    // constants a reader should compare the local calibration against.
    let paper_flat_spr = 3.7 * 3600.0 * 1000.0 / (records as f64 * 3.0);
    let paper_train_spe = 10.0 * 3600.0 * 100.0 / (UUG_PAPER_TRAIN * 7.0);
    println!(
        "
calibration check — paper-implied constants: GraphFlat {paper_flat_spr:.1e}s/record/round          (local: {flat_spr:.1e}), training {paper_train_spe:.1e}s/example (local: {secs_per_example:.1e})"
    );
    println!(
        "\nTraining memory: 5.5 GB x 100 workers = 550 GB held, vs ~35.5 TB to hold the graph in RAM — \
         the in-memory designs cannot run this at all (Table 1 context)."
    );
    println!(
        "Note: absolute hours depend on this machine's per-record calibration; the paper's testbed \
         differs. The claim reproduced is the *feasibility shape*: paper-scale wall-clock lands in \
         hours on commodity MapReduce/PS infrastructure, with inference ~4x cheaper than the original module."
    );
}
