//! Table 2 — summary of datasets.
//!
//! Prints the generated datasets' shapes next to the paper's published
//! numbers. The UUG row shows the generated (laptop-scale) graph plus the
//! paper-scale reference the cluster simulator targets.

use agl_bench::{banner, env_f64, env_usize};
use agl_datasets::uug::{UUG_PAPER_EDGES, UUG_PAPER_NODES, UUG_PAPER_TEST, UUG_PAPER_TRAIN, UUG_PAPER_VAL};
use agl_datasets::{cora_like, ppi_like, uug_like, PpiConfig, UugConfig};

fn main() {
    banner("Table 2: Summary of datasets (generated vs paper)");

    let cora = cora_like(1);
    println!("{}", cora.summary());
    println!("{:<10} | paper: nodes 2708 | edges 5429(undirected) | feat 1433 | classes 7 | 140/500/1000", "");

    let scale = env_f64("AGL_PPI_SCALE", 0.08);
    let ppi = ppi_like(PpiConfig { seed: 17, scale });
    println!("{}", ppi.summary());
    println!(
        "{:<10} | paper: nodes 56944 (24 graphs) | edges 818716 | feat 50 | classes 121(multilabel) | 20/2/2 graphs (scale={scale})",
        ""
    );

    let n = env_usize("AGL_UUG_NODES", 10_000);
    let uug = uug_like(UugConfig { n_nodes: n, ..UugConfig::default() });
    println!("{}", uug.summary());
    println!(
        "{:<10} | paper: nodes {UUG_PAPER_NODES:.2e} | edges {UUG_PAPER_EDGES:.2e} | feat 656 | classes 2 | {UUG_PAPER_TRAIN:.1e}/{UUG_PAPER_VAL:.0e}/{UUG_PAPER_TEST:.1e}",
        ""
    );

    let stats = agl_graph::stats::in_degree_stats(uug.graph()).unwrap();
    println!(
        "\nUUG-like degree skew (drives re-indexing/sampling): max={} p99={} p50={} mean={:.1}",
        stats.max, stats.p99, stats.p50, stats.mean
    );
}
