//! Figure 8 — speedup ratio vs number of training workers (1 → 100).
//!
//! Two layers of evidence:
//!
//! 1. **Measured**: per-example compute cost from a real `LocalTrainer`
//!    epoch on this machine (this also calibrates the model below). True
//!    thread-scaling cannot be shown on a small core count, so the wall
//!    numbers are reported for transparency, not as the speedup claim.
//! 2. **Simulated**: the calibrated cluster model replays synchronous PS
//!    training for 1..100 workers, reproducing the paper's near-linear
//!    curve with slope ≈ 0.8 (78× at 100 workers).

use agl_bench::{banner, env_usize, flatten_dataset};
use agl_cluster_sim::{speedup_curve, ClusterConfig, TrainingWorkload};
use agl_datasets::{uug_like, UugConfig};
use agl_flat::SamplingStrategy;
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_trainer::{LocalTrainer, TrainOptions};

fn main() {
    banner("Figure 8: Speedup ratio vs number of workers");
    let n = env_usize("AGL_UUG_NODES", 6_000);
    let ds = uug_like(UugConfig { n_nodes: n, ..UugConfig::default() });
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).expect("graphflat");

    // ---- calibrate per-example cost from a measured epoch ----
    let cfg = ModelConfig::new(ModelKind::Gat { heads: 2 }, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg.clone());
    let opts = TrainOptions { epochs: 3, lr: 0.01, batch_size: 32, pruning: true, ..TrainOptions::default() };
    let result = LocalTrainer::new(opts).train(&mut model, &flat.train);
    let epoch_secs = result.mean_epoch_time().as_secs_f64();
    let secs_per_example = epoch_secs / flat.train.len() as f64;
    let param_bytes = 4 * GnnModel::new(cfg).param_count() as u64;
    println!(
        "calibration: {} examples/epoch, measured epoch {:.2}s -> {:.3}ms/example; model {} bytes\n",
        flat.train.len(),
        epoch_secs,
        secs_per_example * 1e3,
        param_bytes
    );

    // ---- simulated speedup curve at paper-like workload ----
    let wl = TrainingWorkload {
        examples: 1_200_000, // scaled-down stand-in for the paper's 1.2e8
        secs_per_example,
        batch_size: 128,
        epochs: 1,
        param_bytes,
    };
    let workers: Vec<usize> = vec![1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let curve = speedup_curve(&ClusterConfig::default(), &wl, &workers);
    println!("{:<10} {:>10} {:>8}", "workers", "speedup", "slope");
    for (w, s) in &curve {
        println!("{w:<10} {s:>10.1} {:>8.2}", s / *w as f64);
    }
    let (_, s100) = curve.last().unwrap();
    println!("\n100-worker speedup: {s100:.1}x (paper: 78x, slope ~0.8)");
}
