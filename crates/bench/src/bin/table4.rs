//! Table 4 — time-cost per epoch on PPI, standalone mode.
//!
//! Rows: the in-memory full-graph baseline (DGL/PyG stand-in) and AGL under
//! its four optimisation configurations — base (pipeline only), +pruning,
//! +partition, +pruning&partition — for GCN / GraphSAGE / GAT at 1/2/3
//! layers.
//!
//! NOTE on +partition: this machine's core count bounds what edge
//! partitioning can show; the harness prints the detected core count so the
//! reader can judge. The kernels themselves are verified bit-identical to
//! the sequential path in `agl-tensor` tests.

use agl_baseline::FullGraphEngine;
use agl_bench::{banner, env_f64, env_usize, flatten_dataset};
use agl_datasets::{ppi_like, PpiConfig, Split};
use agl_flat::SamplingStrategy;
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_trainer::{LocalTrainer, TrainOptions};
use std::time::Duration;

fn epoch_time_agl(
    train: &[agl_flat::TrainingExample],
    feature_dim: usize,
    label_dim: usize,
    kind: ModelKind,
    layers: usize,
    pruning: bool,
    partitions: usize,
) -> Duration {
    let cfg = ModelConfig::new(kind, feature_dim, 64, label_dim, layers, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions {
        epochs: 3,
        batch_size: 64,
        lr: 0.01,
        pruning,
        partitions,
        pipeline: true,
        ..TrainOptions::default()
    };
    LocalTrainer::new(opts).train(&mut model, train).mean_epoch_time()
}

fn epoch_time_baseline(
    graphs: &[agl_graph::Graph],
    feature_dim: usize,
    label_dim: usize,
    kind: ModelKind,
    layers: usize,
) -> Duration {
    let cfg = ModelConfig::new(kind, feature_dim, 64, label_dim, layers, Loss::BceWithLogits);
    let mut model = GnnModel::new(cfg);
    let engine = FullGraphEngine { epochs: 3, lr: 0.01, ..Default::default() };
    let hist = engine.train_inductive(&mut model, graphs);
    let skip = usize::from(hist.len() > 2);
    let rest = &hist[skip..];
    rest.iter().map(|e| e.duration).sum::<Duration>() / rest.len() as u32
}

fn main() {
    banner("Table 4: Time-cost(s) per epoch on PPI-like, standalone mode");
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("(available cores: {threads}; edge partitions use 4 threads)\n");

    let scale = env_f64("AGL_PPI_SCALE", 0.08);
    let ppi = ppi_like(PpiConfig { seed: 17, scale });
    println!("PPI-like at scale {scale}: {} nodes, {} edges\n", ppi.n_nodes(), ppi.n_edges());

    let train_graphs: Vec<agl_graph::Graph> = match &ppi.train {
        Split::Graphs(gi) => gi.iter().map(|&i| ppi.graphs[i].clone()).collect(),
        _ => unreachable!(),
    };
    // AGL trains from disk-stored GraphFeatures of every training-graph node.
    let max_layers = env_usize("AGL_TABLE4_LAYERS", 3);
    let fdim = ppi.feature_dim();
    let ldim = ppi.label_dim;
    for (name, kind) in [("GCN", ModelKind::Gcn), ("GraphSAGE", ModelKind::Sage), ("GAT", ModelKind::Gat { heads: 2 })]
    {
        println!("== {name} ==");
        println!("{:<26} {}", "config", (1..=max_layers).map(|l| format!("{l}-layer ")).collect::<String>());
        let mut rows: Vec<(String, Vec<f64>)> = vec![
            ("FullGraph(baseline)".into(), vec![]),
            ("AGL_base".into(), vec![]),
            ("AGL+pruning".into(), vec![]),
            ("AGL+partition".into(), vec![]),
            ("AGL+pruning&partition".into(), vec![]),
        ];
        for layers in 1..=max_layers {
            // k-hop depth must match the deepest model using the features.
            let flat = flatten_dataset(&ppi, layers, SamplingStrategy::Uniform { max_degree: 15 }).expect("flat");
            rows[0].1.push(epoch_time_baseline(&train_graphs, fdim, ldim, kind, layers).as_secs_f64());
            rows[1].1.push(epoch_time_agl(&flat.train, fdim, ldim, kind, layers, false, 1).as_secs_f64());
            rows[2].1.push(epoch_time_agl(&flat.train, fdim, ldim, kind, layers, true, 1).as_secs_f64());
            rows[3].1.push(epoch_time_agl(&flat.train, fdim, ldim, kind, layers, false, 4).as_secs_f64());
            rows[4].1.push(epoch_time_agl(&flat.train, fdim, ldim, kind, layers, true, 4).as_secs_f64());
        }
        for (label, times) in rows {
            let cells: String = times.iter().map(|t| format!("{t:>7.3} ")).collect();
            println!("{label:<26} {cells}");
        }
        println!();
    }
    println!("Paper's qualitative shape: pruning helps at ≥2 layers (not at 1);");
    println!("partitioning helps GCN/GraphSAGE more than GAT (dense attention dominates).");
}
