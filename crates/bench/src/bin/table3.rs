//! Table 3 — effectiveness of GCN / GraphSAGE / GAT trained with AGL vs the
//! in-memory full-graph baseline (the DGL/PyG stand-in).
//!
//! * Cora-like: accuracy on the 1000-node test split.
//! * PPI-like: micro-F1 over the 2 test graphs.
//! * UUG-like: AUC on the held-out labeled nodes — AGL only, mirroring the
//!   paper (the single-machine systems OOM on the real UUG; our baseline
//!   *could* run at laptop scale, so we still report it in brackets for
//!   reference).

use agl_baseline::FullGraphEngine;
use agl_bench::{banner, env_f64, env_usize, flatten_dataset};
use agl_datasets::{cora_like, ppi_like, uug_like, Dataset, PpiConfig, UugConfig};
use agl_flat::SamplingStrategy;
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_trainer::{LocalTrainer, TrainOptions};

fn kinds() -> Vec<(&'static str, ModelKind)> {
    vec![("GCN", ModelKind::Gcn), ("GraphSAGE", ModelKind::Sage), ("GAT", ModelKind::Gat { heads: 2 })]
}

/// Train with AGL (GraphFlat triples + GraphTrainer) and return the test
/// headline metric.
fn agl_headline(ds: &Dataset, kind: ModelKind, hidden: usize, loss: Loss, epochs: usize, lr: f32) -> f64 {
    let flat = flatten_dataset(ds, 2, SamplingStrategy::Uniform { max_degree: 20 }).expect("graphflat");
    let cfg = ModelConfig::new(kind, ds.feature_dim(), hidden, ds.label_dim, 2, loss).with_dropout(0.1);
    let mut model = GnnModel::new(cfg);
    let opts = TrainOptions { epochs, lr, batch_size: 32, pruning: true, ..TrainOptions::default() };
    LocalTrainer::new(opts.clone()).train(&mut model, &flat.train);
    LocalTrainer::evaluate(&model, &flat.test, &opts).headline()
}

/// Train the full-graph in-memory baseline and return the test headline.
fn baseline_headline(ds: &Dataset, kind: ModelKind, hidden: usize, loss: Loss, epochs: usize, lr: f32) -> f64 {
    let cfg = ModelConfig::new(kind, ds.feature_dim(), hidden, ds.label_dim, 2, loss).with_dropout(0.1);
    let mut model = GnnModel::new(cfg);
    let engine = FullGraphEngine { epochs, lr, ..Default::default() };
    match (&ds.train, &ds.test) {
        (agl_datasets::Split::Nodes(train), agl_datasets::Split::Nodes(test)) => {
            engine.train_transductive(&mut model, ds.graph(), train);
            engine.evaluate(&model, ds.graph(), test).headline()
        }
        (agl_datasets::Split::Graphs(tr), agl_datasets::Split::Graphs(te)) => {
            let train: Vec<_> = tr.iter().map(|&i| ds.graphs[i].clone()).collect();
            let test: Vec<_> = te.iter().map(|&i| ds.graphs[i].clone()).collect();
            engine.train_inductive(&mut model, &train);
            engine.evaluate_graphs(&model, &test).headline()
        }
        _ => unreachable!("mixed split kinds"),
    }
}

fn main() {
    banner("Table 3: Effectiveness of GNNs trained with different systems");
    let epochs = env_usize("AGL_EPOCHS", 30);

    println!("\n-- Cora-like (accuracy; paper: GCN 0.811 / GraphSAGE 0.827 / GAT 0.830 with AGL) --");
    let cora = cora_like(1);
    for (name, kind) in kinds() {
        let base = baseline_headline(&cora, kind, 16, Loss::SoftmaxCrossEntropy, epochs.max(60), 0.02);
        let agl = agl_headline(&cora, kind, 16, Loss::SoftmaxCrossEntropy, epochs, 0.01);
        println!("{name:<10}  FullGraph(baseline) {base:.3}   AGL {agl:.3}");
    }

    println!("\n-- PPI-like (micro-F1; paper: GCN 0.567 / GraphSAGE 0.635 / GAT 0.977 with AGL) --");
    let ppi = ppi_like(PpiConfig { seed: 17, scale: env_f64("AGL_PPI_SCALE", 0.08) });
    for (name, kind) in kinds() {
        let base = baseline_headline(&ppi, kind, 64, Loss::BceWithLogits, epochs * 2, 0.02);
        let agl = agl_headline(&ppi, kind, 64, Loss::BceWithLogits, epochs.min(15), 0.02);
        println!("{name:<10}  FullGraph(baseline) {base:.3}   AGL {agl:.3}");
    }

    println!("\n-- UUG-like (AUC; paper: GCN 0.681 / GraphSAGE 0.708 / GAT 0.867; DGL/PyG OOM) --");
    let uug = uug_like(UugConfig { n_nodes: env_usize("AGL_UUG_NODES", 10_000), ..UugConfig::default() });
    for (name, kind) in kinds() {
        let agl = agl_headline(&uug, kind, 16, Loss::BceWithLogits, epochs, 0.01);
        let base = baseline_headline(&uug, kind, 16, Loss::BceWithLogits, epochs, 0.01);
        println!("{name:<10}  AGL {agl:.3}   [laptop-scale FullGraph for reference: {base:.3}; paper marks OOM]");
    }
}
