//! Design-choice ablations beyond the paper's tables:
//!
//! 1. **Parameter-server consistency spectrum** — sync / SSP / async with
//!    the same budget of pushes: final validation AUC, wall-clock, and the
//!    observed gradient staleness.
//! 2. **Re-indexing** — largest reduce group with and without hub
//!    splitting (the load-balance claim of §3.2.2, made measurable).
//! 3. **Sampling strategies** — neighborhood size and downstream model
//!    quality for none / uniform / weighted / top-k.
//! 4. **Prefetch pipeline** — epoch time with and without the
//!    preprocessing/compute overlap.

use agl_bench::{banner, env_usize, flatten_dataset};
use agl_datasets::{uug_like, UugConfig};
use agl_flat::{decode_graph_feature, FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_trainer::{Consistency, DistTrainer, LocalTrainer, TrainOptions};

fn model(ds: &agl_datasets::Dataset) -> GnnModel {
    GnnModel::new(ModelConfig::new(ModelKind::Sage, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits))
}

fn main() {
    banner("Ablations: sync/async PS, re-indexing, sampling, pipeline");
    let n = env_usize("AGL_UUG_NODES", 6_000);
    let ds = uug_like(UugConfig { n_nodes: n, signal: 0.4, train_frac: 0.08, val_frac: 0.04, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).expect("graphflat");

    // ---- 1. PS consistency spectrum ----
    println!("\n-- parameter server: consistency spectrum (4 workers, same push budget) --");
    for consistency in
        [Consistency::Sync, Consistency::Ssp { slack: 2 }, Consistency::Ssp { slack: 8 }, Consistency::Async]
    {
        let mut m = model(&ds);
        let trainer = DistTrainer::new(
            4,
            TrainOptions { epochs: 5, lr: 0.01, batch_size: 32, pruning: true, consistency, ..TrainOptions::default() },
        );
        let clock = agl_obs::Clock::monotonic();
        let t = clock.now();
        let r = trainer.train(&mut m, &flat.train, Some(&flat.val));
        println!(
            "{:<8} val AUC {:.4}  wall {:.2}s  ({} steps, {} pushes, staleness ≤ {}, {} gate waits)",
            consistency.to_string(),
            r.val_curve.last().unwrap().auc.unwrap(),
            clock.since(t) as f64 / 1e9,
            r.ps_stats.steps,
            r.ps_stats.pushes,
            r.max_staleness,
            r.ps_stats.ssp_waits
        );
    }

    // ---- 2. re-indexing load balance ----
    println!("\n-- re-indexing: largest in-edge group a reducer merges --");
    let stats = agl_graph::stats::in_degree_stats(ds.graph()).unwrap();
    for (label, threshold, fanout) in [("off", usize::MAX, 1u32), ("fanout 4", 50, 4), ("fanout 8", 50, 8)] {
        let out = GraphFlat::new(FlatConfig {
            k_hops: 2,
            hub_threshold: threshold,
            reindex_fanout: fanout,
            ..FlatConfig::default()
        })
        .run(&nodes, &edges, &TargetSpec::Ids(ds.train.node_ids().to_vec()))
        .expect("graphflat");
        println!(
            "re-indexing {label:<9} max group = {:>6} in-edges (graph max in-degree {})",
            out.counters.get("flat.max_group_in_edges"),
            stats.max
        );
    }

    // ---- 3. sampling strategies ----
    println!("\n-- sampling strategies (cap 10): neighborhood size + downstream AUC --");
    for (label, s) in [
        ("none", SamplingStrategy::None),
        ("uniform", SamplingStrategy::Uniform { max_degree: 10 }),
        ("weighted", SamplingStrategy::Weighted { max_degree: 10 }),
        ("topk", SamplingStrategy::TopK { max_degree: 10 }),
    ] {
        let f = flatten_dataset(&ds, 2, s).expect("graphflat");
        let mean_nodes: f64 =
            f.train.iter().map(|e| decode_graph_feature(&e.graph_feature).unwrap().n_nodes() as f64).sum::<f64>()
                / f.train.len() as f64;
        let bytes: usize = f.train.iter().map(|e| e.graph_feature.len()).sum();
        let mut m = model(&ds);
        let opts = TrainOptions { epochs: 6, lr: 0.02, batch_size: 32, pruning: true, ..TrainOptions::default() };
        LocalTrainer::new(opts.clone()).train(&mut m, &f.train);
        let auc = LocalTrainer::evaluate(&m, &f.val, &opts).auc.unwrap();
        println!(
            "{label:<9} mean hood {mean_nodes:>7.1} nodes, store {:>6.2} MB, val AUC {auc:.4}",
            bytes as f64 / 1e6
        );
    }

    // ---- 4. prefetch pipeline ----
    println!("\n-- training pipeline: prefetch on/off (mean epoch time) --");
    for pipeline in [true, false] {
        let mut m = model(&ds);
        let opts =
            TrainOptions { epochs: 4, lr: 0.01, batch_size: 32, pruning: true, pipeline, ..TrainOptions::default() };
        let r = LocalTrainer::new(opts).train(&mut m, &flat.train);
        println!(
            "pipeline {:<4} mean epoch {:.3}s",
            if pipeline { "on" } else { "off" },
            r.mean_epoch_time().as_secs_f64()
        );
    }
    println!("\n(1 core: the pipeline's overlap gain needs a second core; the paper's claim is");
    println!(" that preprocessing hides behind compute, which the two-thread structure provides.)");
}
