//! Figure 7 — convergence: validation AUC vs epoch for different worker
//! counts (synchronous parameter-server training of a GAT on UUG-like).
//!
//! The paper's observation to reproduce: all worker counts converge to the
//! same AUC level; more workers need more epochs to get there (the
//! effective batch grows with the worker count).

use agl_bench::{banner, env_usize, flatten_dataset};
use agl_datasets::{uug_like, UugConfig};
use agl_flat::SamplingStrategy;
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_trainer::{DistTrainer, TrainOptions};

fn main() {
    banner("Figure 7: Convergence (val AUC vs epoch) for 1/10/20/30 workers");
    let n = env_usize("AGL_UUG_NODES", 6_000);
    let epochs = env_usize("AGL_EPOCHS", 7);
    // A hard enough task that convergence takes several epochs: weak
    // feature signal (neighborhood aggregation required) and a larger
    // labeled set, like the paper's UUG run.
    let ds = uug_like(UugConfig { n_nodes: n, signal: 0.25, train_frac: 0.1, val_frac: 0.05, ..UugConfig::default() });
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).expect("graphflat");
    println!("UUG-like {} nodes; train/val = {}/{}; GAT 2-layer, sync PS\n", n, flat.train.len(), flat.val.len());

    let worker_counts = [1usize, 10, 20, 30];
    let mut curves: Vec<(usize, Vec<f64>)> = Vec::new();
    for &w in &worker_counts {
        let cfg = ModelConfig::new(ModelKind::Gat { heads: 2 }, ds.feature_dim(), 8, 1, 2, Loss::BceWithLogits);
        let mut model = GnnModel::new(cfg);
        let trainer = DistTrainer::new(
            w,
            TrainOptions { epochs, lr: 0.002, batch_size: 32, pruning: true, ..TrainOptions::default() },
        );
        let result = trainer.train(&mut model, &flat.train, Some(&flat.val));
        let aucs: Vec<f64> = result.val_curve.iter().map(|m| m.auc.unwrap_or(0.5)).collect();
        curves.push((w, aucs));
    }

    print!("{:<8}", "epoch");
    for &(w, _) in &curves {
        print!("{:>12}", format!("{w} workers"));
    }
    println!();
    for e in 0..epochs {
        print!("{:<8}", e + 1);
        for (_, aucs) in &curves {
            print!("{:>12.4}", aucs[e]);
        }
        println!();
    }
    let finals: Vec<f64> = curves.iter().map(|(_, a)| *a.last().unwrap()).collect();
    let spread = finals.iter().cloned().fold(f64::MIN, f64::max) - finals.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nFinal-AUC spread across worker counts: {spread:.4} (paper: curves meet at the same level)");
}
