//! Bench-history regression gating.
//!
//! `ci.sh --bench` writes one `results/BENCH_pr<N>.json` snapshot per PR
//! (the hand-rolled format of `benches/micro.rs::Harness::to_json`). This
//! module parses those snapshots and compares the newest against its
//! predecessor: any micro-bench whose median slows down by more than the
//! tolerance (default 20 %) is a regression and fails CI.
//!
//! The parser is a tiny recursive-descent JSON reader — the workspace is
//! deliberately offline, so no serde. It handles the full JSON grammar our
//! snapshots use (objects, arrays, strings with `\"` escapes, numbers) and
//! rejects anything malformed with a byte-offset error.

use std::collections::BTreeMap;

/// One micro-bench measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub name: String,
    pub median_ms: f64,
}

/// A parsed `results/BENCH_pr<N>.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    pub suite: String,
    pub mode: String,
    pub iters: u64,
    pub benches: Vec<BenchEntry>,
}

impl BenchSnapshot {
    /// Parse a snapshot from its JSON text.
    pub fn parse(json: &str) -> Result<Self, String> {
        let value = JsonValue::parse(json)?;
        let top = value.as_object("top level")?;
        let suite = field(top, "suite")?.as_str("suite")?.to_string();
        let mode = field(top, "mode")?.as_str("mode")?.to_string();
        let iters = field(top, "iters")?.as_f64("iters")? as u64;
        let mut benches = Vec::new();
        for (i, b) in field(top, "benches")?.as_array("benches")?.iter().enumerate() {
            let obj = b.as_object(&format!("benches[{i}]"))?;
            benches.push(BenchEntry {
                name: field(obj, "name")?.as_str("name")?.to_string(),
                median_ms: field(obj, "median_ms")?.as_f64("median_ms")?,
            });
        }
        Ok(Self { suite, mode, iters, benches })
    }
}

fn field<'a>(obj: &'a BTreeMap<String, JsonValue>, key: &str) -> Result<&'a JsonValue, String> {
    obj.get(key).ok_or_else(|| format!("missing field \"{key}\""))
}

/// Parse arbitrary JSON text strictly, returning the parse error for
/// malformed input. Used by the trace-export tests to prove `agl-obs`
/// Chrome trace files are well-formed without pulling in serde.
pub fn validate_json(text: &str) -> Result<(), String> {
    JsonValue::parse(text).map(|_| ())
}

/// How one bench moved between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    pub name: String,
    pub baseline_ms: f64,
    pub current_ms: f64,
    /// `current / baseline - 1`: +0.25 means 25 % slower.
    pub change: f64,
}

/// The verdict of comparing a current snapshot against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchComparison {
    /// Benches slower than `baseline * (1 + tolerance)` — these fail CI.
    pub regressions: Vec<BenchDelta>,
    /// Benches present in both snapshots and within tolerance.
    pub unchanged: Vec<BenchDelta>,
    /// Benches only in the current snapshot (noted, never failing).
    pub added: Vec<String>,
    /// Benches only in the baseline (noted, never failing).
    pub removed: Vec<String>,
}

impl BenchComparison {
    pub fn is_pass(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Benches named `*_vs_plain` hold a unitless ratio (instrumented /
/// plain), not a time: they are gated *absolutely* at [`RATIO_LIMIT`]
/// instead of relative to the baseline, so an overhead regression fails CI
/// even on the very first snapshot that records the bench.
pub const RATIO_SUFFIX: &str = "_vs_plain";
/// Maximum allowed `*_vs_plain` ratio: 1.02 = 2 % overhead.
pub const RATIO_LIMIT: f64 = 1.02;

/// Absolute slowdown a time bench must exceed — on top of the relative
/// tolerance — before it counts as a regression. Micro-benches in the low
/// microseconds swing well past 20 % run-to-run from scheduler and
/// frequency noise alone; a relative gate with no floor turns that noise
/// into CI flakes. 50 µs is far above timer jitter but far below any
/// slowdown worth failing a build over. Ratio (`*_vs_plain`) benches are
/// exempt: their interleaved paired measurement cancels machine drift, so
/// they stay gated purely on [`RATIO_LIMIT`].
pub const NOISE_FLOOR_MS: f64 = 0.05;

/// Compare medians bench-by-bench. `tolerance` is the allowed fractional
/// slowdown (0.20 = a bench may be up to 20 % slower before CI fails); a
/// slowdown additionally has to exceed [`NOISE_FLOOR_MS`] in absolute
/// terms before it fails. `*_vs_plain` ratio benches are instead gated
/// absolutely at [`RATIO_LIMIT`].
pub fn compare_snapshots(baseline: &BenchSnapshot, current: &BenchSnapshot, tolerance: f64) -> BenchComparison {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let mut out = BenchComparison::default();
    let base: BTreeMap<&str, f64> = baseline.benches.iter().map(|b| (b.name.as_str(), b.median_ms)).collect();
    let cur: BTreeMap<&str, f64> = current.benches.iter().map(|b| (b.name.as_str(), b.median_ms)).collect();
    for b in &current.benches {
        if b.name.ends_with(RATIO_SUFFIX) {
            let old = base.get(b.name.as_str()).copied().unwrap_or(1.0);
            let delta = BenchDelta {
                name: b.name.clone(),
                baseline_ms: old,
                current_ms: b.median_ms,
                change: b.median_ms - 1.0,
            };
            if b.median_ms > RATIO_LIMIT {
                out.regressions.push(delta);
            } else {
                out.unchanged.push(delta);
            }
            continue;
        }
        match base.get(b.name.as_str()) {
            None => out.added.push(b.name.clone()),
            Some(&old) => {
                let delta = BenchDelta {
                    name: b.name.clone(),
                    baseline_ms: old,
                    current_ms: b.median_ms,
                    change: if old > 0.0 { b.median_ms / old - 1.0 } else { 0.0 },
                };
                if delta.change > tolerance && b.median_ms - old > NOISE_FLOOR_MS {
                    out.regressions.push(delta);
                } else {
                    out.unchanged.push(delta);
                }
            }
        }
    }
    for b in &baseline.benches {
        if !cur.contains_key(b.name.as_str()) {
            out.removed.push(b.name.clone());
        }
    }
    // Worst offenders first, so the CI log leads with the headline.
    out.regressions.sort_by(|a, b| b.change.total_cmp(&a.change));
    out
}

/// The subset of JSON our snapshots use, parsed strictly.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<Self, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, String> {
        match self {
            JsonValue::Object(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(v) => Ok(v),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &str, value: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(c) => return Err(format!("unsupported escape '\\{}'", *c as char)),
                    None => return Err("unterminated escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(benches: &[(&str, f64)]) -> BenchSnapshot {
        BenchSnapshot {
            suite: "micro".into(),
            mode: "smoke".into(),
            iters: 3,
            benches: benches.iter().map(|&(n, m)| BenchEntry { name: n.into(), median_ms: m }).collect(),
        }
    }

    #[test]
    fn parses_the_harness_output_format() {
        let json = "{\n  \"suite\": \"micro\",\n  \"mode\": \"smoke\",\n  \"iters\": 3,\n  \"benches\": [\n    \
                    {\"name\": \"spmm/sequential\", \"median_ms\": 0.103016},\n    \
                    {\"name\": \"graphflat_2hop_50_targets\", \"median_ms\": 26.667958}\n  ]\n}\n";
        let s = BenchSnapshot::parse(json).unwrap();
        assert_eq!(s.suite, "micro");
        assert_eq!(s.iters, 3);
        assert_eq!(s.benches.len(), 2);
        assert_eq!(s.benches[0].name, "spmm/sequential");
        assert!((s.benches[1].median_ms - 26.667958).abs() < 1e-9);
    }

    #[test]
    fn parse_round_trips_escapes_and_rejects_garbage() {
        let json = r#"{"suite": "a\"b", "mode": "full", "iters": 10, "benches": []}"#;
        assert_eq!(BenchSnapshot::parse(json).unwrap().suite, "a\"b");
        assert!(BenchSnapshot::parse("{").is_err());
        assert!(BenchSnapshot::parse(r#"{"suite": "x"}"#).unwrap_err().contains("mode"));
        assert!(BenchSnapshot::parse("[1, 2]").unwrap_err().contains("expected object"));
        assert!(BenchSnapshot::parse("{} trailing").is_err());
    }

    #[test]
    fn regression_over_tolerance_fails() {
        let base = snap(&[("a", 1.0), ("b", 10.0)]);
        let cur = snap(&[("a", 1.15), ("b", 12.5)]);
        let cmp = compare_snapshots(&base, &cur, 0.20);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].name, "b");
        assert!((cmp.regressions[0].change - 0.25).abs() < 1e-9);
        assert!(!cmp.is_pass());
    }

    #[test]
    fn within_tolerance_and_speedups_pass() {
        let base = snap(&[("a", 1.0), ("b", 10.0)]);
        let cur = snap(&[("a", 1.199), ("b", 4.0)]);
        let cmp = compare_snapshots(&base, &cur, 0.20);
        assert!(cmp.is_pass(), "{:?}", cmp.regressions);
        assert_eq!(cmp.unchanged.len(), 2);
    }

    #[test]
    fn added_and_removed_benches_are_noted_not_failed() {
        let base = snap(&[("old", 1.0), ("kept", 2.0)]);
        let cur = snap(&[("kept", 2.0), ("new", 3.0)]);
        let cmp = compare_snapshots(&base, &cur, 0.20);
        assert!(cmp.is_pass());
        assert_eq!(cmp.added, vec!["new".to_string()]);
        assert_eq!(cmp.removed, vec!["old".to_string()]);
    }

    #[test]
    fn sub_floor_slowdowns_are_noise_not_regressions() {
        // +50 % relative but only 1.5 µs absolute: below NOISE_FLOOR_MS,
        // so it must not fail CI. The same relative slowdown above the
        // floor still does.
        let base = snap(&[("tiny", 0.003), ("big", 1.0)]);
        let cur = snap(&[("tiny", 0.0045), ("big", 1.5)]);
        let cmp = compare_snapshots(&base, &cur, 0.20);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].name, "big");
        // A ratio bench never benefits from the floor: ratios are unitless
        // and measured drift-free, so 1.05 fails even though 0.05 < floor
        // would pass for a time bench.
        let base = snap(&[("x_vs_plain", 1.0)]);
        let cur = snap(&[("x_vs_plain", 1.05)]);
        assert!(!compare_snapshots(&base, &cur, 0.20).is_pass());
    }

    #[test]
    fn ratio_benches_gate_absolutely_at_the_limit() {
        // Under the limit passes even with a worse baseline; over the limit
        // fails even when it *improved* on the baseline — the gate is
        // absolute, not relative.
        let base = snap(&[("transport/framed_instrumented_vs_plain", 1.10)]);
        let cur = snap(&[("transport/framed_instrumented_vs_plain", 1.015)]);
        assert!(compare_snapshots(&base, &cur, 0.20).is_pass());
        let cur = snap(&[("transport/framed_instrumented_vs_plain", 1.05)]);
        let cmp = compare_snapshots(&base, &cur, 0.20);
        assert_eq!(cmp.regressions.len(), 1);
        assert!((cmp.regressions[0].change - 0.05).abs() < 1e-9);
    }

    #[test]
    fn ratio_benches_gate_without_a_baseline_entry() {
        // First snapshot ever recording the ratio: still gated, never
        // `added`-and-ignored.
        let base = snap(&[]);
        let cur = snap(&[("x_vs_plain", 1.5)]);
        let cmp = compare_snapshots(&base, &cur, 0.20);
        assert!(!cmp.is_pass());
        assert!(cmp.added.is_empty());
        let cur = snap(&[("x_vs_plain", 0.99)]);
        assert!(compare_snapshots(&base, &cur, 0.20).is_pass());
    }

    #[test]
    fn regressions_sorted_worst_first() {
        let base = snap(&[("a", 1.0), ("b", 1.0), ("c", 1.0)]);
        let cur = snap(&[("a", 1.5), ("b", 3.0), ("c", 2.0)]);
        let cmp = compare_snapshots(&base, &cur, 0.20);
        let names: Vec<&str> = cmp.regressions.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["b", "c", "a"]);
    }
}
