//! Micro-benchmarks for the operator- and pipeline-level pieces: the
//! edge-partitioned aggregation kernel (Table 4's +partition axis), the
//! pruned forward pass (+pruning axis), subgraph vectorization, the
//! GraphFeature codec, and GraphFlat itself.
//!
//! A plain `harness = false` timing harness (median of N runs after a
//! warmup) — no external benchmark crates, so the workspace builds offline.
//!
//! Invoke with `cargo bench --bench micro`. Flags (after `--`):
//!
//! * `--smoke`        3 iterations instead of 10 — CI smoke mode.
//! * `--json <path>`  also write `{"suite","mode","benches":[…]}` to `path`.

use agl_bench::flatten_dataset;
use agl_datasets::{uug_like, UugConfig};
use agl_flat::{decode_graph_feature, encode_graph_feature, FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::khop::{khop_subgraph, EdgeRule};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, ExecCtx, Matrix};
use agl_trainer::pipeline::{prepare_batch, PrepSpec};
use std::hint::black_box;
use std::time::Instant;

/// Runs every bench at a fixed iteration count and collects the medians.
struct Harness {
    iters: usize,
    results: Vec<(String, f64)>,
}

impl Harness {
    /// Time `f` over `iters` runs (after 2 warmup runs); record the median.
    fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut samples: Vec<f64> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!("{name:<40} {median:>10.3} ms  (median of {})", self.iters);
        self.results.push((name.to_string(), median));
    }

    /// Hand-rolled JSON (no serde in the workspace): names contain no
    /// characters needing escapes beyond the ones handled here.
    fn to_json(&self, mode: &str) -> String {
        let benches: Vec<String> = self
            .results
            .iter()
            .map(|(name, median)| {
                format!(r#"    {{"name": "{}", "median_ms": {median:.6}}}"#, name.replace('"', "\\\""))
            })
            .collect();
        format!(
            "{{\n  \"suite\": \"micro\",\n  \"mode\": \"{mode}\",\n  \"iters\": {},\n  \"benches\": [\n{}\n  ]\n}}\n",
            self.iters,
            benches.join(",\n")
        )
    }
}

fn fixture() -> agl_datasets::Dataset {
    uug_like(UugConfig { n_nodes: 2_000, avg_degree: 8.0, ..UugConfig::default() })
}

fn bench_spmm_partitioning(h: &mut Harness) {
    let ds = fixture();
    let adj = ds.graph().in_adj().row_normalized();
    let mut rng = seeded_rng(1);
    let x = Matrix::from_vec(adj.n_cols(), 32, (0..adj.n_cols() * 32).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
    h.bench("spmm/sequential", || ExecCtx::sequential().spmm(&adj, &x));
    h.bench("spmm/edge_partitioned_4", || ExecCtx::parallel(4).spmm(&adj, &x));
}

fn bench_forward_pruning(h: &mut Harness) {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 32, 1, 2, Loss::BceWithLogits));
    let batch: Vec<_> = flat.train.iter().take(64).cloned().collect();
    let spec = |prune| PrepSpec { n_layers: 2, prep: model.layers()[0].adj_prep(), label_dim: 1, prune };
    let full = prepare_batch(&batch, &spec(false));
    let pruned = prepare_batch(&batch, &spec(true));
    let ctx = ExecCtx::sequential();
    h.bench("forward/unpruned", || {
        model.forward(&full.adjs, &full.batch.features, &full.batch.targets, false, &ctx, &mut seeded_rng(0))
    });
    h.bench("forward/pruned", || {
        model.forward(&pruned.adjs, &pruned.batch.features, &pruned.batch.targets, false, &ctx, &mut seeded_rng(0))
    });
}

fn bench_vectorization(h: &mut Harness) {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let batch: Vec<_> = flat.train.iter().take(32).cloned().collect();
    h.bench("vectorize_32_graphfeatures", || agl_trainer::vectorize(&batch, 1));
}

fn bench_graphfeature_codec(h: &mut Harness) {
    let ds = fixture();
    let sub = khop_subgraph(ds.graph(), &[ds.graph().node_id(0)], 2, EdgeRule::Sufficient);
    let bytes = encode_graph_feature(&sub);
    h.bench("graphfeature_codec/encode", || encode_graph_feature(&sub));
    h.bench("graphfeature_codec/decode", || decode_graph_feature(&bytes).unwrap());
}

fn bench_graphflat_pipeline(h: &mut Harness) {
    let ds = uug_like(UugConfig { n_nodes: 500, avg_degree: 6.0, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let targets: Vec<agl_graph::NodeId> = ds.graph().node_ids()[..50].to_vec();
    h.bench("graphflat_2hop_50_targets", || {
        let cfg =
            FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 10 }, ..FlatConfig::default() };
        GraphFlat::new(cfg).run(&nodes, &edges, &TargetSpec::Ids(targets.clone())).unwrap()
    });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).map(std::path::PathBuf::from);

    let mode = if smoke { "smoke" } else { "full" };
    let mut h = Harness { iters: if smoke { 3 } else { 10 }, results: Vec::new() };
    bench_spmm_partitioning(&mut h);
    bench_forward_pruning(&mut h);
    bench_vectorization(&mut h);
    bench_graphfeature_codec(&mut h);
    bench_graphflat_pipeline(&mut h);

    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        std::fs::write(&path, h.to_json(mode)).expect("write bench json");
        println!("wrote {}", path.display());
    }
}
