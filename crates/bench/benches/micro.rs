//! Micro-benchmarks for the operator- and pipeline-level pieces: the
//! edge-partitioned aggregation kernel (Table 4's +partition axis), the
//! pruned forward pass (+pruning axis), subgraph vectorization, the
//! GraphFeature codec, and GraphFlat itself.
//!
//! A plain `harness = false` timing harness (median of N runs after a
//! warmup) — no external benchmark crates, so the workspace builds offline.
//! Invoke with `cargo bench --bench micro`.

use agl_bench::flatten_dataset;
use agl_datasets::{uug_like, UugConfig};
use agl_flat::{decode_graph_feature, encode_graph_feature, FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::khop::{khop_subgraph, EdgeRule};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, ExecCtx, Matrix};
use agl_trainer::pipeline::{prepare_batch, PrepSpec};
use std::hint::black_box;
use std::time::Instant;

/// Time `f` over `iters` runs (after 2 warmup runs); report the median.
fn bench<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) {
    for _ in 0..2 {
        black_box(f());
    }
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!("{name:<40} {median:>10.3} ms  (median of {iters})");
}

fn fixture() -> agl_datasets::Dataset {
    uug_like(UugConfig { n_nodes: 2_000, avg_degree: 8.0, ..UugConfig::default() })
}

fn bench_spmm_partitioning() {
    let ds = fixture();
    let adj = ds.graph().in_adj().row_normalized();
    let mut rng = seeded_rng(1);
    let x = Matrix::from_vec(adj.n_cols(), 32, (0..adj.n_cols() * 32).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
    bench("spmm/sequential", 10, || ExecCtx::sequential().spmm(&adj, &x));
    bench("spmm/edge_partitioned_4", 10, || ExecCtx::parallel(4).spmm(&adj, &x));
}

fn bench_forward_pruning() {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 32, 1, 2, Loss::BceWithLogits));
    let batch: Vec<_> = flat.train.iter().take(64).cloned().collect();
    let spec = |prune| PrepSpec { n_layers: 2, prep: model.layers()[0].adj_prep(), label_dim: 1, prune };
    let full = prepare_batch(&batch, &spec(false));
    let pruned = prepare_batch(&batch, &spec(true));
    let ctx = ExecCtx::sequential();
    bench("forward/unpruned", 10, || {
        model.forward(&full.adjs, &full.batch.features, &full.batch.targets, false, &ctx, &mut seeded_rng(0))
    });
    bench("forward/pruned", 10, || {
        model.forward(&pruned.adjs, &pruned.batch.features, &pruned.batch.targets, false, &ctx, &mut seeded_rng(0))
    });
}

fn bench_vectorization() {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let batch: Vec<_> = flat.train.iter().take(32).cloned().collect();
    bench("vectorize_32_graphfeatures", 10, || agl_trainer::vectorize(&batch, 1));
}

fn bench_graphfeature_codec() {
    let ds = fixture();
    let sub = khop_subgraph(ds.graph(), &[ds.graph().node_id(0)], 2, EdgeRule::Sufficient);
    let bytes = encode_graph_feature(&sub);
    bench("graphfeature_codec/encode", 10, || encode_graph_feature(&sub));
    bench("graphfeature_codec/decode", 10, || decode_graph_feature(&bytes).unwrap());
}

fn bench_graphflat_pipeline() {
    let ds = uug_like(UugConfig { n_nodes: 500, avg_degree: 6.0, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let targets: Vec<agl_graph::NodeId> = ds.graph().node_ids()[..50].to_vec();
    bench("graphflat_2hop_50_targets", 10, || {
        let cfg =
            FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 10 }, ..FlatConfig::default() };
        GraphFlat::new(cfg).run(&nodes, &edges, &TargetSpec::Ids(targets.clone())).unwrap()
    });
}

fn main() {
    bench_spmm_partitioning();
    bench_forward_pruning();
    bench_vectorization();
    bench_graphfeature_codec();
    bench_graphflat_pipeline();
}
