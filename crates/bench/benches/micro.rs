//! Micro-benchmarks for the operator- and pipeline-level pieces: the
//! edge-partitioned aggregation kernel (Table 4's +partition axis), the
//! pruned forward pass (+pruning axis), subgraph vectorization, the
//! GraphFeature codec, GraphFlat itself, and the socket transport (framed
//! round-trip cost plus PS pull/push in-process vs over UDS).
//!
//! A plain `harness = false` timing harness (median of N runs after a
//! warmup) — no external benchmark crates, so the workspace builds offline.
//!
//! Invoke with `cargo bench --bench micro`. Flags (after `--`):
//!
//! * `--smoke`             3 iterations instead of 10 — CI smoke mode.
//! * `--json <path>`       also write `{"suite","mode","benches":[…]}` to `path`.
//! * `--trace-json <path>` run the instrumented end-to-end pipeline and
//!   write per-stage median span times (same snapshot schema, suite
//!   `stage-trace`) — diffed informationally by `bench_compare`.

use agl_bench::flatten_dataset;
use agl_datasets::{uug_like, UugConfig};
use agl_flat::{decode_graph_feature, encode_graph_feature, FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::khop::{khop_subgraph, EdgeRule};
use agl_infer::{GraphInfer, InferConfig};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_obs::Obs;
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, ExecCtx, Matrix};
use agl_trainer::pipeline::{prepare_batch, PrepSpec};
use agl_trainer::{DistTrainer, LocalTrainer, TrainOptions};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// Runs every bench at a fixed iteration count and collects the medians.
struct Harness {
    iters: usize,
    results: Vec<(String, f64)>,
}

impl Harness {
    /// Time `f` over `iters` runs (after 2 warmup runs); record the median.
    fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        for _ in 0..2 {
            black_box(f());
        }
        let mut samples: Vec<f64> = (0..self.iters)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!("{name:<40} {median:>10.3} ms  (median of {})", self.iters);
        self.results.push((name.to_string(), median));
    }

    fn to_json(&self, mode: &str) -> String {
        snapshot_json("micro", mode, self.iters, &self.results)
    }
}

/// Hand-rolled snapshot JSON (no serde in the workspace): names contain no
/// characters needing escapes beyond the ones handled here. The same schema
/// serves `BENCH_pr<N>.json` and `TRACE_pr<N>.json`, so `bench_compare`
/// parses both.
fn snapshot_json(suite: &str, mode: &str, iters: usize, results: &[(String, f64)]) -> String {
    let benches: Vec<String> = results
        .iter()
        .map(|(name, median)| format!(r#"    {{"name": "{}", "median_ms": {median:.6}}}"#, name.replace('"', "\\\"")))
        .collect();
    format!(
        "{{\n  \"suite\": \"{suite}\",\n  \"mode\": \"{mode}\",\n  \"iters\": {iters},\n  \"benches\": [\n{}\n  ]\n}}\n",
        benches.join(",\n")
    )
}

fn fixture() -> agl_datasets::Dataset {
    uug_like(UugConfig { n_nodes: 2_000, avg_degree: 8.0, ..UugConfig::default() })
}

fn bench_spmm_partitioning(h: &mut Harness) {
    let ds = fixture();
    let adj = ds.graph().in_adj().row_normalized();
    let mut rng = seeded_rng(1);
    let x = Matrix::from_vec(adj.n_cols(), 32, (0..adj.n_cols() * 32).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
    h.bench("spmm/sequential", || ExecCtx::sequential().spmm(&adj, &x));
    h.bench("spmm/edge_partitioned_4", || ExecCtx::parallel(4).spmm(&adj, &x));
}

fn bench_forward_pruning(h: &mut Harness) {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 32, 1, 2, Loss::BceWithLogits));
    let batch: Vec<_> = flat.train.iter().take(64).cloned().collect();
    let spec = |prune| PrepSpec { n_layers: 2, prep: model.layers()[0].adj_prep(), label_dim: 1, prune };
    let full = prepare_batch(&batch, &spec(false));
    let pruned = prepare_batch(&batch, &spec(true));
    let ctx = ExecCtx::sequential();
    h.bench("forward/unpruned", || {
        model.forward(&full.adjs, &full.batch.features, &full.batch.targets, false, &ctx, &mut seeded_rng(0))
    });
    h.bench("forward/pruned", || {
        model.forward(&pruned.adjs, &pruned.batch.features, &pruned.batch.targets, false, &ctx, &mut seeded_rng(0))
    });
}

fn bench_vectorization(h: &mut Harness) {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let batch: Vec<_> = flat.train.iter().take(32).cloned().collect();
    h.bench("vectorize_32_graphfeatures", || agl_trainer::vectorize(&batch, 1));
}

fn bench_graphfeature_codec(h: &mut Harness) {
    let ds = fixture();
    let sub = khop_subgraph(ds.graph(), &[ds.graph().node_id(0)], 2, EdgeRule::Sufficient);
    let bytes = encode_graph_feature(&sub);
    h.bench("graphfeature_codec/encode", || encode_graph_feature(&sub));
    h.bench("graphfeature_codec/decode", || decode_graph_feature(&bytes).unwrap());
}

fn bench_graphflat_pipeline(h: &mut Harness) {
    let ds = uug_like(UugConfig { n_nodes: 500, avg_degree: 6.0, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let targets: Vec<agl_graph::NodeId> = ds.graph().node_ids()[..50].to_vec();
    h.bench("graphflat_2hop_50_targets", || {
        let cfg =
            FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 10 }, ..FlatConfig::default() };
        GraphFlat::new(cfg).run(&nodes, &edges, &TargetSpec::Ids(targets.clone())).unwrap()
    });
}

/// Transport-layer cost: a framed round-trip over a Unix socket pair, and
/// one pull+push round against the parameter server — the same `PsClient`
/// calls — in-process vs over UDS to two shard servers. The gap between the
/// two ps numbers is the per-step price of crossing the process boundary.
fn bench_transport(h: &mut Harness) {
    use agl_mapreduce::{Conn, Endpoint, Framed, Listener};
    use agl_nn::Sgd;
    use agl_ps::{serve_ps_shard, Consistency, OptSpec, ParameterServer, PsClient, RemotePs};

    // Framed round-trip: 1 KiB payload echoed back by a peer thread.
    let (a, b) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    let echo = std::thread::spawn(move || {
        let mut framed = Framed::new(Conn::from(b));
        while let Ok(Some(msg)) = framed.recv() {
            if framed.send(&msg).is_err() {
                break;
            }
        }
    });
    let mut framed = Framed::new(Conn::from(a));
    let payload = vec![0xA5u8; 1024];
    h.bench("transport/frame_roundtrip_1kib_uds", || {
        framed.send(&payload).unwrap();
        framed.recv().unwrap().unwrap()
    });

    // Instrumented framing with an *inert* `Obs`: `FrameStats::from_obs`
    // returns `None`, so the only added cost is the per-message
    // `Option<Arc<FrameStats>>` check — the claim is that telemetry is free
    // unless switched on. The `_vs_plain` entry is the paired ratio
    // (instrumented / plain, unitless), measured in adjacent batches so
    // machine noise cancels; `bench_compare` gates it at <= 1.02 absolutely.
    fn echo_msg_name(_tag: u8) -> &'static str {
        "echo"
    }
    let (c, d) = std::os::unix::net::UnixStream::pair().expect("socketpair");
    let echo2 = std::thread::spawn(move || {
        let mut framed = Framed::new(Conn::from(d));
        while let Ok(Some(msg)) = framed.recv() {
            if framed.send(&msg).is_err() {
                break;
            }
        }
    });
    let mut instrumented = Framed::new(Conn::from(c)).with_stats(agl_mapreduce::FrameStats::from_obs(
        &Obs::default(),
        "bench",
        echo_msg_name,
        echo_msg_name,
    ));
    h.bench("transport/framed_instrumented_inert_1kib", || {
        instrumented.send(&payload).unwrap();
        instrumented.recv().unwrap().unwrap()
    });
    // Per-op interleaving (plain, instrumented, plain, …) with the ratio
    // taken over each round's *sums*: frequency drift, scheduler stalls and
    // cache effects hit both sides of a pair equally, so they cancel instead
    // of landing on whichever side ran second. Median across rounds guards
    // against a single disturbed round.
    let rounds = if h.iters <= 3 { 7 } else { 11 };
    let pairs = 500;
    let mut ratios: Vec<f64> = (0..rounds)
        .map(|_| {
            let (mut plain_s, mut instr_s) = (0.0f64, 0.0f64);
            for _ in 0..pairs {
                let t0 = Instant::now();
                framed.send(&payload).unwrap();
                black_box(framed.recv().unwrap().unwrap());
                plain_s += t0.elapsed().as_secs_f64();
                let t1 = Instant::now();
                instrumented.send(&payload).unwrap();
                black_box(instrumented.recv().unwrap().unwrap());
                instr_s += t1.elapsed().as_secs_f64();
            }
            instr_s / plain_s
        })
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[ratios.len() / 2];
    println!(
        "{:<40} {ratio:>10.3} x   (median of {rounds} interleaved rounds, {pairs} pairs each)",
        "transport/framed_instrumented_vs_plain"
    );
    h.results.push(("transport/framed_instrumented_vs_plain".to_string(), ratio));
    drop(framed);
    drop(instrumented);
    echo.join().unwrap();
    echo2.join().unwrap();

    // One pull+push round, 4096 params sharded in two, single worker.
    let dim = 4096;
    let params: Vec<f32> = (0..dim).map(|i| i as f32 * 1e-3).collect();
    let grads = vec![1e-4f32; dim];
    let local = ParameterServer::new(params.clone(), 2, 1, Consistency::Sync, || Box::new(Sgd::new(0.01)));
    h.bench("ps_pull_push/in_process_2shards", || {
        let (p, _v) = PsClient::pull_with_version(&local, 0).unwrap();
        PsClient::push(&local, 0, &grads).unwrap();
        p
    });

    let tmp = std::env::temp_dir().join(format!("agl-bench-psnet-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let eps: Vec<Endpoint> =
        (0..2).map(|i| Endpoint::parse(&format!("unix:{}/shard{i}.sock", tmp.display())).unwrap()).collect();
    let shards: Vec<_> = eps
        .iter()
        .map(|ep| {
            let listener = Listener::bind(ep).unwrap();
            std::thread::spawn(move || serve_ps_shard(&listener, 10_000_000_000).expect("shard"))
        })
        .collect();
    let remote = RemotePs::connect(
        &eps,
        &params,
        1,
        Consistency::Sync,
        OptSpec::Sgd { lr: 0.01 },
        5_000_000_000,
        10_000_000_000,
    )
    .expect("connect shards");
    h.bench("ps_pull_push/uds_2shards", || {
        let (p, _v) = remote.pull_with_version(0).unwrap();
        remote.push(0, &grads).unwrap();
        p
    });
    remote.shutdown();
    for s in shards {
        s.join().unwrap();
    }
    std::fs::remove_dir_all(&tmp).ok();
}

/// Streaming full-graph inference vs the materialized engine on the same
/// graph: both medians land in the snapshot, plus their unitless ratio
/// `infer/stream_vs_materialized` (streamed / materialized, measured in
/// interleaved rounds so machine noise cancels). The ratio is the number
/// EXPERIMENTS.md quotes as the streaming cost overhead; `bench_compare`
/// gates its drift like any other bench (>20% fails).
fn bench_stream_infer(h: &mut Harness) {
    use agl_infer::StreamInfer;

    let ds = uug_like(UugConfig { n_nodes: 600, avg_degree: 6.0, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 16, 1, 2, Loss::BceWithLogits));
    let si = StreamInfer::new(InferConfig::default());
    h.bench("infer/streamed_full_graph", || si.run(&model, &nodes, &edges).unwrap());
    h.bench("infer/materialized_full_graph", || si.run_materialized(&model, &nodes, &edges).unwrap());
    let rounds = if h.iters <= 3 { 3 } else { 5 };
    let mut ratios: Vec<f64> = (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            black_box(si.run_materialized(&model, &nodes, &edges).unwrap());
            let mat = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            black_box(si.run(&model, &nodes, &edges).unwrap());
            let streamed = t1.elapsed().as_secs_f64();
            streamed / mat
        })
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    let ratio = ratios[ratios.len() / 2];
    println!("{:<40} {ratio:>10.3} x   (median of {rounds} interleaved rounds)", "infer/stream_vs_materialized");
    h.results.push(("infer/stream_vs_materialized".to_string(), ratio));
}

/// Read-path cost: one batched point-lookup round (16 ids drawn from the
/// power-law popularity skew) and one exact top-8 neighbor query, against
/// a 4-shard store of 2 000 × 16-dim vectors. The pair `serve/point_lookup`
/// + `serve/topk_8` is what `bench_compare` gates read-path regressions on.
fn bench_serve(h: &mut Harness) {
    use agl_datasets::PowerLaw;
    use agl_graph::NodeId;
    use agl_serve::{EmbeddingStore, RequestBatcher, ServeConfig};

    let n = 2_000u64;
    let dim = 16;
    let mut rng = seeded_rng(42);
    let vectors: Vec<(NodeId, Vec<f32>)> =
        (0..n).map(|i| (NodeId(i), (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect())).collect();
    let store = EmbeddingStore::from_vectors(vectors, &ServeConfig::default());
    let batcher = RequestBatcher::new(&store);
    let popularity = PowerLaw::new(n as usize, 2.1);
    let batch: Vec<NodeId> = (0..16).map(|_| NodeId(popularity.sample(&mut rng) as u64)).collect();
    h.bench("serve/point_lookup", || batcher.submit(&batch));
    h.bench("serve/topk_8", || store.topk_neighbors(batch[0], 8));
}

// ---- per-stage trace medians (`--trace-json`) ----

/// Map a span name onto its reported stage bucket (None = not a stage).
fn stage_of(name: &str) -> Option<&'static str> {
    Some(match name {
        "graphflat" => "stage/flat.total",
        "map" => "stage/flat.map_tasks",
        "train.epoch" => "stage/train.epoch",
        "pipeline.prepare" => "stage/train.pipeline.prepare",
        "ps.pull" => "stage/train.ps.pull",
        "ps.push" => "stage/train.ps.push",
        "ps.apply" => "stage/train.ps.apply",
        "graphinfer" => "stage/infer.total",
        n if n.starts_with("reduce.r") => "stage/flat.reduce_tasks",
        n if n.starts_with("mapreduce.shuffle.") => "stage/flat.shuffle",
        _ => return None,
    })
}

/// One instrumented end-to-end run — GraphFlat, a pipelined local epoch, a
/// 2-worker distributed train, GraphInfer — returning the total span time
/// per stage bucket in milliseconds.
fn traced_stage_run() -> Vec<(&'static str, f64)> {
    let ds = uug_like(UugConfig { n_nodes: 600, avg_degree: 6.0, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let obs = Obs::enabled();
    let flat = GraphFlat::new(
        FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 10 }, ..FlatConfig::default() }
            .with_obs(obs.clone()),
    )
    .run(&nodes, &edges, &TargetSpec::All)
    .expect("graphflat");
    let mut model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 16, 1, 2, Loss::BceWithLogits));
    let opts = |epochs| TrainOptions { epochs, batch_size: 32, ..TrainOptions::default() }.with_obs(obs.clone());
    LocalTrainer::new(opts(1)).train(&mut model, &flat.examples);
    DistTrainer::new(2, opts(2)).train(&mut model, &flat.examples, None);
    GraphInfer::new(InferConfig::default().with_obs(obs.clone())).run(&model, &nodes, &edges).expect("graphinfer");

    let mut totals: BTreeMap<&'static str, f64> = BTreeMap::new();
    for ev in obs.trace().expect("enabled handle").events() {
        if let Some(stage) = stage_of(&ev.name) {
            *totals.entry(stage).or_insert(0.0) += ev.dur as f64 / 1e6;
        }
    }
    totals.into_iter().collect()
}

/// Median stage time over `iters` fresh instrumented runs.
fn stage_trace(iters: usize) -> Vec<(String, f64)> {
    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for _ in 0..iters {
        for (stage, ms) in traced_stage_run() {
            samples.entry(stage.to_string()).or_default().push(ms);
        }
    }
    samples
        .into_iter()
        .map(|(stage, mut s)| {
            s.sort_by(|a, b| a.total_cmp(b));
            let median = s[s.len() / 2];
            (stage, median)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path_flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(std::path::PathBuf::from);
    let json_path = path_flag("--json");
    let trace_path = path_flag("--trace-json");

    let mode = if smoke { "smoke" } else { "full" };
    let iters = if smoke { 3 } else { 10 };
    let mut h = Harness { iters, results: Vec::new() };
    bench_spmm_partitioning(&mut h);
    bench_forward_pruning(&mut h);
    bench_vectorization(&mut h);
    bench_graphfeature_codec(&mut h);
    bench_graphflat_pipeline(&mut h);
    bench_transport(&mut h);
    bench_stream_infer(&mut h);
    bench_serve(&mut h);

    let write = |path: &std::path::Path, json: String| {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        std::fs::write(path, json).expect("write bench json");
        println!("wrote {}", path.display());
    };
    if let Some(path) = json_path {
        write(&path, h.to_json(mode));
    }
    if let Some(path) = trace_path {
        let stages = stage_trace(iters);
        println!("\nper-stage span time (instrumented end-to-end run):");
        for (name, median) in &stages {
            println!("{name:<40} {median:>10.3} ms  (median of {iters})");
        }
        write(&path, snapshot_json("stage-trace", mode, iters, &stages));
    }
}
