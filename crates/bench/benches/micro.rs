//! Criterion micro-benchmarks for the operator- and pipeline-level pieces:
//! the edge-partitioned aggregation kernel (Table 4's +partition axis), the
//! pruned forward pass (+pruning axis), subgraph vectorization, the
//! GraphFeature codec, and GraphFlat itself.

use agl_bench::flatten_dataset;
use agl_datasets::{uug_like, UugConfig};
use agl_flat::{decode_graph_feature, encode_graph_feature, FlatConfig, GraphFlat, SamplingStrategy, TargetSpec};
use agl_graph::khop::{khop_subgraph, EdgeRule};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_tensor::{seeded_rng, ExecCtx, Matrix};
use agl_trainer::pipeline::{prepare_batch, PrepSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;
use std::hint::black_box;

fn fixture() -> agl_datasets::Dataset {
    uug_like(UugConfig { n_nodes: 2_000, avg_degree: 8.0, ..UugConfig::default() })
}

fn bench_spmm_partitioning(c: &mut Criterion) {
    let ds = fixture();
    let adj = ds.graph().in_adj().row_normalized();
    let mut rng = seeded_rng(1);
    let x = Matrix::from_vec(adj.n_cols(), 32, (0..adj.n_cols() * 32).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
    let mut g = c.benchmark_group("spmm");
    g.bench_function("sequential", |b| b.iter(|| black_box(ExecCtx::sequential().spmm(&adj, &x))));
    g.bench_function("edge_partitioned_4", |b| b.iter(|| black_box(ExecCtx::parallel(4).spmm(&adj, &x))));
    g.finish();
}

fn bench_forward_pruning(c: &mut Criterion) {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let model = GnnModel::new(ModelConfig::new(ModelKind::Gcn, ds.feature_dim(), 32, 1, 2, Loss::BceWithLogits));
    let batch: Vec<_> = flat.train.iter().take(64).cloned().collect();
    let spec = |prune| PrepSpec { n_layers: 2, prep: model.layers()[0].adj_prep(), label_dim: 1, prune };
    let full = prepare_batch(&batch, &spec(false));
    let pruned = prepare_batch(&batch, &spec(true));
    let ctx = ExecCtx::sequential();
    let mut g = c.benchmark_group("forward");
    g.bench_function("unpruned", |b| {
        b.iter(|| {
            black_box(model.forward(&full.adjs, &full.batch.features, &full.batch.targets, false, &ctx, &mut seeded_rng(0)))
        })
    });
    g.bench_function("pruned", |b| {
        b.iter(|| {
            black_box(model.forward(&pruned.adjs, &pruned.batch.features, &pruned.batch.targets, false, &ctx, &mut seeded_rng(0)))
        })
    });
    g.finish();
}

fn bench_vectorization(c: &mut Criterion) {
    let ds = fixture();
    let flat = flatten_dataset(&ds, 2, SamplingStrategy::Uniform { max_degree: 15 }).unwrap();
    let batch: Vec<_> = flat.train.iter().take(32).cloned().collect();
    c.bench_function("vectorize_32_graphfeatures", |b| {
        b.iter(|| black_box(agl_trainer::vectorize(&batch, 1)))
    });
}

fn bench_graphfeature_codec(c: &mut Criterion) {
    let ds = fixture();
    let sub = khop_subgraph(ds.graph(), &[ds.graph().node_id(0)], 2, EdgeRule::Sufficient);
    let bytes = encode_graph_feature(&sub);
    let mut g = c.benchmark_group("graphfeature_codec");
    g.bench_function("encode", |b| b.iter(|| black_box(encode_graph_feature(&sub))));
    g.bench_function("decode", |b| b.iter(|| black_box(decode_graph_feature(&bytes).unwrap())));
    g.finish();
}

fn bench_graphflat_pipeline(c: &mut Criterion) {
    let ds = uug_like(UugConfig { n_nodes: 500, avg_degree: 6.0, ..UugConfig::default() });
    let (nodes, edges) = ds.graph().to_tables();
    let targets: Vec<agl_graph::NodeId> = ds.graph().node_ids()[..50].to_vec();
    c.bench_function("graphflat_2hop_50_targets", |b| {
        b.iter_batched(
            || (nodes.clone(), edges.clone(), targets.clone()),
            |(n, e, t)| {
                let cfg = FlatConfig { k_hops: 2, sampling: SamplingStrategy::Uniform { max_degree: 10 }, ..FlatConfig::default() };
                black_box(GraphFlat::new(cfg).run(&n, &e, &TargetSpec::Ids(t)).unwrap())
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spmm_partitioning, bench_forward_pruning, bench_vectorization,
              bench_graphfeature_codec, bench_graphflat_pipeline
}
criterion_main!(benches);
