//! Optimizers over the flat parameter vector.
//!
//! Both the standalone trainer and the parameter-server servers drive one of
//! these: the PS applies the optimizer to (averaged or raw) pushed
//! gradients, mirroring the server-side update rule of Kunpeng-style
//! parameter servers. The paper trains with Adam (§4.1.2).

/// A stateful first-order optimizer over a flat `f32` parameter vector.
pub trait Optimizer: Send {
    /// Apply one update step: `params -= f(grads)`.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;
}

/// Plain SGD with optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
    pub weight_decay: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * (g + self.weight_decay * *p);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction and optional L2 weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, t: 0, m: Vec::new(), v: Vec::new() }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(self.m.len(), params.len(), "parameter count changed mid-training");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i] + self.weight_decay * params[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x-3)^2 and check convergence.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = vec![0.0f32];
        for _ in 0..steps {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimise(&mut opt, 100);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimise(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, |Δ| of the first step ≈ lr regardless of
        // gradient scale.
        let mut opt = Adam::new(0.05);
        let mut x = vec![0.0f32];
        opt.step(&mut x, &[1234.0]);
        assert!((x[0] + 0.05).abs() < 1e-4, "x = {}", x[0]);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut opt = Sgd { lr: 0.1, weight_decay: 0.5 };
        let mut x = vec![1.0f32];
        opt.step(&mut x, &[0.0]);
        assert!((x[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn adam_rejects_resized_params() {
        let mut opt = Adam::new(0.1);
        let mut x = vec![0.0f32; 2];
        opt.step(&mut x, &[1.0, 1.0]);
        let mut y = vec![0.0f32; 3];
        opt.step(&mut y, &[1.0, 1.0, 1.0]);
    }
}
