//! GAT layer (Veličković et al.) — multi-head additive attention over the
//! in-edge neighborhood plus a self-loop.
//!
//! Per head with projection `P = H W`:
//! ```text
//! raw(v←u) = a_l · P_v + a_r · P_u            (u ∈ {v} ∪ N+(v))
//! α(v←·)   = softmax_u( LeakyReLU(raw(v←u)) )
//! Z_v      = Σ_u α(v←u) P_u  + b
//! ```
//! Hidden layers activate each head then **concat**; the output layer
//! **averages** heads before the activation — the reference GAT recipe.
//!
//! Edge weights are ignored (attention supplies its own coefficients),
//! matching the reference implementations AGL compares against.
//!
//! The backward pass is derived by hand; `tests/gradcheck.rs` checks every
//! parameter and the input gradient against central finite differences.
//!
//! Note for the per-node (GraphInfer) path: the neighbor list must not
//! itself contain the destination node — the self-loop is added internally,
//! exactly once, mirroring `AdjPrep::StructWithSelfLoops` whose duplicate
//! merging guarantees a single diagonal entry.

use crate::layer::NeighborView;
use crate::param::Param;
use agl_tensor::ops::{leaky_relu, leaky_relu_grad, softmax_slice_inplace, Activation};
use agl_tensor::rng::Rng;
use agl_tensor::{init, Csr, ExecCtx, Matrix};

/// How multiple heads are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadCombine {
    /// Activate each head, concatenate outputs (hidden layers).
    Concat,
    /// Average head outputs, then activate (output layer).
    Average,
}

#[derive(Debug, Clone)]
struct GatHead {
    w: Param,
    /// Attention vector applied to the destination's projection (1 × d').
    a_l: Param,
    /// Attention vector applied to the source's projection (1 × d').
    a_r: Param,
    b: Param,
}

/// Multi-head graph attention layer.
#[derive(Debug, Clone)]
pub struct GatLayer {
    heads: Vec<GatHead>,
    combine: HeadCombine,
    act: Activation,
    in_dim: usize,
    head_dim: usize,
}

/// Per-head forward cache.
#[derive(Debug)]
struct HeadCache {
    p: Matrix,
    /// Raw (pre-LeakyReLU) attention scores, one per adjacency entry.
    raw: Vec<f32>,
    /// Softmaxed attention coefficients, one per adjacency entry.
    alpha: Vec<f32>,
    /// `Z + b` per head (pre head-activation for Concat).
    pre: Matrix,
    /// Activated head output (Concat only; unused for Average).
    post: Matrix,
}

/// Layer forward cache.
#[derive(Debug)]
pub struct GatCache {
    h_in: Matrix,
    heads: Vec<HeadCache>,
    /// Combined pre-activation (Average only).
    pre_combined: Option<Matrix>,
    /// Final activated output.
    post_combined: Matrix,
}

impl GatLayer {
    pub fn new(
        in_dim: usize,
        head_dim: usize,
        n_heads: usize,
        combine: HeadCombine,
        act: Activation,
        name: &str,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n_heads > 0);
        let a_bound = (6.0 / (head_dim + 1) as f32).sqrt();
        let heads = (0..n_heads)
            .map(|h| GatHead {
                w: Param::new(format!("{name}.h{h}.w"), init::xavier_uniform(in_dim, head_dim, rng)),
                a_l: Param::new(format!("{name}.h{h}.a_l"), init::uniform(1, head_dim, a_bound, rng)),
                a_r: Param::new(format!("{name}.h{h}.a_r"), init::uniform(1, head_dim, a_bound, rng)),
                b: Param::new(format!("{name}.h{h}.b"), Matrix::zeros(1, head_dim)),
            })
            .collect();
        Self { heads, combine, act, in_dim, head_dim }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        match self.combine {
            HeadCombine::Concat => self.head_dim * self.heads.len(),
            HeadCombine::Average => self.head_dim,
        }
    }

    pub fn n_heads(&self) -> usize {
        self.heads.len()
    }

    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    pub fn combine(&self) -> HeadCombine {
        self.combine
    }

    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Batch forward. `adj` must be prepared with
    /// [`crate::layer::AdjPrep::StructWithSelfLoops`].
    pub fn forward(&self, adj: &Csr, h: &Matrix, ctx: &ExecCtx) -> (Matrix, GatCache) {
        debug_assert_eq!(h.cols(), self.in_dim);
        let n = adj.n_rows();
        let mut head_caches = Vec::with_capacity(self.heads.len());
        let mut head_outputs: Vec<Matrix> = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let p = h.matmul(&head.w.value);
            // Per-node attention logits.
            let s_l: Vec<f32> = (0..n).map(|v| dot(p.row(v), head.a_l.value.row(0))).collect();
            let s_r: Vec<f32> = (0..n).map(|v| dot(p.row(v), head.a_r.value.row(0))).collect();
            // Raw scores + row-softmax over each destination's entries.
            let mut raw = vec![0.0f32; adj.nnz()];
            let mut alpha = vec![0.0f32; adj.nnz()];
            let indptr = adj.indptr();
            for v in 0..n {
                let (srcs, _) = adj.row(v);
                let (s, e) = (indptr[v], indptr[v + 1]);
                for (i, &u) in srcs.iter().enumerate() {
                    raw[s + i] = s_l[v] + s_r[u as usize];
                    alpha[s + i] = leaky_relu(raw[s + i]);
                }
                softmax_slice_inplace(&mut alpha[s..e]);
            }
            // Aggregate with the attention-weighted adjacency — this is the
            // sparse multiply the edge-partitioning strategy parallelises.
            let alpha_csr = Csr::from_raw(n, adj.n_cols(), indptr.to_vec(), adj.indices().to_vec(), alpha.clone());
            let mut pre = ctx.spmm(&alpha_csr, &p);
            pre.add_row_broadcast(head.b.value.row(0));
            let (out_h, post) = match self.combine {
                HeadCombine::Concat => {
                    let mut post = pre.clone();
                    self.act.forward_inplace(&mut post);
                    (post.clone(), post)
                }
                HeadCombine::Average => (pre.clone(), Matrix::zeros(0, 0)),
            };
            head_outputs.push(out_h);
            head_caches.push(HeadCache { p, raw, alpha, pre, post });
        }
        let (out, pre_combined) = match self.combine {
            HeadCombine::Concat => {
                let mut out = Matrix::zeros(n, self.out_dim());
                for (hi, ho) in head_outputs.iter().enumerate() {
                    let off = hi * self.head_dim;
                    for r in 0..n {
                        out.row_mut(r)[off..off + self.head_dim].copy_from_slice(ho.row(r));
                    }
                }
                (out, None)
            }
            HeadCombine::Average => {
                let mut avg = Matrix::zeros(n, self.head_dim);
                for ho in &head_outputs {
                    avg.add_assign(ho);
                }
                avg.scale(1.0 / self.heads.len() as f32);
                let mut out = avg.clone();
                self.act.forward_inplace(&mut out);
                (out, Some(avg))
            }
        };
        let cache = GatCache { h_in: h.clone(), heads: head_caches, pre_combined, post_combined: out.clone() };
        (out, cache)
    }

    /// Batch backward.
    pub fn backward(&mut self, adj: &Csr, cache: &GatCache, grad_out: &Matrix, _ctx: &ExecCtx) -> Matrix {
        let n = adj.n_rows();
        let n_heads = self.heads.len();
        let mut dh = Matrix::zeros(n, self.in_dim);

        // Per-head gradient of the head pre-activation `Z + b`.
        let head_dpre: Vec<Matrix> = match self.combine {
            HeadCombine::Concat => (0..n_heads)
                .map(|hi| {
                    let off = hi * self.head_dim;
                    let mut d = Matrix::zeros(n, self.head_dim);
                    for r in 0..n {
                        d.row_mut(r).copy_from_slice(&grad_out.row(r)[off..off + self.head_dim]);
                    }
                    let hc = &cache.heads[hi];
                    self.act.backward_inplace(&mut d, &hc.pre, &hc.post);
                    d
                })
                .collect(),
            HeadCombine::Average => {
                let mut d_avg = grad_out.clone();
                let pre = cache.pre_combined.as_ref().expect("average cache");
                self.act.backward_inplace(&mut d_avg, pre, &cache.post_combined);
                d_avg.scale(1.0 / n_heads as f32);
                (0..n_heads).map(|_| d_avg.clone()).collect()
            }
        };

        let indptr = adj.indptr();
        for (hi, head) in self.heads.iter_mut().enumerate() {
            let hc = &cache.heads[hi];
            let dz = &head_dpre[hi];
            head.b.accumulate(&Matrix::from_vec(1, self.head_dim, dz.col_sums()));
            // dP from Z = Σ α P: dP_u += α_vu dZ_v  (αᵀ dZ).
            let alpha_csr = Csr::from_raw(n, adj.n_cols(), indptr.to_vec(), adj.indices().to_vec(), hc.alpha.clone());
            let mut dp = alpha_csr.t_spmm(dz);
            // Attention-coefficient gradients.
            let mut ds_l = vec![0.0f32; n];
            let mut ds_r = vec![0.0f32; n];
            let mut dalpha_row: Vec<f32> = Vec::new();
            for v in 0..n {
                let (srcs, _) = adj.row(v);
                if srcs.is_empty() {
                    continue;
                }
                let (s, e) = (indptr[v], indptr[v + 1]);
                dalpha_row.clear();
                dalpha_row.extend(srcs.iter().map(|&u| dot(dz.row(v), hc.p.row(u as usize))));
                let alpha = &hc.alpha[s..e];
                let dot_sum: f32 = alpha.iter().zip(&dalpha_row).map(|(&a, &d)| a * d).sum();
                for (i, &u) in srcs.iter().enumerate() {
                    let dscore = alpha[i] * (dalpha_row[i] - dot_sum);
                    let de = dscore * leaky_relu_grad(hc.raw[s + i]);
                    ds_l[v] += de;
                    ds_r[u as usize] += de;
                }
            }
            // da_l = Σ_v ds_l[v] P_v ; da_r = Σ_u ds_r[u] P_u ;
            // dP_v += ds_l[v] a_l ; dP_u += ds_r[u] a_r.
            let mut da_l = vec![0.0f32; self.head_dim];
            let mut da_r = vec![0.0f32; self.head_dim];
            for v in 0..n {
                let pv = hc.p.row(v);
                if ds_l[v] != 0.0 {
                    for (o, &x) in da_l.iter_mut().zip(pv) {
                        *o += ds_l[v] * x;
                    }
                    let dpv = dp.row_mut(v);
                    for (o, &a) in dpv.iter_mut().zip(head.a_l.value.row(0)) {
                        *o += ds_l[v] * a;
                    }
                }
                if ds_r[v] != 0.0 {
                    for (o, &x) in da_r.iter_mut().zip(pv) {
                        *o += ds_r[v] * x;
                    }
                    let dpv = dp.row_mut(v);
                    for (o, &a) in dpv.iter_mut().zip(head.a_r.value.row(0)) {
                        *o += ds_r[v] * a;
                    }
                }
            }
            head.a_l.accumulate(&Matrix::from_vec(1, self.head_dim, da_l));
            head.a_r.accumulate(&Matrix::from_vec(1, self.head_dim, da_r));
            head.w.accumulate(&cache.h_in.t_matmul(&dp));
            dh.add_assign(&dp.matmul_t(&head.w.value));
        }
        dh
    }

    /// Per-node forward (GraphInfer merge step). The self-loop is added
    /// internally; `view.neighbor_h` must contain only true neighbors.
    pub fn forward_node(&self, view: &NeighborView<'_>) -> Vec<f32> {
        let deg = view.degree();
        let mut combined = vec![0.0f32; self.out_dim()];
        for (hi, head) in self.heads.iter().enumerate() {
            // Projections: index 0 = self, 1..=deg = neighbors.
            let mut p = Vec::with_capacity(deg + 1);
            p.push(project(view.self_h, &head.w.value));
            for h in view.neighbor_h {
                p.push(project(h, &head.w.value));
            }
            let s_l_self = dot(&p[0], head.a_l.value.row(0));
            let mut scores: Vec<f32> =
                p.iter().map(|pu| leaky_relu(s_l_self + dot(pu, head.a_r.value.row(0)))).collect();
            softmax_slice_inplace(&mut scores);
            let mut z = head.b.value.row(0).to_vec();
            for (pu, &a) in p.iter().zip(&scores) {
                for (o, &x) in z.iter_mut().zip(pu) {
                    *o += a * x;
                }
            }
            match self.combine {
                HeadCombine::Concat => {
                    let mut m = Matrix::from_vec(1, self.head_dim, z);
                    self.act.forward_inplace(&mut m);
                    let off = hi * self.head_dim;
                    combined[off..off + self.head_dim].copy_from_slice(m.as_slice());
                }
                HeadCombine::Average => {
                    for (o, &x) in combined.iter_mut().zip(&z) {
                        *o += x / self.heads.len() as f32;
                    }
                }
            }
        }
        if self.combine == HeadCombine::Average {
            let mut m = Matrix::from_vec(1, self.head_dim, combined);
            self.act.forward_inplace(&mut m);
            combined = m.into_vec();
        }
        combined
    }

    pub fn params(&self) -> Vec<&Param> {
        self.heads.iter().flat_map(|h| [&h.w, &h.a_l, &h.a_r, &h.b]).collect()
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.heads.iter_mut().flat_map(|h| [&mut h.w, &mut h.a_l, &mut h.a_r, &mut h.b]).collect()
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `h (1×in) @ w (in×out)` for a single row.
fn project(h: &[f32], w: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; w.cols()];
    for (k, &x) in h.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (o, &wv) in out.iter_mut().zip(w.row(k)) {
            *o += x * wv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{prepare_adj, AdjPrep};
    use agl_tensor::{seeded_rng, Coo};

    fn fixture(combine: HeadCombine, heads: usize) -> (Csr, Csr, Matrix, GatLayer) {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 3, 1.0);
        coo.push(3, 2, 1.0);
        let raw = coo.into_csr();
        let adj = prepare_adj(&raw, AdjPrep::StructWithSelfLoops);
        let h = Matrix::from_vec(4, 3, (0..12).map(|i| ((i * 7 % 5) as f32) * 0.3 - 0.6).collect());
        let layer = GatLayer::new(3, 2, heads, combine, Activation::Elu, "gat0", &mut seeded_rng(31));
        (raw, adj, h, layer)
    }

    #[test]
    fn forward_shapes_concat_vs_average() {
        let (_, adj, h, layer) = fixture(HeadCombine::Concat, 3);
        let (out, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
        assert_eq!(out.shape(), (4, 6));
        let (_, adj, h, layer) = fixture(HeadCombine::Average, 3);
        let (out, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
        assert_eq!(out.shape(), (4, 2));
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (_, adj, h, layer) = fixture(HeadCombine::Concat, 2);
        let (_, cache) = layer.forward(&adj, &h, &ExecCtx::sequential());
        let indptr = adj.indptr();
        for hc in &cache.heads {
            for v in 0..adj.n_rows() {
                let (s, e) = (indptr[v], indptr[v + 1]);
                if s == e {
                    continue;
                }
                let sum: f32 = hc.alpha[s..e].iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "row {v} alphas sum to {sum}");
            }
        }
    }

    #[test]
    fn parallel_forward_matches_sequential() {
        let (_, adj, h, layer) = fixture(HeadCombine::Concat, 2);
        let (s, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
        let (p, _) = layer.forward(&adj, &h, &ExecCtx::parallel(3));
        assert_eq!(s.max_abs_diff(&p), 0.0);
    }

    #[test]
    fn node_forward_matches_batch_row() {
        for combine in [HeadCombine::Concat, HeadCombine::Average] {
            let (raw, adj, h, layer) = fixture(combine, 2);
            let (batch_out, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
            for v in 0..4usize {
                let (srcs, ws) = raw.row(v);
                let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
                let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
                let node_out = layer.forward_node(&view);
                for (a, b) in node_out.iter().zip(batch_out.row(v)) {
                    assert!((a - b).abs() < 1e-4, "{combine:?} node {v}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn backward_produces_grads_for_all_params() {
        for combine in [HeadCombine::Concat, HeadCombine::Average] {
            let (_, adj, h, mut layer) = fixture(combine, 2);
            let ctx = ExecCtx::sequential();
            let (out, cache) = layer.forward(&adj, &h, &ctx);
            let dh = layer.backward(&adj, &cache, &Matrix::full(out.rows(), out.cols(), 1.0), &ctx);
            assert_eq!(dh.shape(), h.shape());
            for p in layer.params() {
                // a_l shifts every score of a destination row by the same
                // amount; softmax is shift-invariant, so a_l only receives
                // gradient through the LeakyReLU kink and may legitimately
                // be zero when all raw scores in each row share a sign.
                if p.name.ends_with(".a_l") {
                    continue;
                }
                assert!(p.grad.frobenius_norm() > 0.0, "{combine:?}: {} has zero grad", p.name);
            }
        }
    }
}
