//! The closed set of GNN layers plus the adjacency preprocessing each needs.

use crate::dense::DenseCache;
use crate::gat::{GatCache, GatLayer};
use crate::gcn::{GcnCache, GcnLayer};
use crate::geniepath::{GeniePathCache, GeniePathLayer};
use crate::gin::{GinCache, GinLayer};
use crate::param::Param;
use crate::sage::{SageCache, SageLayer};
use agl_tensor::{Csr, ExecCtx, Matrix};

/// How a layer wants the raw batch adjacency preprocessed before `forward`.
///
/// All variants are *destination-local*: they can be computed from a node's
/// own in-edges, which is why the same layer maths runs both on vectorized
/// batches (GraphTrainer) and inside a per-key reducer (GraphInfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjPrep {
    /// `D^{-1}(A + I)` — row-stochastic with a unit self-loop (GCN).
    MeanWithSelfLoops,
    /// `D^{-1}A` — row-stochastic over neighbors only (GraphSAGE; the self
    /// embedding enters through its own weight matrix).
    MeanNoSelf,
    /// `A + I` structure, weights untouched (GAT computes its own attention
    /// coefficients; edge weights are ignored, matching reference GAT).
    StructWithSelfLoops,
    /// Raw weighted `A`, no self-loop, no normalisation (GIN *sums*
    /// messages; the self embedding enters through its (1+ε) coefficient).
    SumNoSelf,
}

/// Apply an [`AdjPrep`] to a raw destination-sorted adjacency.
pub fn prepare_adj(raw: &Csr, prep: AdjPrep) -> Csr {
    match prep {
        AdjPrep::MeanWithSelfLoops => raw.with_self_loops(1.0).row_normalized(),
        AdjPrep::MeanNoSelf => raw.row_normalized(),
        AdjPrep::StructWithSelfLoops => raw.with_self_loops(1.0),
        AdjPrep::SumNoSelf => raw.clone(),
    }
}

/// One node's view of its in-edge neighborhood — what a GraphInfer reducer
/// holds after the merge step: the node's own embedding plus each in-edge
/// neighbor's embedding and edge weight.
#[derive(Debug)]
pub struct NeighborView<'a> {
    pub self_h: &'a [f32],
    /// One embedding per in-edge neighbor (excluding self).
    pub neighbor_h: &'a [Vec<f32>],
    /// Edge weight per neighbor, aligned with `neighbor_h`.
    pub weights: &'a [f32],
}

impl NeighborView<'_> {
    pub fn degree(&self) -> usize {
        self.neighbor_h.len()
    }
}

/// How a layer's neighbor aggregation decomposes into shuffle-combinable
/// partials (the InferTurbo combiner contract): two partial aggregates over
/// disjoint neighbor subsets can be merged into the aggregate over their
/// union without seeing the raw embeddings again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineKind {
    /// `acc = Σ w·h` — weighted sum (GIN; ε·self enters at apply time).
    Sum,
    /// `acc = Σ w·h` with `total_w = Σ w` kept for the normalisation at
    /// apply time (GCN's mean-with-self-loop, GraphSAGE's neighbor mean).
    Mean,
    /// `acc = elementwise max of w·h`. No shipped layer consumes it yet;
    /// it completes the aggregator set the combiner suite exercises.
    Max,
}

/// A partially-aggregated neighborhood: what a shuffle combiner ships in
/// place of raw per-neighbor embeddings, and what
/// [`GnnLayer::forward_node_combined`] consumes after all partials merge.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborAggregate {
    /// Neighbors folded in.
    pub n: u64,
    /// `Σ w` over the folded neighbors.
    pub total_w: f32,
    /// The elementwise accumulator (see [`CombineKind`]).
    pub acc: Vec<f32>,
}

impl NeighborAggregate {
    /// The empty aggregate (isolated node) at embedding width `dim`.
    pub fn empty(dim: usize) -> Self {
        Self { n: 0, total_w: 0.0, acc: vec![0.0; dim] }
    }
}

/// A GNN layer. Closed enum rather than a trait object so caches stay
/// concrete, `Send`, and serialisable.
#[derive(Debug, Clone)]
pub enum GnnLayer {
    Gcn(GcnLayer),
    Sage(SageLayer),
    Gat(GatLayer),
    Gin(GinLayer),
    GeniePath(GeniePathLayer),
}

/// Forward cache for one layer invocation.
#[derive(Debug)]
pub enum LayerCache {
    Gcn(GcnCache),
    Sage(SageCache),
    Gat(GatCache),
    Gin(GinCache),
    GeniePath(GeniePathCache),
    Dense(DenseCache),
}

impl GnnLayer {
    /// Input embedding width.
    pub fn in_dim(&self) -> usize {
        match self {
            GnnLayer::Gcn(l) => l.in_dim(),
            GnnLayer::Sage(l) => l.in_dim(),
            GnnLayer::Gat(l) => l.in_dim(),
            GnnLayer::Gin(l) => l.in_dim(),
            GnnLayer::GeniePath(l) => l.in_dim(),
        }
    }

    /// Output embedding width.
    pub fn out_dim(&self) -> usize {
        match self {
            GnnLayer::Gcn(l) => l.out_dim(),
            GnnLayer::Sage(l) => l.out_dim(),
            GnnLayer::Gat(l) => l.out_dim(),
            GnnLayer::Gin(l) => l.out_dim(),
            GnnLayer::GeniePath(l) => l.out_dim(),
        }
    }

    /// Adjacency preprocessing this layer expects.
    pub fn adj_prep(&self) -> AdjPrep {
        match self {
            GnnLayer::Gcn(_) => AdjPrep::MeanWithSelfLoops,
            GnnLayer::Sage(_) => AdjPrep::MeanNoSelf,
            GnnLayer::Gat(_) => AdjPrep::StructWithSelfLoops,
            GnnLayer::Gin(_) => AdjPrep::SumNoSelf,
            GnnLayer::GeniePath(_) => AdjPrep::StructWithSelfLoops,
        }
    }

    /// Batch forward over a *prepared* adjacency (see [`prepare_adj`]).
    pub fn forward(&self, adj: &Csr, h: &Matrix, ctx: &ExecCtx) -> (Matrix, LayerCache) {
        match self {
            GnnLayer::Gcn(l) => {
                let (out, c) = l.forward(adj, h, ctx);
                (out, LayerCache::Gcn(c))
            }
            GnnLayer::Sage(l) => {
                let (out, c) = l.forward(adj, h, ctx);
                (out, LayerCache::Sage(c))
            }
            GnnLayer::Gat(l) => {
                let (out, c) = l.forward(adj, h, ctx);
                (out, LayerCache::Gat(c))
            }
            GnnLayer::Gin(l) => {
                let (out, c) = l.forward(adj, h, ctx);
                (out, LayerCache::Gin(c))
            }
            GnnLayer::GeniePath(l) => {
                let (out, c) = l.forward(adj, h, ctx);
                (out, LayerCache::GeniePath(c))
            }
        }
    }

    /// Batch backward: accumulate parameter gradients and return the
    /// gradient w.r.t. the layer input.
    pub fn backward(&mut self, adj: &Csr, cache: &LayerCache, grad_out: &Matrix, ctx: &ExecCtx) -> Matrix {
        match (self, cache) {
            (GnnLayer::Gcn(l), LayerCache::Gcn(c)) => l.backward(adj, c, grad_out, ctx),
            (GnnLayer::Sage(l), LayerCache::Sage(c)) => l.backward(adj, c, grad_out, ctx),
            (GnnLayer::Gat(l), LayerCache::Gat(c)) => l.backward(adj, c, grad_out, ctx),
            (GnnLayer::Gin(l), LayerCache::Gin(c)) => l.backward(adj, c, grad_out, ctx),
            (GnnLayer::GeniePath(l), LayerCache::GeniePath(c)) => l.backward(adj, c, grad_out, ctx),
            _ => panic!("layer/cache kind mismatch"),
        }
    }

    /// Per-node forward — the GraphInfer reducer merge step. Produces the
    /// same embedding the batch forward produces for that node, given the
    /// node's *raw* (unprepared) in-edge neighborhood.
    pub fn forward_node(&self, view: &NeighborView<'_>) -> Vec<f32> {
        match self {
            GnnLayer::Gcn(l) => l.forward_node(view),
            GnnLayer::Sage(l) => l.forward_node(view),
            GnnLayer::Gat(l) => l.forward_node(view),
            GnnLayer::Gin(l) => l.forward_node(view),
            GnnLayer::GeniePath(l) => l.forward_node(view),
        }
    }

    /// How this layer's aggregation decomposes into combinable partials.
    /// `None` for attention layers (GAT, GeniePath): their coefficients
    /// depend on every raw neighbor embedding jointly, so partial
    /// aggregation before the attention softmax is unsound — the streaming
    /// pipeline falls back to shipping raw embeddings for them.
    pub fn combine_kind(&self) -> Option<CombineKind> {
        match self {
            GnnLayer::Gcn(_) => Some(CombineKind::Mean),
            GnnLayer::Sage(_) => Some(CombineKind::Mean),
            GnnLayer::Gin(_) => Some(CombineKind::Sum),
            GnnLayer::Gat(_) | GnnLayer::GeniePath(_) => None,
        }
    }

    /// Per-node forward from a merged [`NeighborAggregate`] instead of raw
    /// neighbor embeddings — the apply step of the gather-apply-scatter
    /// pipeline. Same maths as [`GnnLayer::forward_node`]; the fold order
    /// over neighbors is fixed by whoever built the aggregate, which is
    /// exactly what makes combiner-on and combiner-off runs bit-identical.
    /// Callers must gate on [`GnnLayer::combine_kind`].
    pub fn forward_node_combined(&self, self_h: &[f32], agg: &NeighborAggregate) -> Vec<f32> {
        match self {
            GnnLayer::Gcn(l) => l.forward_node_combined(self_h, agg),
            GnnLayer::Sage(l) => l.forward_node_combined(self_h, agg),
            GnnLayer::Gin(l) => l.forward_node_combined(self_h, agg),
            // agl-lint: allow(no-panic) — combine_kind() is None for attention layers; callers gate on it.
            GnnLayer::Gat(_) | GnnLayer::GeniePath(_) => panic!("{} has no combinable aggregation", self.kind_name()),
        }
    }

    pub fn params(&self) -> Vec<&Param> {
        match self {
            GnnLayer::Gcn(l) => l.params(),
            GnnLayer::Sage(l) => l.params(),
            GnnLayer::Gat(l) => l.params(),
            GnnLayer::Gin(l) => l.params(),
            GnnLayer::GeniePath(l) => l.params(),
        }
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            GnnLayer::Gcn(l) => l.params_mut(),
            GnnLayer::Sage(l) => l.params_mut(),
            GnnLayer::Gat(l) => l.params_mut(),
            GnnLayer::Gin(l) => l.params_mut(),
            GnnLayer::GeniePath(l) => l.params_mut(),
        }
    }

    /// Human-readable kind tag.
    pub fn kind_name(&self) -> &'static str {
        match self {
            GnnLayer::Gcn(_) => "gcn",
            GnnLayer::Sage(_) => "sage",
            GnnLayer::Gat(_) => "gat",
            GnnLayer::Gin(_) => "gin",
            GnnLayer::GeniePath(_) => "geniepath",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::Coo;

    fn raw() -> Csr {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 5.0);
        coo.into_csr()
    }

    #[test]
    fn mean_with_self_loops_is_row_stochastic() {
        let p = prepare_adj(&raw(), AdjPrep::MeanWithSelfLoops);
        for r in 0..3 {
            let (_, vals) = p.row(r);
            let s: f32 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
        // row 0: self weight 1 / (2+2+1)
        let d = p.to_dense();
        assert!((d[(0, 0)] - 0.2).abs() < 1e-6);
    }

    #[test]
    fn mean_no_self_keeps_empty_rows_empty() {
        let p = prepare_adj(&raw(), AdjPrep::MeanNoSelf);
        assert_eq!(p.row_nnz(1), 0);
        let (_, vals) = p.row(0);
        assert!((vals.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn struct_prep_preserves_weights_and_adds_diagonal() {
        let p = prepare_adj(&raw(), AdjPrep::StructWithSelfLoops);
        let d = p.to_dense();
        assert_eq!(d[(2, 0)], 5.0);
        for i in 0..3 {
            assert_eq!(d[(i, i)], 1.0);
        }
    }
}
