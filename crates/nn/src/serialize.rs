//! Model (de)serialisation to a flat byte string.
//!
//! A trained model must cross two boundaries: from GraphTrainer to
//! GraphInfer (which re-loads it slice by slice), and to disk for the
//! examples. The format is the model's [`ModelConfig`] followed by the flat
//! parameter vector; loading rebuilds the architecture from the config and
//! installs the parameters, so a round-tripped model is bit-identical.

use crate::loss::Loss;
use crate::model::{GnnModel, ModelConfig, ModelKind};
use agl_tensor::ops::Activation;

/// Serialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializeError(pub String);

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model serialize error: {}", self.0)
    }
}

impl std::error::Error for SerializeError {}

const MAGIC: &[u8; 4] = b"AGL1";

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn need<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], SerializeError> {
    if input.len() < n {
        return Err(SerializeError(format!("truncated: need {n}, have {}", input.len())));
    }
    let (h, t) = input.split_at(n);
    *input = t;
    Ok(h)
}

fn get_u32(input: &mut &[u8]) -> Result<u32, SerializeError> {
    Ok(u32::from_le_bytes(need(input, 4)?.try_into().unwrap()))
}

fn get_u64(input: &mut &[u8]) -> Result<u64, SerializeError> {
    Ok(u64::from_le_bytes(need(input, 8)?.try_into().unwrap()))
}

fn get_f32(input: &mut &[u8]) -> Result<f32, SerializeError> {
    Ok(f32::from_le_bytes(need(input, 4)?.try_into().unwrap()))
}

fn act_tag(a: Activation) -> u8 {
    match a {
        Activation::Relu => 0,
        Activation::LeakyRelu => 1,
        Activation::Elu => 2,
        Activation::Sigmoid => 3,
        Activation::Linear => 4,
    }
}

fn act_from(t: u8) -> Result<Activation, SerializeError> {
    Ok(match t {
        0 => Activation::Relu,
        1 => Activation::LeakyRelu,
        2 => Activation::Elu,
        3 => Activation::Sigmoid,
        4 => Activation::Linear,
        _ => return Err(SerializeError(format!("bad activation tag {t}"))),
    })
}

/// Serialise config + parameters.
pub fn model_to_bytes(model: &GnnModel) -> Vec<u8> {
    let cfg = model.config();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    let (kind_tag, heads) = match cfg.kind {
        ModelKind::Gcn => (0u8, 0u32),
        ModelKind::Sage => (1, 0),
        ModelKind::Gat { heads } => (2, heads as u32),
        ModelKind::Gin => (3, 0),
        ModelKind::GeniePath => (4, 0),
    };
    buf.push(kind_tag);
    put_u32(&mut buf, heads);
    put_u32(&mut buf, cfg.in_dim as u32);
    put_u32(&mut buf, cfg.hidden_dim as u32);
    put_u32(&mut buf, cfg.out_dim as u32);
    put_u32(&mut buf, cfg.n_layers as u32);
    buf.push(act_tag(cfg.hidden_act));
    put_f32(&mut buf, cfg.dropout);
    buf.push(match cfg.loss {
        Loss::SoftmaxCrossEntropy => 0,
        Loss::BceWithLogits => 1,
    });
    put_u64(&mut buf, cfg.seed);
    let flat = model.param_vector();
    put_u32(&mut buf, flat.len() as u32);
    for v in flat {
        put_f32(&mut buf, v);
    }
    buf
}

/// Rebuild a model from [`model_to_bytes`] output.
pub fn model_from_bytes(mut input: &[u8]) -> Result<GnnModel, SerializeError> {
    let magic = need(&mut input, 4)?;
    if magic != MAGIC {
        return Err(SerializeError("bad magic".into()));
    }
    let kind_tag = need(&mut input, 1)?[0];
    let heads = get_u32(&mut input)? as usize;
    let kind = match kind_tag {
        0 => ModelKind::Gcn,
        1 => ModelKind::Sage,
        2 => ModelKind::Gat { heads },
        3 => ModelKind::Gin,
        4 => ModelKind::GeniePath,
        t => return Err(SerializeError(format!("bad kind tag {t}"))),
    };
    let in_dim = get_u32(&mut input)? as usize;
    let hidden_dim = get_u32(&mut input)? as usize;
    let out_dim = get_u32(&mut input)? as usize;
    let n_layers = get_u32(&mut input)? as usize;
    let hidden_act = act_from(need(&mut input, 1)?[0])?;
    let dropout = get_f32(&mut input)?;
    let loss = match need(&mut input, 1)?[0] {
        0 => Loss::SoftmaxCrossEntropy,
        1 => Loss::BceWithLogits,
        t => return Err(SerializeError(format!("bad loss tag {t}"))),
    };
    let seed = get_u64(&mut input)?;
    let cfg = ModelConfig { kind, in_dim, hidden_dim, out_dim, n_layers, hidden_act, dropout, loss, seed };
    let mut model = GnnModel::new(cfg);
    let n = get_u32(&mut input)? as usize;
    if n != model.param_count() {
        return Err(SerializeError(format!("param count {n} != expected {}", model.param_count())));
    }
    let mut flat = Vec::with_capacity(n);
    for _ in 0..n {
        flat.push(get_f32(&mut input)?);
    }
    if !input.is_empty() {
        return Err(SerializeError(format!("{} trailing bytes", input.len())));
    }
    model.load_param_vector(&flat);
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_like_model(kind: ModelKind) -> GnnModel {
        let cfg = ModelConfig::new(kind, 5, 4, 3, 2, Loss::BceWithLogits).with_dropout(0.1).with_seed(77);
        let mut m = GnnModel::new(cfg);
        // Perturb params so we are not just round-tripping the init.
        let v: Vec<f32> = m.param_vector().iter().enumerate().map(|(i, x)| x + (i as f32) * 1e-3).collect();
        m.load_param_vector(&v);
        m
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat { heads: 3 }, ModelKind::Gin, ModelKind::GeniePath]
        {
            let m = trained_like_model(kind);
            let bytes = model_to_bytes(&m);
            let back = model_from_bytes(&bytes).unwrap();
            assert_eq!(back.param_vector(), m.param_vector(), "{kind:?}");
            assert_eq!(back.config(), m.config(), "{kind:?}");
        }
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut bytes = model_to_bytes(&trained_like_model(ModelKind::Gcn));
        bytes[0] = b'X';
        assert!(model_from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let bytes = model_to_bytes(&trained_like_model(ModelKind::Gcn));
        assert!(model_from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = model_to_bytes(&trained_like_model(ModelKind::Gcn));
        bytes.push(0);
        assert!(model_from_bytes(&bytes).is_err());
    }
}
