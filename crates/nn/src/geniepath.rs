//! GeniePath layer (Liu et al., AAAI 2019 — the paper's reference 12,
//! Ant Financial's own architecture): *adaptive receptive paths* via a
//! breadth function (additive attention over the in-edge neighborhood) and
//! a depth function (LSTM-style gating across layers).
//!
//! Per layer `t`, with node state `(h, C)`:
//!
//! ```text
//! breadth:  s(v←u) = v_a · tanh(h_v W_s + h_u W_d)        (u ∈ {v} ∪ N+(v))
//!           α(v←·) = softmax_u(s)
//!           tmp_v  = tanh( (Σ_u α(v←u) h_u) W_agg )
//! depth:    i = σ(tmp W_i + b_i)   f = σ(tmp W_f + b_f)
//!           o = σ(tmp W_o + b_o)   c̃ = tanh(tmp W_c + b_c)
//!           C' = f ⊙ C + i ⊙ c̃     h' = o ⊙ tanh(C')
//! ```
//!
//! (The "lazy" GeniePath variant: gates read only the aggregated message.)
//!
//! The `(h, C)` pair is packed as one `2d`-wide embedding between layers,
//! which keeps the layer inside AGL's message-passing contract — GraphInfer
//! reducers propagate the packed state exactly like any other embedding.
//! The first layer (whose input is the raw `f_n`-wide features) applies its
//! own input projection `W_x` and starts from `C = 0`.

use crate::layer::NeighborView;
use crate::param::Param;
use agl_tensor::ops::{sigmoid, sigmoid_grad_from_output, softmax_slice_inplace};
use agl_tensor::rng::Rng;
use agl_tensor::{init, Csr, ExecCtx, Matrix};

/// One GeniePath layer with hidden width `d` (state width `2d`).
#[derive(Debug, Clone)]
pub struct GeniePathLayer {
    dim: usize,
    /// Input projection for the first layer (raw features → h); absent when
    /// the input is already a packed `(h, C)` state.
    w_x: Option<Param>,
    in_dim: usize,
    w_s: Param,
    w_d: Param,
    v_a: Param,
    w_agg: Param,
    w_i: Param,
    b_i: Param,
    w_f: Param,
    b_f: Param,
    w_o: Param,
    b_o: Param,
    w_c: Param,
    b_c: Param,
}

/// Forward cache.
#[derive(Debug)]
pub struct GeniePathCache {
    /// Raw layer input (packed state or features).
    input: Matrix,
    /// Unpacked h (after W_x for the entry layer).
    h: Matrix,
    /// Unpacked C (zeros for the entry layer).
    c: Matrix,
    /// Per-edge tanh(h_v W_s + h_u W_d), nnz × d.
    t_edges: Matrix,
    /// Per-edge attention coefficients (aligned with adjacency entries).
    alpha: Vec<f32>,
    /// Σ α h_u per node.
    agg: Matrix,
    tmp: Matrix,
    gate_i: Matrix,
    gate_f: Matrix,
    gate_o: Matrix,
    c_tilde: Matrix,
    c_new: Matrix,
}

impl GeniePathLayer {
    /// `in_dim` is either the raw feature width (entry layer) or `2 * dim`
    /// (stacked layer).
    pub fn new(in_dim: usize, dim: usize, name: &str, rng: &mut impl Rng) -> Self {
        let needs_proj = in_dim != 2 * dim;
        let a_bound = (6.0 / (dim + 1) as f32).sqrt();
        let w_s = Param::new(format!("{name}.w_s"), init::xavier_uniform(dim, dim, rng));
        let w_d = Param::new(format!("{name}.w_d"), init::xavier_uniform(dim, dim, rng));
        let v_a = Param::new(format!("{name}.v_a"), init::uniform(1, dim, a_bound, rng));
        let w_agg = Param::new(format!("{name}.w_agg"), init::xavier_uniform(dim, dim, rng));
        let w_i = Param::new(format!("{name}.w_i"), init::xavier_uniform(dim, dim, rng));
        let b_i = Param::new(format!("{name}.b_i"), Matrix::zeros(1, dim));
        let w_f = Param::new(format!("{name}.w_f"), init::xavier_uniform(dim, dim, rng));
        let b_f = Param::new(format!("{name}.b_f"), Matrix::zeros(1, dim));
        let w_o = Param::new(format!("{name}.w_o"), init::xavier_uniform(dim, dim, rng));
        let b_o = Param::new(format!("{name}.b_o"), Matrix::zeros(1, dim));
        let w_c = Param::new(format!("{name}.w_c"), init::xavier_uniform(dim, dim, rng));
        let b_c = Param::new(format!("{name}.b_c"), Matrix::zeros(1, dim));
        Self {
            dim,
            w_x: needs_proj.then(|| Param::new(format!("{name}.w_x"), init::xavier_uniform(in_dim, dim, rng))),
            in_dim,
            w_s,
            w_d,
            v_a,
            w_agg,
            w_i,
            b_i,
            w_f,
            b_f,
            w_o,
            b_o,
            w_c,
            b_c,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Packed `(h, C)` output width.
    pub fn out_dim(&self) -> usize {
        2 * self.dim
    }

    pub fn hidden_dim(&self) -> usize {
        self.dim
    }

    /// Split the packed input into `(h, C)` (projecting for the entry layer).
    fn unpack(&self, input: &Matrix) -> (Matrix, Matrix) {
        let n = input.rows();
        match &self.w_x {
            Some(w_x) => (input.matmul(&w_x.value), Matrix::zeros(n, self.dim)),
            None => {
                let mut h = Matrix::zeros(n, self.dim);
                let mut c = Matrix::zeros(n, self.dim);
                for r in 0..n {
                    h.row_mut(r).copy_from_slice(&input.row(r)[..self.dim]);
                    c.row_mut(r).copy_from_slice(&input.row(r)[self.dim..]);
                }
                (h, c)
            }
        }
    }

    /// Batch forward. `adj` must be prepared with
    /// [`crate::layer::AdjPrep::StructWithSelfLoops`].
    pub fn forward(&self, adj: &Csr, input: &Matrix, ctx: &ExecCtx) -> (Matrix, GeniePathCache) {
        debug_assert_eq!(input.cols(), self.in_dim);
        let n = adj.n_rows();
        let (h, c) = self.unpack(input);
        // Breadth: per-edge additive attention.
        let hs = h.matmul(&self.w_s.value); // n×d — destination side
        let hd = h.matmul(&self.w_d.value); // n×d — source side
        let nnz = adj.nnz();
        let mut t_edges = Matrix::zeros(nnz, self.dim);
        let mut scores = vec![0.0f32; nnz];
        let indptr = adj.indptr();
        for v in 0..n {
            let (srcs, _) = adj.row(v);
            let base = indptr[v];
            for (i, &u) in srcs.iter().enumerate() {
                let row = t_edges.row_mut(base + i);
                for (k, o) in row.iter_mut().enumerate() {
                    *o = (hs[(v, k)] + hd[(u as usize, k)]).tanh();
                }
                scores[base + i] = row.iter().zip(self.v_a.value.row(0)).map(|(&t, &a)| t * a).sum();
            }
            softmax_slice_inplace(&mut scores[base..indptr[v + 1]]);
        }
        let alpha = scores;
        let alpha_csr = Csr::from_raw(n, adj.n_cols(), indptr.to_vec(), adj.indices().to_vec(), alpha.clone());
        let agg = ctx.spmm(&alpha_csr, &h);
        let tmp = agg.matmul(&self.w_agg.value).map(f32::tanh);
        // Depth: LSTM gates from tmp only.
        let gate = |w: &Param, b: &Param, squash: fn(f32) -> f32| {
            let mut g = tmp.matmul(&w.value);
            g.add_row_broadcast(b.value.row(0));
            g.map_inplace(squash);
            g
        };
        let gate_i = gate(&self.w_i, &self.b_i, sigmoid);
        let gate_f = gate(&self.w_f, &self.b_f, sigmoid);
        let gate_o = gate(&self.w_o, &self.b_o, sigmoid);
        let c_tilde = gate(&self.w_c, &self.b_c, f32::tanh);
        let mut c_new = gate_f.hadamard(&c);
        c_new.add_assign(&gate_i.hadamard(&c_tilde));
        let h_new = gate_o.hadamard(&c_new.map(f32::tanh));
        // Pack (h', C').
        let mut out = Matrix::zeros(n, 2 * self.dim);
        for r in 0..n {
            out.row_mut(r)[..self.dim].copy_from_slice(h_new.row(r));
            out.row_mut(r)[self.dim..].copy_from_slice(c_new.row(r));
        }
        let cache = GeniePathCache {
            input: input.clone(),
            h,
            c,
            t_edges,
            alpha,
            agg,
            tmp,
            gate_i,
            gate_f,
            gate_o,
            c_tilde,
            c_new,
        };
        (out, cache)
    }

    /// Batch backward.
    pub fn backward(&mut self, adj: &Csr, cache: &GeniePathCache, grad_out: &Matrix, _ctx: &ExecCtx) -> Matrix {
        let n = adj.n_rows();
        let d = self.dim;
        // Unpack gradient of the packed output.
        let mut dh_new = Matrix::zeros(n, d);
        let mut dc_new = Matrix::zeros(n, d);
        for r in 0..n {
            dh_new.row_mut(r).copy_from_slice(&grad_out.row(r)[..d]);
            dc_new.row_mut(r).copy_from_slice(&grad_out.row(r)[d..]);
        }
        // h' = o ⊙ tanh(C')
        let tanh_c = cache.c_new.map(f32::tanh);
        let d_o = dh_new.hadamard(&tanh_c);
        let mut d_cn = dc_new;
        {
            let extra = dh_new.hadamard(&cache.gate_o).hadamard(&tanh_c.map(|t| 1.0 - t * t));
            d_cn.add_assign(&extra);
        }
        // C' = f ⊙ C + i ⊙ c̃
        let d_f = d_cn.hadamard(&cache.c);
        let d_c_in = d_cn.hadamard(&cache.gate_f);
        let d_i = d_cn.hadamard(&cache.c_tilde);
        let d_ctilde = d_cn.hadamard(&cache.gate_i);
        // Gate pre-activations.
        let pre_i = d_i.hadamard(&cache.gate_i.map(sigmoid_grad_from_output));
        let pre_f = d_f.hadamard(&cache.gate_f.map(sigmoid_grad_from_output));
        let pre_o = d_o.hadamard(&cache.gate_o.map(sigmoid_grad_from_output));
        let pre_c = d_ctilde.hadamard(&cache.c_tilde.map(|t| 1.0 - t * t));
        // Accumulate gate params + gradient into tmp.
        let mut d_tmp = Matrix::zeros(n, d);
        for (pre, w, b) in [
            (&pre_i, &mut self.w_i, &mut self.b_i),
            (&pre_f, &mut self.w_f, &mut self.b_f),
            (&pre_o, &mut self.w_o, &mut self.b_o),
            (&pre_c, &mut self.w_c, &mut self.b_c),
        ] {
            b.accumulate(&Matrix::from_vec(1, d, pre.col_sums()));
            w.accumulate(&cache.tmp.t_matmul(pre));
            d_tmp.add_assign(&pre.matmul_t(&w.value));
        }
        // tmp = tanh(agg W_agg)
        let d_tmp_pre = d_tmp.hadamard(&cache.tmp.map(|t| 1.0 - t * t));
        self.w_agg.accumulate(&cache.agg.t_matmul(&d_tmp_pre));
        let d_agg = d_tmp_pre.matmul_t(&self.w_agg.value);
        // Attention backward (α over per-edge additive scores).
        let indptr = adj.indptr();
        let alpha_csr = Csr::from_raw(n, adj.n_cols(), indptr.to_vec(), adj.indices().to_vec(), cache.alpha.clone());
        let mut d_h = alpha_csr.t_spmm(&d_agg); // from agg = Σ α h_u
        let mut d_hs = Matrix::zeros(n, d); // grad into h W_s rows (dest side)
        let mut d_hd = Matrix::zeros(n, d); // grad into h W_d rows (src side)
        let mut d_va = vec![0.0f32; d];
        let mut dalpha_row: Vec<f32> = Vec::new();
        for v in 0..n {
            let (srcs, _) = adj.row(v);
            if srcs.is_empty() {
                continue;
            }
            let base = indptr[v];
            dalpha_row.clear();
            dalpha_row.extend(
                srcs.iter()
                    .map(|&u| d_agg.row(v).iter().zip(cache.h.row(u as usize)).map(|(&g, &x)| g * x).sum::<f32>()),
            );
            let alpha = &cache.alpha[base..indptr[v + 1]];
            let dot_sum: f32 = alpha.iter().zip(&dalpha_row).map(|(&a, &g)| a * g).sum();
            for (i, &u) in srcs.iter().enumerate() {
                let ds = alpha[i] * (dalpha_row[i] - dot_sum);
                let t_row = cache.t_edges.row(base + i);
                // s = v_a · t ; t = tanh(pre)
                for k in 0..d {
                    let t = t_row[k];
                    d_va[k] += ds * t;
                    let d_pre = ds * self.v_a.value[(0, k)] * (1.0 - t * t);
                    d_hs[(v, k)] += d_pre;
                    d_hd[(u as usize, k)] += d_pre;
                }
            }
        }
        self.v_a.accumulate(&Matrix::from_vec(1, d, d_va));
        // hs = h W_s, hd = h W_d.
        self.w_s.accumulate(&cache.h.t_matmul(&d_hs));
        self.w_d.accumulate(&cache.h.t_matmul(&d_hd));
        d_h.add_assign(&d_hs.matmul_t(&self.w_s.value));
        d_h.add_assign(&d_hd.matmul_t(&self.w_d.value));
        // Back through the unpack.
        match &mut self.w_x {
            Some(w_x) => {
                w_x.accumulate(&cache.input.t_matmul(&d_h));
                d_h.matmul_t(&w_x.value) // dC_in dies at the constant C=0
            }
            None => {
                let mut d_in = Matrix::zeros(n, 2 * d);
                for r in 0..n {
                    d_in.row_mut(r)[..d].copy_from_slice(d_h.row(r));
                    d_in.row_mut(r)[d..].copy_from_slice(d_c_in.row(r));
                }
                d_in
            }
        }
    }

    /// Per-node forward (GraphInfer merge step). `view.self_h` and each
    /// neighbor embedding are packed `(h, C)` states (raw features for the
    /// entry layer). The self-loop is added internally.
    pub fn forward_node(&self, view: &NeighborView<'_>) -> Vec<f32> {
        let d = self.dim;
        // Unpack self + neighbors.
        let unpack_one = |x: &[f32]| -> (Vec<f32>, Vec<f32>) {
            match &self.w_x {
                Some(w_x) => {
                    let mut h = vec![0.0f32; d];
                    for (k, &xv) in x.iter().enumerate() {
                        if xv != 0.0 {
                            for (o, &w) in h.iter_mut().zip(w_x.value.row(k)) {
                                *o += xv * w;
                            }
                        }
                    }
                    (h, vec![0.0; d])
                }
                None => (x[..d].to_vec(), x[d..].to_vec()),
            }
        };
        let (h_self, c_self) = unpack_one(view.self_h);
        let mut hs: Vec<Vec<f32>> = vec![h_self.clone()];
        for nb in view.neighbor_h {
            hs.push(unpack_one(nb).0);
        }
        let proj = |h: &[f32], w: &Matrix| -> Vec<f32> {
            let mut out = vec![0.0f32; d];
            for (k, &x) in h.iter().enumerate() {
                if x != 0.0 {
                    for (o, &wv) in out.iter_mut().zip(w.row(k)) {
                        *o += x * wv;
                    }
                }
            }
            out
        };
        let hs_self = proj(&h_self, &self.w_s.value);
        let mut scores: Vec<f32> = hs
            .iter()
            .map(|h_u| {
                let hd_u = proj(h_u, &self.w_d.value);
                hs_self.iter().zip(&hd_u).zip(self.v_a.value.row(0)).map(|((&a, &b), &va)| (a + b).tanh() * va).sum()
            })
            .collect();
        softmax_slice_inplace(&mut scores);
        let mut agg = vec![0.0f32; d];
        for (h_u, &a) in hs.iter().zip(&scores) {
            for (o, &x) in agg.iter_mut().zip(h_u) {
                *o += a * x;
            }
        }
        let tmp: Vec<f32> = proj(&agg, &self.w_agg.value).iter().map(|&x| x.tanh()).collect();
        let gate = |w: &Matrix, b: &Param, squash: fn(f32) -> f32| -> Vec<f32> {
            proj(&tmp, w).iter().zip(b.value.row(0)).map(|(&x, &bv)| squash(x + bv)).collect()
        };
        let i = gate(&self.w_i.value, &self.b_i, sigmoid);
        let f = gate(&self.w_f.value, &self.b_f, sigmoid);
        let o = gate(&self.w_o.value, &self.b_o, sigmoid);
        let ct = gate(&self.w_c.value, &self.b_c, f32::tanh);
        let mut out = vec![0.0f32; 2 * d];
        for k in 0..d {
            let c_new = f[k] * c_self[k] + i[k] * ct[k];
            out[k] = o[k] * c_new.tanh();
            out[d + k] = c_new;
        }
        out
    }

    pub fn params(&self) -> Vec<&Param> {
        let mut out: Vec<&Param> = Vec::with_capacity(13);
        if let Some(w_x) = &self.w_x {
            out.push(w_x);
        }
        out.extend([
            &self.w_s,
            &self.w_d,
            &self.v_a,
            &self.w_agg,
            &self.w_i,
            &self.b_i,
            &self.w_f,
            &self.b_f,
            &self.w_o,
            &self.b_o,
            &self.w_c,
            &self.b_c,
        ]);
        out
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = Vec::with_capacity(13);
        if let Some(w_x) = &mut self.w_x {
            out.push(w_x);
        }
        out.extend([
            &mut self.w_s,
            &mut self.w_d,
            &mut self.v_a,
            &mut self.w_agg,
            &mut self.w_i,
            &mut self.b_i,
            &mut self.w_f,
            &mut self.b_f,
            &mut self.w_o,
            &mut self.b_o,
            &mut self.w_c,
            &mut self.b_c,
        ]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{prepare_adj, AdjPrep};
    use agl_tensor::{seeded_rng, Coo};

    fn fixture(entry: bool) -> (Csr, Csr, Matrix, GeniePathLayer) {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 1.0);
        coo.push(1, 3, 1.0);
        coo.push(3, 2, 1.0);
        let raw = coo.into_csr();
        let adj = prepare_adj(&raw, AdjPrep::StructWithSelfLoops);
        let d = 3usize;
        let in_dim = if entry { 5 } else { 2 * d };
        let h = Matrix::from_vec(4, in_dim, (0..4 * in_dim).map(|i| ((i * 13 % 7) as f32) * 0.15 - 0.4).collect());
        let layer = GeniePathLayer::new(in_dim, d, "gp0", &mut seeded_rng(61));
        (raw, adj, h, layer)
    }

    #[test]
    fn output_packs_state_pairs() {
        let (_, adj, h, layer) = fixture(true);
        let (out, cache) = layer.forward(&adj, &h, &ExecCtx::sequential());
        assert_eq!(out.shape(), (4, 6), "packed (h, C)");
        // C half of the output equals the cached c_new.
        for r in 0..4 {
            assert_eq!(&out.row(r)[3..], cache.c_new.row(r));
        }
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (_, adj, h, layer) = fixture(true);
        let (_, cache) = layer.forward(&adj, &h, &ExecCtx::sequential());
        let indptr = adj.indptr();
        for v in 0..4 {
            let s: f32 = cache.alpha[indptr[v]..indptr[v + 1]].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {v} alphas sum {s}");
        }
    }

    #[test]
    fn node_forward_matches_batch_row_entry_and_stacked() {
        for entry in [true, false] {
            let (raw, adj, h, layer) = fixture(entry);
            let (batch_out, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
            for v in 0..4usize {
                let (srcs, ws) = raw.row(v);
                let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
                let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
                let node_out = layer.forward_node(&view);
                for (a, b) in node_out.iter().zip(batch_out.row(v)) {
                    assert!((a - b).abs() < 1e-4, "entry={entry} node {v}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn backward_produces_grads() {
        for entry in [true, false] {
            let (_, adj, h, mut layer) = fixture(entry);
            let ctx = ExecCtx::sequential();
            let (out, cache) = layer.forward(&adj, &h, &ctx);
            let dh = layer.backward(&adj, &cache, &Matrix::full(out.rows(), out.cols(), 1.0), &ctx);
            assert_eq!(dh.shape(), h.shape());
            let nonzero = layer.params().iter().filter(|p| p.grad.frobenius_norm() > 0.0).count();
            assert!(nonzero >= 10, "entry={entry}: only {nonzero} params received gradient");
        }
    }
}
