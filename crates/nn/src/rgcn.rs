//! Relational / edge-conditioned GCN — the consumer of the `E_B` edge
//! feature matrix that §3.3.1's vectorization carries.
//!
//! The paper's heterogeneous financial graph has typed edges (*"various
//! kinds of interactions between users"*); this layer conditions each
//! message on its edge features, R-GCN style with a basis decomposition:
//!
//! ```text
//! msg(v←u) = ā_vu · h_u ( W_base + Σ_r ef_r(v←u) · W_r )
//! h'_v     = act( b + Σ_{u∈N+(v)} msg(v←u) )
//! ```
//!
//! where `ā` is the row-stochastic mean weight over `{v} ∪ N+(v)` (the
//! destination-local normalisation every AGL path can compute) and `ef_r`
//! is the r-th edge feature (e.g. a one-hot relation type). With `R = 0`
//! this degenerates to a plain GCN layer.
//!
//! The layer works directly on the merged subgraph's **edge list** (the
//! natural carrier of per-edge features), not a CSR — so it composes with
//! `agl_trainer::vectorize` output without re-aligning feature rows, and
//! its per-edge loop is embarrassingly partitionable by destination.

use crate::param::Param;
use agl_graph::SubEdge;
use agl_tensor::ops::Activation;
use agl_tensor::rng::Rng;
use agl_tensor::{init, Matrix};

/// Edge-conditioned GCN layer over an explicit edge list.
#[derive(Debug, Clone)]
pub struct RelationalGcnLayer {
    w_base: Param,
    /// One basis matrix per edge-feature channel.
    w_rel: Vec<Param>,
    b: Param,
    act: Activation,
}

/// Forward cache.
#[derive(Debug)]
pub struct RgcnCache {
    h_in: Matrix,
    /// Mean-normalised coefficient per edge (aligned with the edge list),
    /// including the self-loop coefficient per node at the end.
    edge_coef: Vec<f32>,
    self_coef: Vec<f32>,
    pre: Matrix,
    post: Matrix,
}

impl RelationalGcnLayer {
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        n_edge_feats: usize,
        act: Activation,
        name: &str,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            w_base: Param::new(format!("{name}.w_base"), init::xavier_uniform(in_dim, out_dim, rng)),
            w_rel: (0..n_edge_feats)
                .map(|r| Param::new(format!("{name}.w_rel{r}"), init::xavier_uniform(in_dim, out_dim, rng)))
                .collect(),
            b: Param::new(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w_base.value.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w_base.value.cols()
    }

    pub fn n_edge_feats(&self) -> usize {
        self.w_rel.len()
    }

    /// Normalisation coefficients: self-loop + each in-edge of a node get
    /// weight `w / (Σ w + 1)` — identical maths to `AdjPrep::MeanWithSelfLoops`.
    fn coefficients(n: usize, edges: &[SubEdge]) -> (Vec<f32>, Vec<f32>) {
        let mut totals = vec![1.0f32; n]; // self-loop weight 1
        for e in edges {
            totals[e.dst as usize] += e.weight;
        }
        let edge_coef = edges.iter().map(|e| e.weight / totals[e.dst as usize]).collect();
        let self_coef = totals.iter().map(|&t| 1.0 / t).collect();
        (edge_coef, self_coef)
    }

    /// Batch forward over the merged subgraph's raw edge list and (optional)
    /// per-edge features (`E_B`, rows aligned with `edges`).
    pub fn forward(
        &self,
        n_nodes: usize,
        edges: &[SubEdge],
        edge_feats: Option<&Matrix>,
        h: &Matrix,
    ) -> (Matrix, RgcnCache) {
        assert_eq!(h.rows(), n_nodes);
        assert_eq!(h.cols(), self.in_dim());
        if let Some(ef) = edge_feats {
            assert_eq!(ef.rows(), edges.len(), "one feature row per edge");
            assert_eq!(ef.cols(), self.n_edge_feats(), "edge feature width");
        }
        let (edge_coef, self_coef) = Self::coefficients(n_nodes, edges);
        // Projections (R+1 dense matmuls).
        let p_base = h.matmul(&self.w_base.value);
        let p_rel: Vec<Matrix> = self.w_rel.iter().map(|w| h.matmul(&w.value)).collect();
        let mut pre = Matrix::zeros(n_nodes, self.out_dim());
        // Self-loops through the base weight only (no edge features).
        for v in 0..n_nodes {
            let c = self_coef[v];
            let dst = pre.row_mut(v);
            for (o, &x) in dst.iter_mut().zip(p_base.row(v)) {
                *o += c * x;
            }
        }
        for (i, e) in edges.iter().enumerate() {
            let c = edge_coef[i];
            let (u, v) = (e.src as usize, e.dst as usize);
            // SAFETY-free split: accumulate into a temp row to avoid borrow
            // gymnastics; rows are short.
            let mut msg: Vec<f32> = p_base.row(u).iter().map(|&x| c * x).collect();
            if let Some(ef) = edge_feats {
                for (r, p) in p_rel.iter().enumerate() {
                    let w = ef[(i, r)];
                    if w != 0.0 {
                        for (m, &x) in msg.iter_mut().zip(p.row(u)) {
                            *m += c * w * x;
                        }
                    }
                }
            }
            let dst = pre.row_mut(v);
            for (o, &m) in dst.iter_mut().zip(&msg) {
                *o += m;
            }
        }
        pre.add_row_broadcast(self.b.value.row(0));
        let mut post = pre.clone();
        self.act.forward_inplace(&mut post);
        (post.clone(), RgcnCache { h_in: h.clone(), edge_coef, self_coef, pre, post })
    }

    /// Batch backward; accumulates parameter grads, returns `dH`.
    pub fn backward(
        &mut self,
        edges: &[SubEdge],
        edge_feats: Option<&Matrix>,
        cache: &RgcnCache,
        grad_out: &Matrix,
    ) -> Matrix {
        let n = cache.h_in.rows();
        let mut d_pre = grad_out.clone();
        self.act.backward_inplace(&mut d_pre, &cache.pre, &cache.post);
        self.b.accumulate(&Matrix::from_vec(1, d_pre.cols(), d_pre.col_sums()));
        // dP accumulation per projection.
        let mut d_p_base = Matrix::zeros(n, self.out_dim());
        let mut d_p_rel: Vec<Matrix> = (0..self.n_edge_feats()).map(|_| Matrix::zeros(n, self.out_dim())).collect();
        for v in 0..n {
            let c = cache.self_coef[v];
            let src = d_pre.row(v);
            let dst = d_p_base.row_mut(v);
            for (o, &g) in dst.iter_mut().zip(src) {
                *o += c * g;
            }
        }
        for (i, e) in edges.iter().enumerate() {
            let c = cache.edge_coef[i];
            let (u, v) = (e.src as usize, e.dst as usize);
            let g_row: Vec<f32> = d_pre.row(v).iter().map(|&g| c * g).collect();
            let dst = d_p_base.row_mut(u);
            for (o, &g) in dst.iter_mut().zip(&g_row) {
                *o += g;
            }
            if let Some(ef) = edge_feats {
                for (r, dp) in d_p_rel.iter_mut().enumerate() {
                    let w = ef[(i, r)];
                    if w != 0.0 {
                        let dst = dp.row_mut(u);
                        for (o, &g) in dst.iter_mut().zip(&g_row) {
                            *o += w * g;
                        }
                    }
                }
            }
        }
        // dW = Hᵀ dP ; dH = Σ dP Wᵀ.
        self.w_base.accumulate(&cache.h_in.t_matmul(&d_p_base));
        let mut dh = d_p_base.matmul_t(&self.w_base.value);
        for (w, dp) in self.w_rel.iter_mut().zip(&d_p_rel) {
            w.accumulate(&cache.h_in.t_matmul(dp));
            dh.add_assign(&dp.matmul_t(&w.value));
        }
        dh
    }

    pub fn params(&self) -> Vec<&Param> {
        let mut out = vec![&self.w_base, &self.b];
        out.extend(self.w_rel.iter());
        out
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = vec![&mut self.w_base, &mut self.b];
        out.extend(self.w_rel.iter_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::seeded_rng;

    fn fixture() -> (Vec<SubEdge>, Matrix, Matrix, RelationalGcnLayer) {
        // 4 nodes, 2 relation channels (one-hot in edge features).
        let edges = vec![
            SubEdge { src: 1, dst: 0, weight: 1.0 },
            SubEdge { src: 2, dst: 0, weight: 2.0 },
            SubEdge { src: 3, dst: 1, weight: 1.0 },
        ];
        let ef = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let h = Matrix::from_vec(4, 3, (0..12).map(|i| ((i % 5) as f32) * 0.3 - 0.5).collect());
        let layer = RelationalGcnLayer::new(3, 2, 2, Activation::Sigmoid, "rgcn0", &mut seeded_rng(71));
        (edges, ef, h, layer)
    }

    #[test]
    fn degenerates_to_gcn_without_edge_features() {
        // With no edge features, the layer equals a GCN layer built from the
        // same base weights and bias.
        use crate::gcn::GcnLayer;
        use crate::layer::{prepare_adj, AdjPrep};
        use agl_tensor::{Coo, ExecCtx};
        let (edges, _, h, layer) = fixture();
        let (out, _) = layer.forward(4, &edges, None, &h);

        let mut gcn = GcnLayer::new(3, 2, Activation::Sigmoid, "g", &mut seeded_rng(9));
        // Copy base weights into the GCN layer.
        let flat: Vec<f32> = layer.w_base.value.as_slice().iter().chain(layer.b.value.as_slice()).copied().collect();
        crate::param::load_values(gcn.params_mut().into_iter(), &flat);
        let mut coo = Coo::new(4, 4);
        for e in &edges {
            coo.push(e.dst, e.src, e.weight);
        }
        let adj = prepare_adj(&coo.into_csr(), AdjPrep::MeanWithSelfLoops);
        let (gcn_out, _) = gcn.forward(&adj, &h, &ExecCtx::sequential());
        assert!(out.max_abs_diff(&gcn_out) < 1e-5);
    }

    #[test]
    fn edge_features_change_the_output() {
        let (edges, ef, h, layer) = fixture();
        let (plain, _) = layer.forward(4, &edges, None, &h);
        let (typed, _) = layer.forward(4, &edges, Some(&ef), &h);
        assert!(plain.max_abs_diff(&typed) > 1e-4, "relation channels must matter");
    }

    #[test]
    fn gradcheck_against_finite_differences() {
        let (edges, ef, h, mut layer) = fixture();
        // Objective: weighted sum of outputs.
        let weights = Matrix::from_vec(4, 2, (0..8).map(|i| ((i % 3) as f32) - 1.0).collect());
        let objective = |layer: &RelationalGcnLayer| -> f64 {
            let (out, _) = layer.forward(4, &edges, Some(&ef), &h);
            out.as_slice().iter().zip(weights.as_slice()).map(|(&o, &w)| (o * w) as f64).sum()
        };
        // Analytic.
        let (_, cache) = layer.forward(4, &edges, Some(&ef), &h);
        layer.params_mut().into_iter().for_each(Param::zero_grad);
        layer.backward(&edges, Some(&ef), &cache, &weights);
        let analytic = crate::param::flatten_grads(layer.params().into_iter());
        // Finite differences.
        let base = crate::param::flatten_values(layer.params().into_iter());
        let eps = 1e-2f32;
        for i in 0..base.len() {
            let mut hi = base.clone();
            hi[i] += eps;
            crate::param::load_values(layer.params_mut().into_iter(), &hi);
            let f_hi = objective(&layer);
            let mut lo = base.clone();
            lo[i] -= eps;
            crate::param::load_values(layer.params_mut().into_iter(), &lo);
            let f_lo = objective(&layer);
            let fd = (f_hi - f_lo) / (2.0 * eps as f64);
            let a = analytic[i] as f64;
            assert!((a - fd).abs() / (1.0 + a.abs().max(fd.abs())) < 5e-3, "param {i}: analytic {a:.6} vs fd {fd:.6}");
        }
        crate::param::load_values(layer.params_mut().into_iter(), &base);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let (edges, ef, h, mut layer) = fixture();
        let weights = Matrix::from_vec(4, 2, (0..8).map(|i| ((i % 4) as f32) * 0.5 - 0.75).collect());
        let (_, cache) = layer.forward(4, &edges, Some(&ef), &h);
        let dh = layer.backward(&edges, Some(&ef), &cache, &weights);
        let eps = 1e-2f32;
        for r in 0..4 {
            for c in 0..3 {
                let mut hi = h.clone();
                hi[(r, c)] += eps;
                let (o_hi, _) = layer.forward(4, &edges, Some(&ef), &hi);
                let mut lo = h.clone();
                lo[(r, c)] -= eps;
                let (o_lo, _) = layer.forward(4, &edges, Some(&ef), &lo);
                let f_hi: f64 = o_hi.as_slice().iter().zip(weights.as_slice()).map(|(&o, &w)| (o * w) as f64).sum();
                let f_lo: f64 = o_lo.as_slice().iter().zip(weights.as_slice()).map(|(&o, &w)| (o * w) as f64).sum();
                let fd = (f_hi - f_lo) / (2.0 * eps as f64);
                let a = dh[(r, c)] as f64;
                assert!((a - fd).abs() < 1e-3, "h[{r},{c}]: {a} vs {fd}");
            }
        }
    }

    #[test]
    fn learns_relation_dependent_task() {
        use crate::optim::{Adam, Optimizer};
        // Target for node 0 depends on WHICH relation the message used:
        // relation 0 contributes +, relation 1 contributes −. Only the
        // relation weights can express this.
        let (edges, ef, h, mut layer) = fixture();
        let target = Matrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5], &[0.5, 0.5], &[0.5, 0.5]]);
        let mut opt = Adam::new(0.05);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let (out, cache) = layer.forward(4, &edges, Some(&ef), &h);
            let mut grad = out.clone();
            grad.sub_assign(&target);
            let loss: f32 = grad.as_slice().iter().map(|g| g * g).sum();
            grad.scale(2.0);
            layer.params_mut().into_iter().for_each(Param::zero_grad);
            layer.backward(&edges, Some(&ef), &cache, &grad);
            let mut p = crate::param::flatten_values(layer.params().into_iter());
            let g = crate::param::flatten_grads(layer.params().into_iter());
            opt.step(&mut p, &g);
            crate::param::load_values(layer.params_mut().into_iter(), &p);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.2, "{first:?} -> {last}");
    }
}
