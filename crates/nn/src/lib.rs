//! `agl-nn` — GNN layers, losses and optimizers with hand-derived backprop.
//!
//! AGL trains three widely-used GNNs (§4.1.2): **GCN**, **GraphSAGE** and
//! **GAT**. Every layer here follows the message-passing paradigm of
//! Equation 1: the embedding of node `v` at layer `k+1` is a function of
//! `v`'s own embedding and the embeddings of its in-edge neighbors `N+(v)`.
//!
//! Design points:
//!
//! * **Closed layer set, no autograd.** Each layer implements an explicit
//!   `forward` (returning a cache) and `backward` (consuming it). Gradients
//!   are validated against central finite differences in
//!   `tests/gradcheck.rs`.
//! * **Two execution forms per layer.** The *batch* form works on a
//!   destination-sorted sparse adjacency (what GraphTrainer vectorizes,
//!   §3.3.1); the *per-node* form computes one node's output from its own
//!   embedding plus its in-edge neighbor embeddings — exactly the merge
//!   step a GraphInfer reducer performs (§3.4). The two forms are tested to
//!   agree to floating-point roundoff, which is what makes MapReduce
//!   inference equivalent to training-time forward passes.
//! * **Aggregation normalisation is row-stochastic** (`D_in^{-1} A`, with
//!   self-loops for GCN): unlike the symmetric `D^{-1/2} A D^{-1/2}`, it is
//!   computable from information local to the destination node, which both
//!   the k-hop neighborhood and the GraphInfer reducer possess.
//! * **Hierarchical model segmentation** (§3.4): [`model::GnnModel::segment`]
//!   splits a trained K-layer model into K layer slices plus a prediction
//!   slice.

pub mod dense;
pub mod gat;
pub mod gcn;
pub mod geniepath;
pub mod gin;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod param;
pub mod rgcn;
pub mod sage;
pub mod serialize;

pub use dense::DenseLayer;
pub use gat::{GatLayer, HeadCombine};
pub use gcn::GcnLayer;
pub use geniepath::GeniePathLayer;
pub use gin::GinLayer;
pub use layer::{AdjPrep, CombineKind, GnnLayer, LayerCache, NeighborAggregate, NeighborView};
pub use loss::Loss;
pub use model::{GnnModel, ModelConfig, ModelKind, ModelSlice};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::Param;
pub use rgcn::RelationalGcnLayer;
pub use serialize::{model_from_bytes, model_to_bytes};
