//! Loss functions — forward value plus the gradient w.r.t. the logits.
//!
//! Three tasks appear in the paper's evaluation (§4.1): multi-class node
//! classification (Cora, softmax cross-entropy over 7 classes), multi-label
//! classification (PPI, 121 independent sigmoids), and binary classification
//! (UUG, single sigmoid, evaluated by AUC).

use agl_tensor::ops::{sigmoid, softmax_rows};
use agl_tensor::Matrix;

/// Which loss a model trains with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax + cross-entropy. Labels are one-hot rows.
    SoftmaxCrossEntropy,
    /// Independent sigmoid + binary cross-entropy per output. Labels are
    /// multi-hot rows (also covers the binary case with one column).
    BceWithLogits,
}

impl Loss {
    /// Mean loss over the batch and the gradient w.r.t. `logits`.
    /// `labels` has the same shape as `logits`.
    pub fn forward_backward(self, logits: &Matrix, labels: &Matrix) -> (f32, Matrix) {
        assert_eq!(logits.shape(), labels.shape(), "logits/labels shape mismatch");
        let n = logits.rows().max(1) as f32;
        match self {
            Loss::SoftmaxCrossEntropy => {
                let probs = softmax_rows(logits);
                let mut loss = 0.0f64;
                for (p_row, y_row) in probs.rows_iter().zip(labels.rows_iter()) {
                    for (&p, &y) in p_row.iter().zip(y_row) {
                        if y > 0.0 {
                            loss -= (y as f64) * (p.max(1e-12) as f64).ln();
                        }
                    }
                }
                let mut grad = probs;
                grad.sub_assign(labels);
                grad.scale(1.0 / n);
                ((loss / n as f64) as f32, grad)
            }
            Loss::BceWithLogits => {
                // Stable form: max(z,0) - z*y + ln(1 + e^{-|z|}).
                let scale = 1.0 / (logits.len().max(1) as f32);
                let mut loss = 0.0f64;
                let mut grad = Matrix::zeros(logits.rows(), logits.cols());
                for i in 0..logits.rows() {
                    let (z_row, y_row) = (logits.row(i), labels.row(i));
                    let g_row = grad.row_mut(i);
                    for ((&z, &y), g) in z_row.iter().zip(y_row).zip(g_row) {
                        loss += (z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln()) as f64;
                        *g = (sigmoid(z) - y) * scale;
                    }
                }
                ((loss * scale as f64) as f32, grad)
            }
        }
    }

    /// Convert logits to the probabilities this loss implies (softmax rows
    /// or elementwise sigmoid) — used at inference time.
    pub fn probabilities(self, logits: &Matrix) -> Matrix {
        match self {
            Loss::SoftmaxCrossEntropy => softmax_rows(logits),
            Loss::BceWithLogits => logits.map(sigmoid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_ce_perfect_prediction_is_near_zero() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0, 0.0], &[0.0, 20.0, 0.0]]);
        let labels = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let (loss, grad) = Loss::SoftmaxCrossEntropy.forward_backward(&logits, &labels);
        assert!(loss < 1e-3, "loss {loss}");
        assert!(grad.frobenius_norm() < 1e-3);
    }

    #[test]
    fn softmax_ce_uniform_logits_loss_is_log_c() {
        let logits = Matrix::zeros(4, 7);
        let mut labels = Matrix::zeros(4, 7);
        for r in 0..4 {
            labels[(r, r % 7)] = 1.0;
        }
        let (loss, _) = Loss::SoftmaxCrossEntropy.forward_backward(&logits, &labels);
        assert!((loss - (7f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn bce_gradient_sign_points_toward_label() {
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let labels = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (_, grad) = Loss::BceWithLogits.forward_backward(&logits, &labels);
        assert!(grad[(0, 0)] < 0.0, "push logit up toward positive label");
        assert!(grad[(0, 1)] > 0.0, "push logit down away from negative label");
    }

    #[test]
    fn bce_extreme_logits_stay_finite() {
        let logits = Matrix::from_rows(&[&[60.0, -60.0]]);
        let labels = Matrix::from_rows(&[&[0.0, 1.0]]);
        let (loss, grad) = Loss::BceWithLogits.forward_backward(&logits, &labels);
        assert!(loss.is_finite() && loss > 0.0);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    /// Finite-difference check of both losses.
    #[test]
    fn loss_gradients_match_finite_difference() {
        let eps = 1e-3f32;
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.1], &[-0.2, 0.4, 0.0]]);
        for (loss_kind, labels) in [
            (Loss::SoftmaxCrossEntropy, Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0]])),
            (Loss::BceWithLogits, Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]])),
        ] {
            let (_, grad) = loss_kind.forward_backward(&logits, &labels);
            for r in 0..2 {
                for c in 0..3 {
                    let mut hi = logits.clone();
                    hi[(r, c)] += eps;
                    let mut lo = logits.clone();
                    lo[(r, c)] -= eps;
                    let (lh, _) = loss_kind.forward_backward(&hi, &labels);
                    let (ll, _) = loss_kind.forward_backward(&lo, &labels);
                    let fd = (lh - ll) / (2.0 * eps);
                    assert!(
                        (grad[(r, c)] - fd).abs() < 2e-3,
                        "{loss_kind:?} ({r},{c}): analytic {} vs fd {fd}",
                        grad[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn probabilities_shapes_and_ranges() {
        let logits = Matrix::from_rows(&[&[2.0, -1.0]]);
        let p1 = Loss::SoftmaxCrossEntropy.probabilities(&logits);
        assert!((p1.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        let p2 = Loss::BceWithLogits.probabilities(&logits);
        assert!(p2.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
