//! The K-layer GNN model container: stacked GNN layers plus a dense
//! prediction head, mirroring the demo API of paper §3.5 (multi-layer loop +
//! `look_up(node_embedding, targetID)` + prediction model).

use crate::dense::{DenseCache, DenseLayer};
use crate::gat::{GatLayer, HeadCombine};
use crate::gcn::GcnLayer;
use crate::geniepath::GeniePathLayer;
use crate::gin::GinLayer;
use crate::layer::{prepare_adj, GnnLayer, LayerCache};
use crate::loss::Loss;
use crate::param::{self, Param};
use crate::sage::SageLayer;
use agl_tensor::ops::{dropout_mask, Activation};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, Csr, ExecCtx, Matrix};

/// Which GNN architecture the model stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    Gcn,
    Sage,
    Gat {
        heads: usize,
    },
    /// Extension beyond the paper: GIN (sum aggregation + MLP update).
    Gin,
    /// Extension beyond the paper: GeniePath (Ant's adaptive receptive
    /// paths — attention breadth + LSTM-gated depth; the paper's reference 12).
    GeniePath,
}

impl ModelKind {
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Sage => "GraphSAGE",
            ModelKind::Gat { .. } => "GAT",
            ModelKind::Gin => "GIN",
            ModelKind::GeniePath => "GeniePath",
        }
    }
}

/// Model hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    pub kind: ModelKind,
    /// Raw node feature width `f_n`.
    pub in_dim: usize,
    /// Embedding width of the hidden/final GNN layers.
    pub hidden_dim: usize,
    /// Prediction width (number of classes / labels / 1 for binary).
    pub out_dim: usize,
    /// K — number of GNN layers (= hops of neighborhood consumed).
    pub n_layers: usize,
    /// Activation of the hidden GNN layers.
    pub hidden_act: Activation,
    /// Input dropout probability per layer (training only).
    pub dropout: f32,
    pub loss: Loss,
    /// Seed for parameter initialisation.
    pub seed: u64,
}

impl ModelConfig {
    /// A reasonable 2-layer default for the given shape.
    pub fn new(kind: ModelKind, in_dim: usize, hidden_dim: usize, out_dim: usize, n_layers: usize, loss: Loss) -> Self {
        let hidden_act = match kind {
            ModelKind::Gat { .. } => Activation::Elu,
            _ => Activation::Relu,
        };
        Self { kind, in_dim, hidden_dim, out_dim, n_layers, hidden_act, dropout: 0.0, loss, seed: 42 }
    }

    pub fn with_dropout(mut self, p: f32) -> Self {
        self.dropout = p;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of one forward pass — holds everything `backward` needs.
pub struct ForwardPass {
    caches: Vec<LayerCache>,
    head_cache: DenseCache,
    dropout_masks: Vec<Option<Matrix>>,
    targets: Vec<usize>,
    n_nodes: usize,
    /// Final-layer embeddings of the target nodes.
    pub target_embeddings: Matrix,
    /// Prediction logits for the target nodes.
    pub logits: Matrix,
}

/// One slice of a hierarchically-segmented model (§3.4): the k-th GNN layer
/// or the final prediction model.
#[derive(Debug, Clone)]
pub enum ModelSlice {
    Gnn(GnnLayer),
    Prediction(DenseLayer, Loss),
}

/// The trainable model.
#[derive(Debug, Clone)]
pub struct GnnModel {
    cfg: ModelConfig,
    layers: Vec<GnnLayer>,
    head: DenseLayer,
}

impl GnnModel {
    /// Build with Xavier init, deterministic in `cfg.seed`.
    pub fn new(cfg: ModelConfig) -> Self {
        assert!(cfg.n_layers >= 1, "need at least one GNN layer");
        let mut rng = seeded_rng(cfg.seed);
        let mut layers = Vec::with_capacity(cfg.n_layers);
        let mut dim = cfg.in_dim;
        for k in 0..cfg.n_layers {
            let name = format!("layer{k}");
            let is_last = k + 1 == cfg.n_layers;
            let layer = match cfg.kind {
                ModelKind::Gcn => GnnLayer::Gcn(GcnLayer::new(dim, cfg.hidden_dim, cfg.hidden_act, &name, &mut rng)),
                ModelKind::Sage => GnnLayer::Sage(SageLayer::new(dim, cfg.hidden_dim, cfg.hidden_act, &name, &mut rng)),
                ModelKind::Gin => GnnLayer::Gin(GinLayer::new(dim, cfg.hidden_dim, cfg.hidden_act, &name, &mut rng)),
                ModelKind::GeniePath => GnnLayer::GeniePath(GeniePathLayer::new(dim, cfg.hidden_dim, &name, &mut rng)),
                ModelKind::Gat { heads } => {
                    // Hidden layers concat their heads; the final GNN layer
                    // averages them so the head sees `hidden_dim` features —
                    // the reference GAT recipe.
                    let combine = if is_last { HeadCombine::Average } else { HeadCombine::Concat };
                    GnnLayer::Gat(GatLayer::new(dim, cfg.hidden_dim, heads, combine, cfg.hidden_act, &name, &mut rng))
                }
            };
            dim = layer.out_dim();
            layers.push(layer);
        }
        let head = DenseLayer::new(dim, cfg.out_dim, Activation::Linear, "head", &mut rng);
        Self { cfg, layers, head }
    }

    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    pub fn layers(&self) -> &[GnnLayer] {
        &self.layers
    }

    pub fn head(&self) -> &DenseLayer {
        &self.head
    }

    /// Prepare the per-layer adjacency list for a batch: apply this model's
    /// adjacency preprocessing once, then (optionally) the per-layer pruning
    /// row masks (`keep[k][dst]` — §3.3.2 graph pruning).
    pub fn prepare_adjs(&self, raw: &Csr, prune_keep: Option<&[Vec<bool>]>) -> Vec<Csr> {
        let prep = self.layers[0].adj_prep();
        debug_assert!(self.layers.iter().all(|l| l.adj_prep() == prep), "homogeneous stacks only");
        let prepared = prepare_adj(raw, prep);
        (0..self.layers.len())
            .map(|k| match prune_keep {
                Some(keep) => prepared.filter_entries(|dst, _| keep[k][dst as usize]),
                None => prepared.clone(),
            })
            .collect()
    }

    /// Forward over a vectorized batch.
    ///
    /// * `adjs` — per-layer prepared (and possibly pruned) adjacency, from
    ///   [`GnnModel::prepare_adjs`].
    /// * `features` — `n × in_dim` node features of the merged subgraph.
    /// * `targets` — local indices whose logits are wanted.
    /// * `train` — enables dropout (driven by `rng`).
    pub fn forward(
        &self,
        adjs: &[Csr],
        features: &Matrix,
        targets: &[usize],
        train: bool,
        ctx: &ExecCtx,
        rng: &mut impl Rng,
    ) -> ForwardPass {
        assert_eq!(adjs.len(), self.layers.len(), "one adjacency per layer");
        assert_eq!(features.cols(), self.cfg.in_dim, "feature width mismatch");
        let mut h = features.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut dropout_masks = Vec::with_capacity(self.layers.len());
        for (k, layer) in self.layers.iter().enumerate() {
            let mask = if train && self.cfg.dropout > 0.0 {
                let m = dropout_mask(h.rows(), h.cols(), self.cfg.dropout, rng);
                h = h.hadamard(&m);
                Some(m)
            } else {
                None
            };
            dropout_masks.push(mask);
            let (out, cache) = layer.forward(&adjs[k], &h, ctx);
            caches.push(cache);
            h = out;
        }
        let target_embeddings = h.gather_rows(targets);
        let (logits, head_cache) = self.head.forward(&target_embeddings);
        ForwardPass {
            caches,
            head_cache,
            dropout_masks,
            targets: targets.to_vec(),
            n_nodes: features.rows(),
            target_embeddings,
            logits,
        }
    }

    /// Backward from the loss gradient w.r.t. the logits; accumulates into
    /// every parameter's `.grad`.
    pub fn backward(&mut self, adjs: &[Csr], pass: &ForwardPass, grad_logits: &Matrix, ctx: &ExecCtx) {
        let d_emb = self.head.backward(&pass.head_cache, grad_logits);
        let emb_dim = d_emb.cols();
        let mut d_h = Matrix::zeros(pass.n_nodes, emb_dim);
        d_h.scatter_add_rows(&pass.targets, &d_emb);
        for k in (0..self.layers.len()).rev() {
            d_h = self.layers[k].backward(&adjs[k], &pass.caches[k], &d_h, ctx);
            if let Some(mask) = &pass.dropout_masks[k] {
                d_h = d_h.hadamard(mask);
            }
        }
    }

    /// All parameters in a stable order (layers bottom-up, then head).
    pub fn params(&self) -> Vec<&Param> {
        let mut out: Vec<&Param> = self.layers.iter().flat_map(|l| l.params()).collect();
        out.extend(self.head.params());
        out
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = self.layers.iter_mut().flat_map(|l| l.params_mut()).collect();
        out.extend(self.head.params_mut());
        out
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Flatten parameter values (pull side of the PS protocol).
    pub fn param_vector(&self) -> Vec<f32> {
        param::flatten_values(self.params().into_iter())
    }

    /// Flatten accumulated gradients (push side of the PS protocol).
    pub fn grad_vector(&self) -> Vec<f32> {
        param::flatten_grads(self.params().into_iter())
    }

    /// Load a flat parameter vector (after a PS pull).
    pub fn load_param_vector(&mut self, flat: &[f32]) {
        param::load_values(self.params_mut().into_iter(), flat);
    }

    /// Zero all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Hierarchical model segmentation (§3.4): split the trained model into
    /// K layer slices plus the prediction slice — the units a GraphInfer
    /// Reduce round loads.
    pub fn segment(&self) -> Vec<ModelSlice> {
        let mut slices: Vec<ModelSlice> = self.layers.iter().cloned().map(ModelSlice::Gnn).collect();
        slices.push(ModelSlice::Prediction(self.head.clone(), self.cfg.loss));
        slices
    }

    /// Convenience: loss forward/backward for this model's configured loss.
    pub fn loss(&self, logits: &Matrix, labels: &Matrix) -> (f32, Matrix) {
        self.cfg.loss.forward_backward(logits, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::Coo;

    fn ring_adj(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for v in 0..n as u32 {
            coo.push(v, (v + 1) % n as u32, 1.0);
        }
        coo.into_csr()
    }

    fn cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig::new(kind, 4, 6, 3, 2, Loss::SoftmaxCrossEntropy)
    }

    fn features(n: usize) -> Matrix {
        Matrix::from_vec(n, 4, (0..n * 4).map(|i| ((i % 11) as f32) * 0.1 - 0.5).collect())
    }

    #[test]
    fn forward_shapes_for_all_kinds() {
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat { heads: 2 }, ModelKind::Gin, ModelKind::GeniePath]
        {
            let model = GnnModel::new(cfg(kind));
            let raw = ring_adj(6);
            let adjs = model.prepare_adjs(&raw, None);
            let ctx = ExecCtx::sequential();
            let pass = model.forward(&adjs, &features(6), &[0, 3], false, &ctx, &mut seeded_rng(1));
            assert_eq!(pass.logits.shape(), (2, 3), "{kind:?}");
            // GeniePath packs (h, C), doubling the embedding width.
            let emb_dim = model.layers().last().unwrap().out_dim();
            assert_eq!(pass.target_embeddings.shape(), (2, emb_dim), "{kind:?}");
        }
    }

    #[test]
    fn training_step_reduces_loss() {
        // A few Adam steps on a fixed batch must reduce the loss for every
        // architecture — end-to-end sanity of forward+backward+optimizer.
        use crate::optim::{Adam, Optimizer};
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat { heads: 2 }, ModelKind::Gin, ModelKind::GeniePath]
        {
            let mut model = GnnModel::new(cfg(kind));
            let raw = ring_adj(6);
            let adjs = model.prepare_adjs(&raw, None);
            let ctx = ExecCtx::sequential();
            let x = features(6);
            let targets = [0usize, 2, 4];
            let mut labels = Matrix::zeros(3, 3);
            for (i, _) in targets.iter().enumerate() {
                labels[(i, i % 3)] = 1.0;
            }
            let mut opt = Adam::new(0.05);
            let mut rng = seeded_rng(2);
            let mut first = None;
            let mut last = 0.0;
            for _ in 0..15 {
                model.zero_grads();
                let pass = model.forward(&adjs, &x, &targets, true, &ctx, &mut rng);
                let (loss, grad) = model.loss(&pass.logits, &labels);
                model.backward(&adjs, &pass, &grad, &ctx);
                let mut p = model.param_vector();
                opt.step(&mut p, &model.grad_vector());
                model.load_param_vector(&p);
                first.get_or_insert(loss);
                last = loss;
            }
            assert!(last < first.unwrap() * 0.8, "{kind:?}: {first:?} -> {last}");
        }
    }

    #[test]
    fn param_vector_roundtrip() {
        let mut model = GnnModel::new(cfg(ModelKind::Sage));
        let v = model.param_vector();
        assert_eq!(v.len(), model.param_count());
        let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
        model.load_param_vector(&doubled);
        let back = model.param_vector();
        assert_eq!(back, doubled);
    }

    #[test]
    fn same_seed_same_model() {
        let a = GnnModel::new(cfg(ModelKind::Gat { heads: 2 }));
        let b = GnnModel::new(cfg(ModelKind::Gat { heads: 2 }));
        assert_eq!(a.param_vector(), b.param_vector());
        let c = GnnModel::new(cfg(ModelKind::Gat { heads: 2 }).with_seed(7));
        assert_ne!(a.param_vector(), c.param_vector());
    }

    #[test]
    fn segment_yields_k_plus_one_slices() {
        let model = GnnModel::new(cfg(ModelKind::Gcn));
        let slices = model.segment();
        assert_eq!(slices.len(), 3, "K=2 layers + prediction slice");
        assert!(matches!(slices[2], ModelSlice::Prediction(..)));
    }

    #[test]
    fn gat_dims_concat_then_average() {
        let model = GnnModel::new(ModelConfig::new(ModelKind::Gat { heads: 4 }, 4, 8, 2, 3, Loss::BceWithLogits));
        assert_eq!(model.layers()[0].out_dim(), 32, "hidden layer concats 4 heads × 8");
        assert_eq!(model.layers()[1].out_dim(), 32);
        assert_eq!(model.layers()[2].out_dim(), 8, "final GNN layer averages heads");
        assert_eq!(model.head().in_dim(), 8);
    }

    #[test]
    fn dropout_only_in_training_mode() {
        let model = GnnModel::new(cfg(ModelKind::Gcn).with_dropout(0.5));
        let raw = ring_adj(6);
        let adjs = model.prepare_adjs(&raw, None);
        let ctx = ExecCtx::sequential();
        let x = features(6);
        let e1 = model.forward(&adjs, &x, &[0], false, &ctx, &mut seeded_rng(1)).logits;
        let e2 = model.forward(&adjs, &x, &[0], false, &ctx, &mut seeded_rng(99)).logits;
        assert_eq!(e1.max_abs_diff(&e2), 0.0, "eval mode is deterministic");
        let t1 = model.forward(&adjs, &x, &[0], true, &ctx, &mut seeded_rng(1)).logits;
        let t2 = model.forward(&adjs, &x, &[0], true, &ctx, &mut seeded_rng(99)).logits;
        assert!(t1.max_abs_diff(&t2) > 0.0, "dropout differs across rng seeds");
    }

    #[test]
    fn pruned_rows_do_not_change_target_logits() {
        // Pruning drops rows that cannot reach the targets within the
        // remaining layers; target logits must be unchanged.
        let model = GnnModel::new(cfg(ModelKind::Gcn));
        let raw = ring_adj(8);
        let ctx = ExecCtx::sequential();
        let x = features(8);
        let full = model.prepare_adjs(&raw, None);
        // Distance from target 0 along in-edges: node (0+i)%8 at distance i.
        // keep[k][v] ⟺ d(v) ≤ K-1-k with K=2.
        let keep: Vec<Vec<bool>> = (0..2).map(|k| (0..8).map(|v| v <= (1 - k)).collect()).collect();
        let pruned = model.prepare_adjs(&raw, Some(&keep));
        assert!(pruned[1].nnz() < full[1].nnz());
        let a = model.forward(&full, &x, &[0], false, &ctx, &mut seeded_rng(1)).logits;
        let b = model.forward(&pruned, &x, &[0], false, &ctx, &mut seeded_rng(1)).logits;
        assert!(a.max_abs_diff(&b) < 1e-5, "pruning must preserve target logits");
    }
}
