//! Fully-connected layer — the prediction model on top of the final node
//! embeddings (GraphInfer's `(K+1)`-th slice, §3.4).

use crate::param::Param;
use agl_tensor::ops::Activation;
use agl_tensor::rng::Rng;
use agl_tensor::{init, Matrix};

/// `out = act(H W + b)`.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    w: Param,
    b: Param,
    act: Activation,
}

/// Forward cache.
#[derive(Debug)]
pub struct DenseCache {
    h_in: Matrix,
    pre: Matrix,
    post: Matrix,
}

impl DenseLayer {
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, name: &str, rng: &mut impl Rng) -> Self {
        Self {
            w: Param::new(format!("{name}.w"), init::xavier_uniform(in_dim, out_dim, rng)),
            b: Param::new(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    pub fn activation(&self) -> Activation {
        self.act
    }

    pub fn forward(&self, h: &Matrix) -> (Matrix, DenseCache) {
        let mut pre = h.matmul(&self.w.value);
        pre.add_row_broadcast(self.b.value.row(0));
        let mut post = pre.clone();
        self.act.forward_inplace(&mut post);
        (post.clone(), DenseCache { h_in: h.clone(), pre, post })
    }

    pub fn backward(&mut self, cache: &DenseCache, grad_out: &Matrix) -> Matrix {
        let mut d_pre = grad_out.clone();
        self.act.backward_inplace(&mut d_pre, &cache.pre, &cache.post);
        self.b.accumulate(&Matrix::from_vec(1, d_pre.cols(), d_pre.col_sums()));
        self.w.accumulate(&cache.h_in.t_matmul(&d_pre));
        d_pre.matmul_t(&self.w.value)
    }

    /// Single-row forward for the final GraphInfer Reduce round.
    pub fn forward_row(&self, h: &[f32]) -> Vec<f32> {
        let mut out = self.b.value.row(0).to_vec();
        for (k, &x) in h.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            for (o, &wv) in out.iter_mut().zip(self.w.value.row(k)) {
                *o += x * wv;
            }
        }
        let mut m = Matrix::from_vec(1, out.len(), out);
        self.act.forward_inplace(&mut m);
        m.into_vec()
    }

    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::seeded_rng;

    #[test]
    fn forward_row_matches_batch() {
        let layer = DenseLayer::new(3, 2, Activation::Linear, "head", &mut seeded_rng(5));
        let h = Matrix::from_rows(&[&[0.1, -0.2, 0.3], &[1.0, 0.0, -1.0]]);
        let (out, _) = layer.forward(&h);
        for r in 0..2 {
            let row = layer.forward_row(h.row(r));
            for (a, b) in row.iter().zip(out.row(r)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn backward_shapes() {
        let mut layer = DenseLayer::new(3, 2, Activation::Relu, "head", &mut seeded_rng(6));
        let h = Matrix::from_rows(&[&[0.5, 0.5, 0.5]]);
        let (out, cache) = layer.forward(&h);
        let dh = layer.backward(&cache, &Matrix::full(out.rows(), out.cols(), 1.0));
        assert_eq!(dh.shape(), (1, 3));
    }
}
