//! GraphSAGE layer, mean aggregator with the **add** combine.
//!
//! The paper notes (§4.2.1) that AGL/DGL/PyG all use an *add* operator where
//! the original GraphSAGE used *concat* when combining the self embedding
//! with the aggregated neighborhood — we follow the systems, not the
//! original paper, exactly as AGL does:
//!
//! Forward: `H' = act( H W_self + (Ā H) W_neigh + b )` with `Ā = D^{-1}A`
//! (row-stochastic mean over in-edge neighbors, no self-loop — the self
//! embedding has its own projection).
//!
//! Backward:
//! ```text
//! dPre     = dOut ∘ act'          db      = 1ᵀ dPre
//! dW_self  = Hᵀ dPre              dW_neigh = (ĀH)ᵀ dPre
//! dH       = dPre W_selfᵀ + Āᵀ (dPre W_neighᵀ)
//! ```

use crate::layer::{NeighborAggregate, NeighborView};
use crate::param::Param;
use agl_tensor::ops::Activation;
use agl_tensor::rng::Rng;
use agl_tensor::{init, Csr, ExecCtx, Matrix};

/// One GraphSAGE (mean, add-combine) layer.
#[derive(Debug, Clone)]
pub struct SageLayer {
    w_self: Param,
    w_neigh: Param,
    b: Param,
    act: Activation,
}

/// Forward cache.
#[derive(Debug)]
pub struct SageCache {
    h_in: Matrix,
    /// `Ā H` — the mean-aggregated neighbor embeddings.
    m: Matrix,
    pre: Matrix,
    post: Matrix,
}

impl SageLayer {
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, name: &str, rng: &mut impl Rng) -> Self {
        Self {
            w_self: Param::new(format!("{name}.w_self"), init::xavier_uniform(in_dim, out_dim, rng)),
            w_neigh: Param::new(format!("{name}.w_neigh"), init::xavier_uniform(in_dim, out_dim, rng)),
            b: Param::new(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w_self.value.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w_self.value.cols()
    }

    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Batch forward. `adj` must be prepared with
    /// [`crate::layer::AdjPrep::MeanNoSelf`].
    pub fn forward(&self, adj: &Csr, h: &Matrix, ctx: &ExecCtx) -> (Matrix, SageCache) {
        debug_assert_eq!(h.cols(), self.in_dim());
        let m = ctx.spmm(adj, h);
        let mut pre = h.matmul(&self.w_self.value);
        pre.add_assign(&m.matmul(&self.w_neigh.value));
        pre.add_row_broadcast(self.b.value.row(0));
        let mut post = pre.clone();
        self.act.forward_inplace(&mut post);
        (post.clone(), SageCache { h_in: h.clone(), m, pre, post })
    }

    /// Batch backward.
    pub fn backward(&mut self, adj: &Csr, cache: &SageCache, grad_out: &Matrix, _ctx: &ExecCtx) -> Matrix {
        let mut d_pre = grad_out.clone();
        self.act.backward_inplace(&mut d_pre, &cache.pre, &cache.post);
        self.b.accumulate(&Matrix::from_vec(1, d_pre.cols(), d_pre.col_sums()));
        self.w_self.accumulate(&cache.h_in.t_matmul(&d_pre));
        self.w_neigh.accumulate(&cache.m.t_matmul(&d_pre));
        let mut dh = d_pre.matmul_t(&self.w_self.value);
        let dm = d_pre.matmul_t(&self.w_neigh.value);
        dh.add_assign(&adj.t_spmm(&dm));
        dh
    }

    /// Per-node forward (GraphInfer merge step): weighted mean over raw
    /// in-edge neighbors (zero vector when there are none, matching the
    /// empty CSR row in the batch path).
    pub fn forward_node(&self, view: &NeighborView<'_>) -> Vec<f32> {
        let in_dim = self.in_dim();
        let mut m = vec![0.0f32; in_dim];
        let total: f32 = view.weights.iter().sum();
        if total != 0.0 {
            for (h, &w) in view.neighbor_h.iter().zip(view.weights) {
                for (a, &x) in m.iter_mut().zip(h) {
                    *a += w * x;
                }
            }
            let inv = 1.0 / total;
            for a in &mut m {
                *a *= inv;
            }
        }
        self.project_self_and_mean(view.self_h, m)
    }

    /// Per-node forward from a pre-folded [`NeighborAggregate`]
    /// (`acc = Σ w·h`, `total_w = Σ w`): normalise the folded sum into the
    /// neighbor mean (zero when there are no weighted neighbors, matching
    /// the empty CSR row), then the shared projection.
    pub fn forward_node_combined(&self, self_h: &[f32], agg: &NeighborAggregate) -> Vec<f32> {
        debug_assert_eq!(agg.acc.len(), self.in_dim());
        let mut m = vec![0.0f32; self.in_dim()];
        if agg.total_w != 0.0 {
            let inv = 1.0 / agg.total_w;
            for (a, &x) in m.iter_mut().zip(&agg.acc) {
                *a = x * inv;
            }
        }
        self.project_self_and_mean(self_h, m)
    }

    /// `act(self_h @ W_self + m @ W_neigh + b)` — shared projection tail.
    fn project_self_and_mean(&self, self_h: &[f32], m: Vec<f32>) -> Vec<f32> {
        let mut out = self.b.value.row(0).to_vec();
        for (k, &a) in self_h.iter().enumerate() {
            if a != 0.0 {
                for (o, &wv) in out.iter_mut().zip(self.w_self.value.row(k)) {
                    *o += a * wv;
                }
            }
        }
        for (k, &a) in m.iter().enumerate() {
            if a != 0.0 {
                for (o, &wv) in out.iter_mut().zip(self.w_neigh.value.row(k)) {
                    *o += a * wv;
                }
            }
        }
        let mut mm = Matrix::from_vec(1, out.len(), out);
        self.act.forward_inplace(&mut mm);
        mm.into_vec()
    }

    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w_self, &self.w_neigh, &self.b]
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_neigh, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{prepare_adj, AdjPrep};
    use agl_tensor::{seeded_rng, Coo};

    fn fixture() -> (Csr, Csr, Matrix, SageLayer) {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 3, 3.0);
        coo.push(2, 0, 1.0);
        let raw = coo.into_csr();
        let adj = prepare_adj(&raw, AdjPrep::MeanNoSelf);
        let h = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.2 - 1.0).collect());
        let layer = SageLayer::new(3, 2, Activation::Relu, "sage0", &mut seeded_rng(21));
        (raw, adj, h, layer)
    }

    #[test]
    fn forward_shapes_and_isolated_node() {
        let (_, adj, h, layer) = fixture();
        let (out, cache) = layer.forward(&adj, &h, &ExecCtx::sequential());
        assert_eq!(out.shape(), (4, 2));
        // Node 1 has no in-edges: its aggregated m row is zero.
        assert_eq!(cache.m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn node_forward_matches_batch_row() {
        let (raw, adj, h, layer) = fixture();
        let (batch_out, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
        for v in 0..4usize {
            let (srcs, ws) = raw.row(v);
            let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
            let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
            let node_out = layer.forward_node(&view);
            for (a, b) in node_out.iter().zip(batch_out.row(v)) {
                assert!((a - b).abs() < 1e-5, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn combined_forward_matches_node_forward_including_isolated() {
        let (raw, _, h, layer) = fixture();
        for v in 0..4usize {
            let (srcs, ws) = raw.row(v);
            let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
            let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
            let mut agg = NeighborAggregate::empty(3);
            for (nh, &w) in nbr_h.iter().zip(ws) {
                agg.n += 1;
                agg.total_w += w;
                for (a, &x) in agg.acc.iter_mut().zip(nh) {
                    *a += w * x;
                }
            }
            let node = layer.forward_node(&view);
            let combined = layer.forward_node_combined(h.row(v), &agg);
            for (a, b) in node.iter().zip(&combined) {
                assert!((a - b).abs() < 1e-5, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn backward_produces_grads_for_all_params() {
        let (_, adj, h, mut layer) = fixture();
        let ctx = ExecCtx::sequential();
        let (out, cache) = layer.forward(&adj, &h, &ctx);
        let dh = layer.backward(&adj, &cache, &Matrix::full(out.rows(), out.cols(), 0.5), &ctx);
        assert_eq!(dh.shape(), h.shape());
        for p in layer.params() {
            assert!(p.grad.frobenius_norm() > 0.0, "{} has zero grad", p.name);
        }
    }
}
