//! GCN layer (Kipf & Welling), in the destination-local mean form.
//!
//! Forward: `H' = act( Â H W + b )` with `Â = D^{-1}(A + I)` (row-stochastic
//! with self-loops — see the crate docs for why mean normalisation replaces
//! the symmetric normalisation).
//!
//! Backward (hand-derived; `∘` is elementwise):
//! ```text
//! dPre = dOut ∘ act'            db = 1ᵀ dPre
//! dP   = Âᵀ dPre                dW = Hᵀ dP        dH = dP Wᵀ
//! ```

use crate::layer::{NeighborAggregate, NeighborView};
use crate::param::Param;
use agl_tensor::ops::Activation;
use agl_tensor::rng::Rng;
use agl_tensor::{init, Csr, ExecCtx, Matrix};

/// One graph-convolution layer.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    w: Param,
    b: Param,
    act: Activation,
}

/// Forward cache: everything backward needs.
#[derive(Debug)]
pub struct GcnCache {
    h_in: Matrix,
    pre: Matrix,
    post: Matrix,
}

impl GcnLayer {
    /// Xavier-initialised layer, deterministic in `rng`.
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, name: &str, rng: &mut impl Rng) -> Self {
        Self {
            w: Param::new(format!("{name}.w"), init::xavier_uniform(in_dim, out_dim, rng)),
            b: Param::new(format!("{name}.b"), Matrix::zeros(1, out_dim)),
            act,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Batch forward. `adj` must be prepared with
    /// [`crate::layer::AdjPrep::MeanWithSelfLoops`].
    pub fn forward(&self, adj: &Csr, h: &Matrix, ctx: &ExecCtx) -> (Matrix, GcnCache) {
        debug_assert_eq!(h.cols(), self.in_dim());
        let p = h.matmul(&self.w.value);
        let mut pre = ctx.spmm(adj, &p);
        pre.add_row_broadcast(self.b.value.row(0));
        let mut post = pre.clone();
        self.act.forward_inplace(&mut post);
        (post.clone(), GcnCache { h_in: h.clone(), pre, post })
    }

    /// Batch backward; accumulates into `w.grad` / `b.grad`, returns `dH`.
    pub fn backward(&mut self, adj: &Csr, cache: &GcnCache, grad_out: &Matrix, _ctx: &ExecCtx) -> Matrix {
        let mut d_pre = grad_out.clone();
        self.act.backward_inplace(&mut d_pre, &cache.pre, &cache.post);
        let db = Matrix::from_vec(1, d_pre.cols(), d_pre.col_sums());
        self.b.accumulate(&db);
        let d_p = adj.t_spmm(&d_pre);
        self.w.accumulate(&cache.h_in.t_matmul(&d_p));
        d_p.matmul_t(&self.w.value)
    }

    /// Per-node forward from a *raw* neighborhood (GraphInfer merge step):
    /// mean over `{self} ∪ N+` with the raw edge weights and a unit
    /// self-loop, then the dense projection — identical maths to the batch
    /// path.
    pub fn forward_node(&self, view: &NeighborView<'_>) -> Vec<f32> {
        let in_dim = self.in_dim();
        debug_assert_eq!(view.self_h.len(), in_dim);
        let mut agg: Vec<f32> = view.self_h.to_vec(); // self-loop weight 1.0
        let mut total = 1.0f32;
        for (h, &w) in view.neighbor_h.iter().zip(view.weights) {
            debug_assert_eq!(h.len(), in_dim);
            for (a, &x) in agg.iter_mut().zip(h) {
                *a += w * x;
            }
            total += w;
        }
        let inv = 1.0 / total;
        for a in &mut agg {
            *a *= inv;
        }
        self.project_agg(agg)
    }

    /// Per-node forward from a pre-folded [`NeighborAggregate`]
    /// (`acc = Σ w·h`, `total_w = Σ w`): mean with the unit self-loop, then
    /// the same dense projection as [`GcnLayer::forward_node`]. The fold
    /// order lives in the aggregate, so every path that builds aggregates
    /// identically produces bit-identical embeddings.
    pub fn forward_node_combined(&self, self_h: &[f32], agg: &NeighborAggregate) -> Vec<f32> {
        debug_assert_eq!(self_h.len(), self.in_dim());
        debug_assert_eq!(agg.acc.len(), self.in_dim());
        let mut a: Vec<f32> = self_h.iter().zip(&agg.acc).map(|(&s, &x)| s + x).collect();
        let total = 1.0 + agg.total_w;
        let inv = 1.0 / total;
        for v in &mut a {
            *v *= inv;
        }
        self.project_agg(a)
    }

    /// `act(agg @ W + b)` — the shared tail of both per-node forwards.
    fn project_agg(&self, agg: Vec<f32>) -> Vec<f32> {
        let mut out = self.b.value.row(0).to_vec();
        for (k, &a) in agg.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (o, &wv) in out.iter_mut().zip(self.w.value.row(k)) {
                *o += a * wv;
            }
        }
        let mut m = Matrix::from_vec(1, out.len(), out);
        self.act.forward_inplace(&mut m);
        m.into_vec()
    }

    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{prepare_adj, AdjPrep};
    use agl_tensor::{seeded_rng, Coo};

    fn fixture() -> (Csr, Csr, Matrix, GcnLayer) {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 0.5);
        coo.push(1, 3, 2.0);
        coo.push(2, 0, 1.0);
        let raw = coo.into_csr();
        let adj = prepare_adj(&raw, AdjPrep::MeanWithSelfLoops);
        let mut rng = seeded_rng(11);
        let h = Matrix::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.1 - 0.5).collect());
        let layer = GcnLayer::new(3, 2, Activation::Relu, "gcn0", &mut rng);
        (raw, adj, h, layer)
    }

    #[test]
    fn forward_shapes() {
        let (_, adj, h, layer) = fixture();
        let (out, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
        assert_eq!(out.shape(), (4, 2));
        assert!(out.as_slice().iter().all(|&v| v >= 0.0), "relu output non-negative");
    }

    #[test]
    fn parallel_forward_matches_sequential() {
        let (_, adj, h, layer) = fixture();
        let (s, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
        let (p, _) = layer.forward(&adj, &h, &ExecCtx::parallel(3));
        assert_eq!(s.max_abs_diff(&p), 0.0);
    }

    #[test]
    fn node_forward_matches_batch_row() {
        let (raw, adj, h, layer) = fixture();
        let ctx = ExecCtx::sequential();
        let (batch_out, _) = layer.forward(&adj, &h, &ctx);
        for v in 0..4usize {
            let (srcs, ws) = raw.row(v);
            let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
            let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
            let node_out = layer.forward_node(&view);
            for (a, b) in node_out.iter().zip(batch_out.row(v)) {
                assert!((a - b).abs() < 1e-5, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn combined_forward_matches_node_forward() {
        let (raw, _, h, layer) = fixture();
        for v in 0..4usize {
            let (srcs, ws) = raw.row(v);
            let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
            let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
            let mut agg = NeighborAggregate::empty(3);
            for (nh, &w) in nbr_h.iter().zip(ws) {
                agg.n += 1;
                agg.total_w += w;
                for (a, &x) in agg.acc.iter_mut().zip(nh) {
                    *a += w * x;
                }
            }
            let node = layer.forward_node(&view);
            let combined = layer.forward_node_combined(h.row(v), &agg);
            for (a, b) in node.iter().zip(&combined) {
                assert!((a - b).abs() < 1e-5, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn backward_accumulates_param_grads() {
        let (_, adj, h, mut layer) = fixture();
        let ctx = ExecCtx::sequential();
        let (out, cache) = layer.forward(&adj, &h, &ctx);
        let grad = Matrix::full(out.rows(), out.cols(), 1.0);
        let dh = layer.backward(&adj, &cache, &grad, &ctx);
        assert_eq!(dh.shape(), h.shape());
        assert!(layer.params()[0].grad.frobenius_norm() > 0.0, "dW nonzero");
    }
}
