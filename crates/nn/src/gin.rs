//! GIN layer (Xu et al., *How Powerful are Graph Neural Networks?*) — an
//! extension beyond the paper's three architectures, exercising a fourth
//! aggregation shape (weighted **sum**, learnable self-coefficient ε, MLP
//! update):
//!
//! ```text
//! h'_v = MLP( (1 + ε) · h_v + Σ_{u ∈ N+(v)} w_vu · h_u )
//! ```
//!
//! Sum aggregation is destination-local like the others, so GIN slots into
//! GraphInfer's per-node reducers unchanged — demonstrating that AGL's
//! message-passing contract covers models the paper never shipped.

use crate::dense::{DenseCache, DenseLayer};
use crate::layer::{NeighborAggregate, NeighborView};
use crate::param::Param;
use agl_tensor::ops::Activation;
use agl_tensor::rng::Rng;
use agl_tensor::{Csr, ExecCtx, Matrix};

/// One GIN layer: ε plus a 2-layer MLP.
#[derive(Debug, Clone)]
pub struct GinLayer {
    /// Learnable self-loop coefficient ε (stored 1×1).
    eps: Param,
    mlp1: DenseLayer,
    mlp2: DenseLayer,
}

/// Forward cache.
#[derive(Debug)]
pub struct GinCache {
    h_in: Matrix,
    c1: DenseCache,
    c2: DenseCache,
}

impl GinLayer {
    pub fn new(in_dim: usize, out_dim: usize, act: Activation, name: &str, rng: &mut impl Rng) -> Self {
        Self {
            eps: Param::new(format!("{name}.eps"), Matrix::zeros(1, 1)),
            mlp1: DenseLayer::new(in_dim, out_dim, act, &format!("{name}.mlp1"), rng),
            mlp2: DenseLayer::new(out_dim, out_dim, act, &format!("{name}.mlp2"), rng),
        }
    }

    pub fn in_dim(&self) -> usize {
        self.mlp1.in_dim()
    }

    pub fn out_dim(&self) -> usize {
        self.mlp2.out_dim()
    }

    fn eps_value(&self) -> f32 {
        self.eps.value[(0, 0)]
    }

    /// Batch forward. `adj` must be the *raw* weighted adjacency
    /// ([`crate::layer::AdjPrep::SumNoSelf`]): GIN sums, it does not average.
    pub fn forward(&self, adj: &Csr, h: &Matrix, ctx: &ExecCtx) -> (Matrix, GinCache) {
        debug_assert_eq!(h.cols(), self.in_dim());
        let mut agg = ctx.spmm(adj, h);
        agg.axpy(1.0 + self.eps_value(), h);
        let (a1, c1) = self.mlp1.forward(&agg);
        let (out, c2) = self.mlp2.forward(&a1);
        (out, GinCache { h_in: h.clone(), c1, c2 })
    }

    /// Batch backward.
    pub fn backward(&mut self, adj: &Csr, cache: &GinCache, grad_out: &Matrix, _ctx: &ExecCtx) -> Matrix {
        let d_a1 = self.mlp2.backward(&cache.c2, grad_out);
        let d_agg = self.mlp1.backward(&cache.c1, &d_a1);
        // dε = Σ_v d_agg_v · h_v
        let d_eps: f32 = d_agg.as_slice().iter().zip(cache.h_in.as_slice()).map(|(&g, &x)| g * x).sum();
        self.eps.accumulate(&Matrix::from_vec(1, 1, vec![d_eps]));
        // dH = (1+ε)·d_agg + Aᵀ·d_agg
        let mut dh = adj.t_spmm(&d_agg);
        dh.axpy(1.0 + self.eps_value(), &d_agg);
        dh
    }

    /// Per-node forward (GraphInfer merge step) over the raw neighborhood.
    pub fn forward_node(&self, view: &NeighborView<'_>) -> Vec<f32> {
        let scale = 1.0 + self.eps_value();
        let mut agg: Vec<f32> = view.self_h.iter().map(|&x| scale * x).collect();
        for (h, &w) in view.neighbor_h.iter().zip(view.weights) {
            for (a, &x) in agg.iter_mut().zip(h) {
                *a += w * x;
            }
        }
        let a1 = self.mlp1.forward_row(&agg);
        self.mlp2.forward_row(&a1)
    }

    /// Per-node forward from a pre-folded [`NeighborAggregate`]
    /// (`acc = Σ w·h`): add the `(1+ε)`-scaled self embedding and run the
    /// MLP — the weighted-sum aggregation decomposes exactly.
    pub fn forward_node_combined(&self, self_h: &[f32], agg: &NeighborAggregate) -> Vec<f32> {
        debug_assert_eq!(agg.acc.len(), self.in_dim());
        let scale = 1.0 + self.eps_value();
        let a: Vec<f32> = self_h.iter().zip(&agg.acc).map(|(&s, &x)| scale * s + x).collect();
        let a1 = self.mlp1.forward_row(&a);
        self.mlp2.forward_row(&a1)
    }

    pub fn params(&self) -> Vec<&Param> {
        let mut out = vec![&self.eps];
        out.extend(self.mlp1.params());
        out.extend(self.mlp2.params());
        out
    }

    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = vec![&mut self.eps];
        out.extend(self.mlp1.params_mut());
        out.extend(self.mlp2.params_mut());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{prepare_adj, AdjPrep};
    use agl_tensor::{seeded_rng, Coo};

    fn fixture() -> (Csr, Csr, Matrix, GinLayer) {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(3, 0, 1.0);
        let raw = coo.into_csr();
        let adj = prepare_adj(&raw, AdjPrep::SumNoSelf);
        let h = Matrix::from_vec(4, 3, (0..12).map(|i| ((i % 5) as f32) * 0.2 - 0.4).collect());
        let layer = GinLayer::new(3, 2, Activation::Relu, "gin0", &mut seeded_rng(41));
        (raw, adj, h, layer)
    }

    #[test]
    fn sum_prep_preserves_raw_weights() {
        let (raw, adj, _, _) = fixture();
        assert_eq!(raw, adj, "GIN aggregates over the raw weighted adjacency");
    }

    #[test]
    fn node_forward_matches_batch_row() {
        let (raw, adj, h, layer) = fixture();
        let (batch_out, _) = layer.forward(&adj, &h, &ExecCtx::sequential());
        for v in 0..4usize {
            let (srcs, ws) = raw.row(v);
            let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
            let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
            let node_out = layer.forward_node(&view);
            for (a, b) in node_out.iter().zip(batch_out.row(v)) {
                assert!((a - b).abs() < 1e-5, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn combined_forward_matches_node_forward() {
        let (raw, _, h, layer) = fixture();
        for v in 0..4usize {
            let (srcs, ws) = raw.row(v);
            let nbr_h: Vec<Vec<f32>> = srcs.iter().map(|&s| h.row(s as usize).to_vec()).collect();
            let view = NeighborView { self_h: h.row(v), neighbor_h: &nbr_h, weights: ws };
            let mut agg = NeighborAggregate::empty(3);
            for (nh, &w) in nbr_h.iter().zip(ws) {
                agg.n += 1;
                agg.total_w += w;
                for (a, &x) in agg.acc.iter_mut().zip(nh) {
                    *a += w * x;
                }
            }
            let node = layer.forward_node(&view);
            let combined = layer.forward_node_combined(h.row(v), &agg);
            for (a, b) in node.iter().zip(&combined) {
                assert!((a - b).abs() < 1e-5, "node {v}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn backward_produces_all_grads_including_eps() {
        let (_, adj, h, mut layer) = fixture();
        let ctx = ExecCtx::sequential();
        let (out, cache) = layer.forward(&adj, &h, &ctx);
        let dh = layer.backward(&adj, &cache, &Matrix::full(out.rows(), out.cols(), 1.0), &ctx);
        assert_eq!(dh.shape(), h.shape());
        for p in layer.params() {
            assert!(p.grad.frobenius_norm() > 0.0, "{} has zero grad", p.name);
        }
    }

    #[test]
    fn eps_changes_output() {
        let (_, adj, h, mut layer) = fixture();
        let ctx = ExecCtx::sequential();
        let (a, _) = layer.forward(&adj, &h, &ctx);
        layer.eps.value[(0, 0)] = 2.0;
        let (b, _) = layer.forward(&adj, &h, &ctx);
        assert!(a.max_abs_diff(&b) > 1e-4);
    }
}
