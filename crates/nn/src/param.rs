//! Named parameters with accumulated gradients.
//!
//! Parameters are plain dense matrices. The model flattens all of them into
//! one `Vec<f32>` for the parameter server (pull the flat vector, push the
//! flat gradient) — the same contract Kunpeng-style parameter servers expose
//! and the reason AGL can train GNNs "like any other model" once GraphFlat
//! has removed the data dependency.

use agl_tensor::Matrix;

/// A trainable parameter: value plus gradient accumulator of the same shape.
#[derive(Debug, Clone)]
pub struct Param {
    /// Stable name used in diagnostics and serialisation.
    pub name: String,
    pub value: Matrix,
    pub grad: Matrix,
}

impl Param {
    pub fn new(name: impl Into<String>, value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self { name: name.into(), value, grad: Matrix::zeros(r, c) }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Reset the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Accumulate a gradient contribution.
    pub fn accumulate(&mut self, g: &Matrix) {
        self.grad.add_assign(g);
    }
}

/// Flatten parameter *values* into one vector, in iteration order.
pub fn flatten_values<'a>(params: impl Iterator<Item = &'a Param>) -> Vec<f32> {
    let mut out = Vec::new();
    for p in params {
        out.extend_from_slice(p.value.as_slice());
    }
    out
}

/// Flatten parameter *gradients* into one vector, in iteration order.
pub fn flatten_grads<'a>(params: impl Iterator<Item = &'a Param>) -> Vec<f32> {
    let mut out = Vec::new();
    for p in params {
        out.extend_from_slice(p.grad.as_slice());
    }
    out
}

/// Load a flat vector back into parameter values. Panics if the length does
/// not match the total parameter count.
pub fn load_values<'a>(params: impl Iterator<Item = &'a mut Param>, flat: &[f32]) {
    let mut off = 0;
    for p in params {
        let n = p.value.len();
        p.value.as_mut_slice().copy_from_slice(&flat[off..off + n]);
        off += n;
    }
    assert_eq!(off, flat.len(), "flat parameter vector length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_load_roundtrip() {
        let mut ps = vec![
            Param::new("w1", Matrix::from_rows(&[&[1.0, 2.0]])),
            Param::new("w2", Matrix::from_rows(&[&[3.0], &[4.0]])),
        ];
        let flat = flatten_values(ps.iter());
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        let doubled: Vec<f32> = flat.iter().map(|x| x * 2.0).collect();
        load_values(ps.iter_mut(), &doubled);
        assert_eq!(ps[1].value[(1, 0)], 8.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn load_wrong_length_panics() {
        let mut ps = vec![Param::new("w", Matrix::zeros(2, 2))];
        load_values(ps.iter_mut(), &[1.0; 5]);
    }

    #[test]
    fn zero_grad_and_accumulate() {
        let mut p = Param::new("w", Matrix::zeros(1, 2));
        p.accumulate(&Matrix::from_rows(&[&[1.0, 1.0]]));
        p.accumulate(&Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(p.grad.row(0), &[2.0, 3.0]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(flatten_grads([p].iter()), vec![0.0, 0.0]);
    }
}
