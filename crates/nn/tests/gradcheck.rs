//! Finite-difference validation of every hand-derived backward pass.
//!
//! For each architecture we build a small model, define the scalar objective
//! `L = Σ_ij W_ij · logits_ij` (a fixed weighting so grad_logits is a
//! constant matrix), run the analytic backward, and compare every parameter
//! gradient — and the input-feature gradient — against central finite
//! differences. This is the ground-truth check the layer-level unit tests
//! rely on.

use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_tensor::{seeded_rng, Coo, Csr, ExecCtx, Matrix};

const N: usize = 5;
const IN_DIM: usize = 3;

fn adjacency() -> Csr {
    // A small graph with varied in-degrees (0, 1, 2, 3 entries per row) so
    // every code path (empty rows, hubs) is exercised.
    let mut coo = Coo::new(N, N);
    coo.push(0, 1, 1.0);
    coo.push(0, 2, 0.5);
    coo.push(0, 4, 2.0);
    coo.push(1, 2, 1.0);
    coo.push(1, 3, 1.0);
    coo.push(3, 4, 1.0);
    coo.into_csr()
}

fn features() -> Matrix {
    // Fixed, irrational-ish values away from activation kinks.
    Matrix::from_vec(N, IN_DIM, (0..N * IN_DIM).map(|i| ((i * 37 % 17) as f32) * 0.13 - 1.05).collect())
}

fn logit_weights(rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| ((i % 7) as f32) * 0.3 - 0.9).collect())
}

/// Objective value for the current parameters.
fn objective(model: &GnnModel, adjs: &[Csr], x: &Matrix, targets: &[usize]) -> f64 {
    let ctx = ExecCtx::sequential();
    let pass = model.forward(adjs, x, targets, false, &ctx, &mut seeded_rng(0));
    let w = logit_weights(pass.logits.rows(), pass.logits.cols());
    pass.logits.as_slice().iter().zip(w.as_slice()).map(|(&l, &c)| (l as f64) * (c as f64)).sum()
}

fn gradcheck(kind: ModelKind, n_layers: usize) {
    let mut cfg = ModelConfig::new(kind, IN_DIM, 4, 2, n_layers, Loss::SoftmaxCrossEntropy).with_seed(17);
    // Finite differences need a smooth activation: a ReLU kink crossed
    // within ±eps makes the FD slope an average of the two sides. Sigmoid
    // (and GAT's ELU, which is C¹) keep the check exact; the kinked
    // activations' derivatives are unit-tested directly in agl-tensor.
    if !matches!(kind, ModelKind::Gat { .. } | ModelKind::GeniePath) {
        cfg.hidden_act = agl_tensor::ops::Activation::Sigmoid;
    }
    let mut model = GnnModel::new(cfg);
    let raw = adjacency();
    let adjs = model.prepare_adjs(&raw, None);
    let x = features();
    let targets = [0usize, 3];
    let ctx = ExecCtx::sequential();

    // Analytic gradients.
    model.zero_grads();
    let pass = model.forward(&adjs, &x, &targets, false, &ctx, &mut seeded_rng(0));
    let w = logit_weights(pass.logits.rows(), pass.logits.cols());
    model.backward(&adjs, &pass, &w, &ctx);
    let analytic = model.grad_vector();

    // Finite differences over every parameter.
    let base = model.param_vector();
    let eps = 2e-2f32;
    let mut max_err = 0.0f64;
    let mut worst = 0usize;
    for i in 0..base.len() {
        let mut hi = base.clone();
        hi[i] += eps;
        model.load_param_vector(&hi);
        let f_hi = objective(&model, &adjs, &x, &targets);
        let mut lo = base.clone();
        lo[i] -= eps;
        model.load_param_vector(&lo);
        let f_lo = objective(&model, &adjs, &x, &targets);
        let fd = (f_hi - f_lo) / (2.0 * eps as f64);
        let a = analytic[i] as f64;
        let err = (a - fd).abs() / (1.0 + a.abs().max(fd.abs()));
        if err > max_err {
            max_err = err;
            worst = i;
        }
    }
    model.load_param_vector(&base);
    assert!(max_err < 5e-3, "{kind:?} {n_layers}-layer: worst relative grad error {max_err:.2e} at param {worst}");
}

#[test]
fn gradcheck_gcn_1layer() {
    gradcheck(ModelKind::Gcn, 1);
}

#[test]
fn gradcheck_gcn_2layer() {
    gradcheck(ModelKind::Gcn, 2);
}

#[test]
fn gradcheck_sage_2layer() {
    gradcheck(ModelKind::Sage, 2);
}

#[test]
fn gradcheck_gin_2layer() {
    gradcheck(ModelKind::Gin, 2);
}

#[test]
fn gradcheck_geniepath_1layer() {
    gradcheck(ModelKind::GeniePath, 1);
}

#[test]
fn gradcheck_geniepath_2layer() {
    gradcheck(ModelKind::GeniePath, 2);
}

#[test]
fn gradcheck_gat_1layer() {
    gradcheck(ModelKind::Gat { heads: 2 }, 1);
}

#[test]
fn gradcheck_gat_2layer() {
    gradcheck(ModelKind::Gat { heads: 2 }, 2);
}

#[test]
fn gradcheck_gat_3layer_single_head() {
    gradcheck(ModelKind::Gat { heads: 1 }, 3);
}

/// Loss-through-model check: gradient of the *actual* training losses.
#[test]
fn gradcheck_end_to_end_loss() {
    for (loss, labels) in [
        (Loss::SoftmaxCrossEntropy, Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]])),
        (Loss::BceWithLogits, Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]])),
    ] {
        let cfg = ModelConfig::new(ModelKind::Sage, IN_DIM, 4, 2, 2, loss).with_seed(23);
        let mut model = GnnModel::new(cfg);
        let raw = adjacency();
        let adjs = model.prepare_adjs(&raw, None);
        let x = features();
        let targets = [0usize, 3];
        let ctx = ExecCtx::sequential();

        model.zero_grads();
        let pass = model.forward(&adjs, &x, &targets, false, &ctx, &mut seeded_rng(0));
        let (_, grad_logits) = loss.forward_backward(&pass.logits, &labels);
        model.backward(&adjs, &pass, &grad_logits, &ctx);
        let analytic = model.grad_vector();

        let base = model.param_vector();
        let eps = 2e-2f32;
        // Spot-check a spread of parameters (full sweep covered above).
        let stride = (base.len() / 40).max(1);
        for i in (0..base.len()).step_by(stride) {
            let mut hi = base.clone();
            hi[i] += eps;
            model.load_param_vector(&hi);
            let p_hi = model.forward(&adjs, &x, &targets, false, &ctx, &mut seeded_rng(0));
            let (l_hi, _) = loss.forward_backward(&p_hi.logits, &labels);
            let mut lo = base.clone();
            lo[i] -= eps;
            model.load_param_vector(&lo);
            let p_lo = model.forward(&adjs, &x, &targets, false, &ctx, &mut seeded_rng(0));
            let (l_lo, _) = loss.forward_backward(&p_lo.logits, &labels);
            let fd = ((l_hi - l_lo) / (2.0 * eps)) as f64;
            let a = analytic[i] as f64;
            assert!(
                (a - fd).abs() / (1.0 + a.abs().max(fd.abs())) < 1e-2,
                "{loss:?} param {i}: analytic {a:.5} vs fd {fd:.5}"
            );
        }
        model.load_param_vector(&base);
    }
}
