//! `agl-obs` — unified tracing, metrics and profiling for the AGL
//! reproduction (zero external dependencies).
//!
//! Three pieces, used together through one [`Obs`] handle:
//!
//! - [`clock::Clock`] — the workspace's only sanctioned time source
//!   (monotonic for real measurements, logical for deterministic replay).
//! - [`trace::TraceSink`] / [`trace::Span`] — nested RAII spans per track,
//!   exported as Chrome/Perfetto trace-event JSON and a per-run report.
//! - [`metrics::MetricsRegistry`] — counters, gauges and log-scaled
//!   histograms (p50/p95/p99) shared by GraphFlat, the PS and the trainer.
//!
//! `Obs::default()` is *disabled*: spans are inert and metrics calls hit a
//! cheap `None` check, so instrumented hot paths cost nothing when no one
//! is observing.

#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod metrics;
pub mod trace;

pub use clock::Clock;
pub use metrics::{Histogram, HistogramKind, HistogramSnapshot, MetricValue, MetricsRegistry};
pub use trace::{Span, SpanContext, TraceEvent, TraceSink};

use std::sync::Arc;

#[derive(Debug)]
struct ObsInner {
    trace: TraceSink,
    metrics: MetricsRegistry,
}

/// The one handle components carry: a trace sink plus a metrics registry,
/// or nothing at all. Cheap to clone; `Default` is disabled.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// Observability off: spans inert, metrics dropped. Same as `default()`.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Collect spans and metrics, timestamping with `clock`.
    pub fn enabled_with(clock: Clock) -> Self {
        Self { inner: Some(Arc::new(ObsInner { trace: TraceSink::new(clock), metrics: MetricsRegistry::new() })) }
    }

    /// Collect with an explicit trace identity: `trace_id` is shared by
    /// every process of a job, `salt` must be unique per process (it keeps
    /// span ids collision-free when worker traces merge into the driver's).
    pub fn enabled_with_identity(clock: Clock, trace_id: u64, salt: u64) -> Self {
        Self {
            inner: Some(Arc::new(ObsInner {
                trace: TraceSink::with_identity(clock, trace_id, salt),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// Collect with a monotonic (real-time) clock.
    pub fn enabled() -> Self {
        Self::enabled_with(Clock::monotonic())
    }

    /// Collect with a deterministic logical clock (byte-identical traces
    /// for seeded runs).
    pub fn enabled_logical() -> Self {
        Self::enabled_with(Clock::logical())
    }

    /// Is anything collecting? (`false` for [`Obs::disabled`]/default.)
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span on `track` — inert if disabled.
    pub fn span(&self, track: &str, name: &str) -> Span {
        match &self.inner {
            Some(i) => i.trace.span(track, name),
            None => Span::disabled(),
        }
    }

    /// Open a span with an explicit parent context (typically one carried
    /// on an RPC from another process) — inert if disabled.
    pub fn span_child_of(&self, track: &str, name: &str, parent: Option<SpanContext>) -> Span {
        match &self.inner {
            Some(i) => i.trace.span_child_of(track, name, parent),
            None => Span::disabled(),
        }
    }

    /// The trace sink, if enabled.
    pub fn trace(&self) -> Option<&TraceSink> {
        self.inner.as_deref().map(|i| &i.trace)
    }

    /// The active clock, if enabled.
    pub fn clock(&self) -> Option<&Clock> {
        self.inner.as_deref().map(|i| i.trace.clock())
    }

    /// Merge events from another process's trace into this one (dropped
    /// when disabled). Tracks are prefixed with `prefix` so each worker
    /// process keeps its own lanes in the merged export.
    pub fn import_trace(&self, prefix: &str, events: Vec<TraceEvent>) {
        if let Some(i) = &self.inner {
            i.trace.import(prefix, events);
        }
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Snapshot of every *counter* (sorted by name) — the cumulative
    /// payload a worker process ships to its driver in `Metrics`/`Bye`
    /// messages. Empty when disabled.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        match self.metrics() {
            None => Vec::new(),
            Some(m) => m
                .snapshot()
                .into_iter()
                .filter_map(|(k, v)| match v {
                    MetricValue::Counter(c) => Some((k, c)),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Raise counter `name` to at least `value` (dropped when disabled).
    /// The merge primitive for cumulative snapshots from other processes:
    /// idempotent, so re-delivered snapshots never double-count.
    pub fn counter_max(&self, name: &str, value: u64) {
        if let Some(i) = &self.inner {
            i.metrics.counter_max(name, value);
        }
    }

    /// Bump counter `name` by `delta` (dropped when disabled).
    pub fn metric_add(&self, name: &str, delta: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add(name, delta);
        }
    }

    /// Set gauge `name` (dropped when disabled).
    pub fn gauge_set(&self, name: &str, value: u64) {
        if let Some(i) = &self.inner {
            i.metrics.gauge_set(name, value);
        }
    }

    /// Record `v` into log2 histogram `name` (dropped when disabled).
    pub fn observe(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.metrics.record(name, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_inert() {
        let obs = Obs::default();
        assert!(!obs.is_enabled());
        let mut s = obs.span("t", "x");
        s.counter("n", 1);
        obs.metric_add("c", 1);
        obs.observe("h", 9);
        assert!(obs.trace().is_none());
        assert!(obs.metrics().is_none());
    }

    #[test]
    fn enabled_collects_spans_and_metrics() {
        let obs = Obs::enabled_logical();
        {
            let _s = obs.span("driver", "job");
        }
        obs.metric_add("records", 3);
        obs.observe("latency", 100);
        let trace = obs.trace().expect("trace sink present");
        assert_eq!(trace.events().len(), 1);
        let m = obs.metrics().expect("metrics present");
        assert_eq!(m.get("records"), 3);
        assert!(m.to_json().contains("\"latency\""));
    }

    #[test]
    fn clones_share_the_sink() {
        let obs = Obs::enabled_logical();
        let obs2 = obs.clone();
        {
            let _a = obs.span("t", "a");
        }
        {
            let _b = obs2.span("t", "b");
        }
        assert_eq!(obs.trace().map(|t| t.events().len()), Some(2));
    }
}
