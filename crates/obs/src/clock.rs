//! The workspace's single sanctioned source of time.
//!
//! Every other crate is forbidden (by the `no-wallclock` lint) from calling
//! `Instant::now` / `SystemTime::now` directly: determinism-critical modules
//! must be replayable bit-for-bit, and a raw wall-clock read anywhere in a
//! job's dataflow breaks that. Instead they take a [`Clock`]:
//!
//! - [`Clock::monotonic`] wraps one `Instant` base and hands out nanoseconds
//!   since that base — real time, for perf measurement.
//! - [`Clock::logical`] is a deterministic tick counter — "time" advances by
//!   one per reading, so two runs of the same seeded job observe the same
//!   timestamps and a trace recorded through it is byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
enum Source {
    /// Real elapsed time relative to a fixed base.
    Monotonic(Instant),
    /// Deterministic counter: each `now()` returns the next tick.
    Logical(AtomicU64),
}

/// A cheap-to-clone (Arc) handle to a time source.
#[derive(Debug, Clone)]
pub struct Clock {
    source: Arc<Source>,
}

impl Default for Clock {
    fn default() -> Self {
        Self::monotonic()
    }
}

impl Clock {
    /// Real time: nanoseconds since this clock was created.
    pub fn monotonic() -> Self {
        Self { source: Arc::new(Source::Monotonic(Instant::now())) }
    }

    /// Deterministic time: the n-th reading returns `n` (0-based).
    pub fn logical() -> Self {
        Self { source: Arc::new(Source::Logical(AtomicU64::new(0))) }
    }

    /// True when this clock is a deterministic logical counter.
    pub fn is_logical(&self) -> bool {
        matches!(*self.source, Source::Logical(_))
    }

    /// Current reading in clock units (nanoseconds for a monotonic clock,
    /// ticks for a logical one). Logical readings are globally unique and
    /// monotonically increasing, but their interleaving across threads is
    /// scheduler-dependent — determinism-sensitive recording should key on
    /// per-track sequence numbers (see `trace::TraceSink`), not raw ticks.
    pub fn now(&self) -> u64 {
        match &*self.source {
            Source::Monotonic(base) => base.elapsed().as_nanos() as u64,
            // agl-lint: allow(atomics) — monotone tick allocator; only uniqueness matters, not order.
            Source::Logical(tick) => tick.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Units elapsed since an earlier reading of *this* clock.
    pub fn since(&self, earlier: u64) -> u64 {
        self.now().saturating_sub(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let c = Clock::monotonic();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_logical());
    }

    #[test]
    fn logical_ticks_are_sequential() {
        let c = Clock::logical();
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
        assert!(c.is_logical());
    }

    #[test]
    fn clones_share_the_source() {
        let c = Clock::logical();
        let c2 = c.clone();
        assert_eq!(c.now(), 0);
        assert_eq!(c2.now(), 1);
    }

    #[test]
    fn since_is_saturating() {
        let c = Clock::logical();
        let later = {
            c.now();
            c.now()
        };
        assert_eq!(c.since(later + 100), 0, "never underflows");
    }
}
