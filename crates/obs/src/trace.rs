//! Structured spans collected into a per-run trace.
//!
//! A [`TraceSink`] owns a [`Clock`] and a set of named *tracks* (one per
//! logical lane of execution: a map task, a reduce partition, a trainer
//! worker, the driver). A [`Span`] is an RAII guard: it records its begin
//! timestamp on creation and its end on drop, optionally carrying named
//! counters (records moved, bytes shuffled) that end up in the event's
//! `args`.
//!
//! ## Determinism
//!
//! Track names are chosen by the instrumentation from deterministic inputs
//! (task index, round number, worker id) — never OS thread ids. Under a
//! logical clock every track keeps its own tick counter: a span's begin and
//! end each consume one tick *of its track*, so timestamps depend only on
//! the per-track span order, not on cross-thread interleaving. Exports sort
//! events by `(track, seq)`; with a logical clock and a seeded job the
//! serialized trace is byte-identical across runs.

use crate::clock::Clock;
use crate::json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One completed span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Track (thread/stage lane) the span ran on.
    pub track: String,
    /// Per-track begin order (0-based) — the deterministic sort key.
    pub seq: u64,
    /// Span name, e.g. `ps.push` or `flat.round.map`.
    pub name: String,
    /// Begin timestamp in clock units (nanoseconds or logical ticks).
    pub ts: u64,
    /// Duration in clock units.
    pub dur: u64,
    /// Nesting depth within the track at begin time (0 = top level).
    pub depth: usize,
    /// Counters attached while the span was open, in attach order.
    pub args: Vec<(String, u64)>,
}

#[derive(Debug, Default)]
struct TrackState {
    tick: u64,
    next_seq: u64,
    depth: usize,
}

#[derive(Debug, Default)]
struct SinkState {
    tracks: BTreeMap<String, TrackState>,
    events: Vec<TraceEvent>,
}

#[derive(Debug)]
struct SinkInner {
    clock: Clock,
    state: Mutex<SinkState>,
}

/// Collects spans for one run. Cheap to clone (Arc).
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

impl TraceSink {
    /// Empty sink timestamping with `clock`.
    pub fn new(clock: Clock) -> Self {
        Self { inner: Arc::new(SinkInner { clock, state: Mutex::new(SinkState::default()) }) }
    }

    /// The clock spans are stamped with.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    fn lock(inner: &SinkInner) -> std::sync::MutexGuard<'_, SinkState> {
        // Trace state carries no cross-field invariants a panicking span
        // could tear; keep collecting through poison.
        inner.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Open a span named `name` on `track`. The span ends (and the event is
    /// recorded) when the returned guard drops.
    pub fn span(&self, track: &str, name: &str) -> Span {
        let inner = self.inner.clone();
        let logical = inner.clock.is_logical();
        let (seq, ts, depth) = {
            let mut st = Self::lock(&inner);
            let tr = st.tracks.entry(track.to_string()).or_default();
            let seq = tr.next_seq;
            tr.next_seq += 1;
            let depth = tr.depth;
            tr.depth += 1;
            let ts = if logical {
                let t = tr.tick;
                tr.tick += 1;
                t
            } else {
                inner.clock.now()
            };
            (seq, ts, depth)
        };
        Span { sink: Some(inner), track: track.to_string(), name: name.to_string(), seq, ts, depth, args: Vec::new() }
    }

    /// Import events recorded by another sink — typically a worker
    /// process's trace shipped back to the driver — prefixing every track
    /// with `prefix` so per-process lanes stay distinct in the merged
    /// export. Events keep their original timestamps and sequence numbers;
    /// [`TraceSink::events`] interleaves them deterministically by
    /// `(track, seq)`.
    pub fn import(&self, prefix: &str, events: Vec<TraceEvent>) {
        let mut st = Self::lock(&self.inner);
        for mut e in events {
            e.track = format!("{prefix}{}", e.track);
            st.events.push(e);
        }
    }

    /// Events recorded so far, sorted by `(track, seq)` — the deterministic
    /// export order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut evs = Self::lock(&self.inner).events.clone();
        evs.sort_by(|a, b| a.track.cmp(&b.track).then(a.seq.cmp(&b.seq)));
        evs
    }

    /// Chrome `chrome://tracing` / Perfetto trace-event JSON. One `pid`,
    /// one `tid` per track (tids assigned in sorted-track order, named via
    /// `thread_name` metadata events). Timestamps are exported in
    /// microseconds for a monotonic clock and in raw ticks for a logical
    /// clock.
    pub fn to_chrome_json(&self) -> String {
        let evs = self.events();
        let logical = self.inner.clock.is_logical();
        let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
        for ev in &evs {
            let next = tids.len() + 1;
            tids.entry(ev.track.as_str()).or_insert(next);
        }
        let mut parts: Vec<String> = Vec::with_capacity(evs.len() + tids.len() + 1);
        for (track, tid) in &tids {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                json::escape(track)
            ));
        }
        for ev in &evs {
            let tid = tids.get(ev.track.as_str()).copied().unwrap_or(0);
            let (ts, dur) = if logical {
                (ev.ts.to_string(), ev.dur.max(1).to_string())
            } else {
                // Nanoseconds → microseconds with three decimals.
                let us = |n: u64| format!("{}.{:03}", n / 1000, n % 1000);
                (us(ev.ts), us(ev.dur.max(1)))
            };
            let mut args = String::new();
            for (k, v) in &ev.args {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":{v}", json::escape(k)));
            }
            parts.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"agl\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}",
                json::escape(&ev.name)
            ));
        }
        format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", parts.join(","))
    }

    /// Per-span-name aggregation: `(name, count, total_dur, min_dur, max_dur)`,
    /// sorted by name.
    pub fn summary(&self) -> Vec<(String, u64, u64, u64, u64)> {
        let mut agg: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
        for ev in self.events() {
            let e = agg.entry(ev.name).or_insert((0, 0, u64::MAX, 0));
            e.0 += 1;
            e.1 += ev.dur;
            e.2 = e.2.min(ev.dur);
            e.3 = e.3.max(ev.dur);
        }
        agg.into_iter().map(|(name, (n, total, min, max))| (name, n, total, min, max)).collect()
    }

    /// JSON summary export: per-span-name aggregates plus the clock mode.
    pub fn summary_json(&self) -> String {
        let clock = if self.inner.clock.is_logical() { "logical" } else { "monotonic" };
        let spans = self
            .summary()
            .into_iter()
            .map(|(name, count, total, min, max)| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{count},\"total\":{total},\"min\":{min},\"max\":{max}}}",
                    json::escape(&name)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"clock\":\"{clock}\",\"spans\":[{spans}]}}")
    }

    /// Human-readable per-run report of where time went, widest spans first
    /// (ties and units follow the active clock: ns for monotonic, ticks for
    /// logical).
    pub fn render(&self) -> String {
        let unit = if self.inner.clock.is_logical() { "ticks" } else { "ns" };
        let mut rows = self.summary();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let mut out =
            format!("  {:<40} {:>8} {:>14} {:>14}\n", "span", "count", format!("total {unit}"), format!("max {unit}"));
        for (name, count, total, _min, max) in rows {
            out.push_str(&format!("  {name:<40} {count:>8} {total:>14} {max:>14}\n"));
        }
        out
    }
}

/// RAII span guard — see [`TraceSink::span`]. A disabled span (from a
/// disabled `Obs`) is inert and allocation-free.
#[derive(Debug)]
pub struct Span {
    sink: Option<Arc<SinkInner>>,
    track: String,
    name: String,
    seq: u64,
    ts: u64,
    depth: usize,
    args: Vec<(String, u64)>,
}

impl Span {
    /// An inert span for disabled observability paths.
    pub fn disabled() -> Self {
        Self { sink: None, track: String::new(), name: String::new(), seq: 0, ts: 0, depth: 0, args: Vec::new() }
    }

    /// Is this span recording? (`false` for [`Span::disabled`].)
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Attach a named counter to this span's event `args`. Repeated keys
    /// accumulate.
    pub fn counter(&mut self, key: &str, delta: u64) {
        if self.sink.is_none() {
            return;
        }
        if let Some(e) = self.args.iter_mut().find(|(k, _)| k == key) {
            e.1 += delta;
        } else {
            self.args.push((key.to_string(), delta));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.sink.take() else { return };
        let logical = inner.clock.is_logical();
        // Read the monotonic clock before taking the sink lock so lock
        // contention never inflates the measured duration.
        let real_end = if logical { 0 } else { inner.clock.now() };
        let mut st = TraceSink::lock(&inner);
        let end = match st.tracks.get_mut(&self.track) {
            Some(tr) => {
                tr.depth = tr.depth.saturating_sub(1);
                if logical {
                    let t = tr.tick;
                    tr.tick += 1;
                    t
                } else {
                    real_end
                }
            }
            // The track was created at span begin; absent means the sink
            // state was replaced — still record with a best-effort end.
            None => real_end.max(self.ts),
        };
        st.events.push(TraceEvent {
            track: std::mem::take(&mut self.track),
            seq: self.seq,
            name: std::mem::take(&mut self.name),
            ts: self.ts,
            dur: end.saturating_sub(self.ts),
            depth: self.depth,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_nest_by_timestamp_and_depth() {
        let sink = TraceSink::new(Clock::logical());
        {
            let mut outer = sink.span("driver", "job");
            outer.counter("records", 10);
            {
                let _inner = sink.span("driver", "round0");
            }
            {
                let _inner = sink.span("driver", "round1");
            }
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        // Sorted by seq: job (seq 0), round0 (seq 1), round1 (seq 2).
        assert_eq!(evs[0].name, "job");
        assert_eq!(evs[0].depth, 0);
        assert_eq!(evs[1].name, "round0");
        assert_eq!(evs[1].depth, 1);
        assert_eq!(evs[2].depth, 1);
        // Logical ticks: job=[0, .. 5], round0=[1,2], round1=[3,4].
        assert_eq!((evs[1].ts, evs[1].dur), (1, 1));
        assert_eq!((evs[2].ts, evs[2].dur), (3, 1));
        assert_eq!((evs[0].ts, evs[0].dur), (0, 5));
        // Children are strictly contained in the parent interval.
        for child in &evs[1..] {
            assert!(child.ts > evs[0].ts && child.ts + child.dur < evs[0].ts + evs[0].dur);
        }
        assert_eq!(evs[0].args, vec![("records".to_string(), 10)]);
    }

    #[test]
    fn monotonic_spans_have_real_durations() {
        let sink = TraceSink::new(Clock::monotonic());
        {
            let _s = sink.span("t", "work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].dur >= 1_000_000, "at least 1ms in nanos: {}", evs[0].dur);
    }

    fn concurrent_run() -> TraceSink {
        let sink = TraceSink::new(Clock::logical());
        std::thread::scope(|s| {
            for w in 0..4 {
                let sink = sink.clone();
                s.spawn(move || {
                    let track = format!("worker-{w}");
                    for i in 0..3 {
                        let mut sp = sink.span(&track, &format!("step-{i}"));
                        sp.counter("n", (w * 10 + i) as u64);
                        let _child = sink.span(&track, "sub");
                    }
                });
            }
        });
        sink
    }

    #[test]
    fn concurrent_emitters_are_deterministic_under_logical_clock() {
        let a = concurrent_run().to_chrome_json();
        let b = concurrent_run().to_chrome_json();
        assert_eq!(a, b, "same program → byte-identical logical trace");
        let s1 = concurrent_run().summary_json();
        let s2 = concurrent_run().summary_json();
        assert_eq!(s1, s2);
    }

    #[test]
    fn chrome_export_shape() {
        let sink = TraceSink::new(Clock::logical());
        {
            let mut s = sink.span("driver", "job \"x\"");
            s.counter("bytes", 7);
        }
        let j = sink.to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{j}");
        assert!(j.contains("\"ph\":\"M\""), "thread metadata present: {j}");
        assert!(j.contains("\"name\":\"job \\\"x\\\"\""), "escaped span name: {j}");
        assert!(j.contains("\"args\":{\"bytes\":7}"), "{j}");
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 1);
    }

    #[test]
    fn summary_aggregates_by_name() {
        let sink = TraceSink::new(Clock::logical());
        for _ in 0..3 {
            let _s = sink.span("t", "step");
        }
        let sum = sink.summary();
        assert_eq!(sum.len(), 1);
        let (name, count, total, min, max) = &sum[0];
        assert_eq!(name, "step");
        assert_eq!(*count, 3);
        assert_eq!((*min, *max), (1, 1));
        assert_eq!(*total, 3);
        let report = sink.render();
        assert!(report.contains("step"), "{report}");
        assert!(report.contains("ticks"), "logical unit labelled: {report}");
    }

    #[test]
    fn disabled_span_is_inert() {
        let mut s = Span::disabled();
        assert!(!s.is_enabled());
        s.counter("n", 5); // no-op, no panic
    }
}
