//! Structured spans collected into a per-run trace.
//!
//! A [`TraceSink`] owns a [`Clock`] and a set of named *tracks* (one per
//! logical lane of execution: a map task, a reduce partition, a trainer
//! worker, the driver). A [`Span`] is an RAII guard: it records its begin
//! timestamp on creation and its end on drop, optionally carrying named
//! counters (records moved, bytes shuffled) that end up in the event's
//! `args`.
//!
//! ## Determinism
//!
//! Track names are chosen by the instrumentation from deterministic inputs
//! (task index, round number, worker id) — never OS thread ids. Under a
//! logical clock every track keeps its own tick counter: a span's begin and
//! end each consume one tick *of its track*, so timestamps depend only on
//! the per-track span order, not on cross-thread interleaving. Exports sort
//! events by `(track, seq)`; with a logical clock and a seeded job the
//! serialized trace is byte-identical across runs.

use crate::clock::Clock;
use crate::json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A span's identity as seen from another process: which trace it belongs
/// to and which span it is. Small enough to ride as a header on every RPC,
/// so a worker-side span can parent under the driver span that issued the
/// request (see [`TraceSink::span_child_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Identifier of the trace this span belongs to (shared by every
    /// process participating in one job).
    pub trace_id: u64,
    /// This span's stable identifier (nonzero).
    pub span_id: u64,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Track (thread/stage lane) the span ran on.
    pub track: String,
    /// Per-track begin order (0-based) — the deterministic sort key.
    pub seq: u64,
    /// Span name, e.g. `ps.push` or `flat.round.map`.
    pub name: String,
    /// Begin timestamp in clock units (nanoseconds or logical ticks).
    pub ts: u64,
    /// Duration in clock units.
    pub dur: u64,
    /// Nesting depth within the track at begin time (0 = top level).
    pub depth: usize,
    /// Counters attached while the span was open, in attach order.
    pub args: Vec<(String, u64)>,
    /// Stable span identity — a hash of `(salt, track, seq)`, so ids are
    /// deterministic per run and unique across processes (each process of
    /// a job hashes with a distinct salt). Never zero.
    pub span_id: u64,
    /// The enclosing span: an explicit cross-process parent when the span
    /// was opened with [`TraceSink::span_child_of`], otherwise the
    /// innermost span open on the same track at begin time. Zero = root.
    pub parent_id: u64,
}

#[derive(Debug, Default)]
struct TrackState {
    tick: u64,
    next_seq: u64,
    depth: usize,
    /// Span ids currently open on this track, begin order. The top is the
    /// default parent for the next span; drops remove by id (not pop) so
    /// out-of-order guard drops cannot corrupt the stack.
    open: Vec<u64>,
}

/// 64-bit FNV-1a over `(salt, track, seq)`, forced nonzero — the stable,
/// cross-process-unique span id.
fn span_id_for(salt: u64, track: &str, seq: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(&salt.to_le_bytes());
    eat(track.as_bytes());
    eat(&seq.to_le_bytes());
    if h == 0 {
        0x9e37_79b9_7f4a_7c15
    } else {
        h
    }
}

#[derive(Debug, Default)]
struct SinkState {
    tracks: BTreeMap<String, TrackState>,
    events: Vec<TraceEvent>,
}

#[derive(Debug)]
struct SinkInner {
    clock: Clock,
    trace_id: u64,
    salt: u64,
    state: Mutex<SinkState>,
}

/// Collects spans for one run. Cheap to clone (Arc).
#[derive(Debug, Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

impl TraceSink {
    /// Empty sink timestamping with `clock`, with the default identity
    /// (trace id 1, salt 0 — the driver process of a single-process run).
    pub fn new(clock: Clock) -> Self {
        Self::with_identity(clock, 1, 0)
    }

    /// Empty sink with an explicit identity: `trace_id` names the job-wide
    /// trace this sink contributes to; `salt` must be unique per process of
    /// the job (it feeds the span-id hash, keeping ids collision-free when
    /// worker traces are merged into the driver's).
    pub fn with_identity(clock: Clock, trace_id: u64, salt: u64) -> Self {
        Self { inner: Arc::new(SinkInner { clock, trace_id, salt, state: Mutex::new(SinkState::default()) }) }
    }

    /// The job-wide trace identifier this sink stamps on span contexts.
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// The clock spans are stamped with.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    fn lock(inner: &SinkInner) -> std::sync::MutexGuard<'_, SinkState> {
        // Trace state carries no cross-field invariants a panicking span
        // could tear; keep collecting through poison.
        inner.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Open a span named `name` on `track`. The span ends (and the event is
    /// recorded) when the returned guard drops. Parents under the innermost
    /// span already open on the same track, if any.
    pub fn span(&self, track: &str, name: &str) -> Span {
        self.span_child_of(track, name, None)
    }

    /// Open a span with an explicit parent — typically a [`SpanContext`]
    /// shipped over the wire by the driver RPC that caused this work. With
    /// `None` the parent defaults to the innermost open span on the track.
    pub fn span_child_of(&self, track: &str, name: &str, parent: Option<SpanContext>) -> Span {
        let inner = self.inner.clone();
        let logical = inner.clock.is_logical();
        let (seq, ts, depth, span_id, parent_id) = {
            let mut st = Self::lock(&inner);
            let tr = st.tracks.entry(track.to_string()).or_default();
            let seq = tr.next_seq;
            tr.next_seq += 1;
            let depth = tr.depth;
            tr.depth += 1;
            let ts = if logical {
                let t = tr.tick;
                tr.tick += 1;
                t
            } else {
                inner.clock.now()
            };
            let span_id = span_id_for(inner.salt, track, seq);
            let parent_id = match parent {
                Some(ctx) => ctx.span_id,
                None => tr.open.last().copied().unwrap_or(0),
            };
            tr.open.push(span_id);
            (seq, ts, depth, span_id, parent_id)
        };
        Span {
            sink: Some(inner),
            track: track.to_string(),
            name: name.to_string(),
            seq,
            ts,
            depth,
            span_id,
            parent_id,
            args: Vec::new(),
        }
    }

    /// Import events recorded by another sink — typically a worker
    /// process's trace shipped back to the driver — prefixing every track
    /// with `prefix` so per-process lanes stay distinct in the merged
    /// export. Events keep their original timestamps and sequence numbers;
    /// [`TraceSink::events`] interleaves them deterministically by
    /// `(track, seq)`.
    pub fn import(&self, prefix: &str, events: Vec<TraceEvent>) {
        let mut st = Self::lock(&self.inner);
        for mut e in events {
            e.track = format!("{prefix}{}", e.track);
            st.events.push(e);
        }
    }

    /// Events recorded so far, sorted by `(track, seq)` — the deterministic
    /// export order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut evs = Self::lock(&self.inner).events.clone();
        evs.sort_by(|a, b| a.track.cmp(&b.track).then(a.seq.cmp(&b.seq)));
        evs
    }

    /// Chrome `chrome://tracing` / Perfetto trace-event JSON. One `pid`,
    /// one `tid` per track (tids assigned in sorted-track order, named via
    /// `thread_name` metadata events). Timestamps are exported in
    /// microseconds for a monotonic clock and in raw ticks for a logical
    /// clock.
    ///
    /// Every complete (`"X"`) event carries its span identity as top-level
    /// `sid`/`psid` fields (ignored by trace viewers, consumed by
    /// `obs-report`). Parent/child links that cross tracks — the causal
    /// edges between a driver RPC span and the worker span it caused —
    /// additionally emit a flow-event pair (`ph:"s"` at the parent,
    /// `ph:"f"` at the child) so the arrows render in the viewer.
    pub fn to_chrome_json(&self) -> String {
        let evs = self.events();
        let logical = self.inner.clock.is_logical();
        let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
        for ev in &evs {
            let next = tids.len() + 1;
            tids.entry(ev.track.as_str()).or_insert(next);
        }
        // Span id → (track, begin ts) of the parent end of each flow arrow.
        let by_id: BTreeMap<u64, &TraceEvent> = evs.iter().map(|e| (e.span_id, e)).collect();
        let fmt_ts = |n: u64| {
            if logical {
                n.to_string()
            } else {
                // Nanoseconds → microseconds with three decimals.
                format!("{}.{:03}", n / 1000, n % 1000)
            }
        };
        let mut parts: Vec<String> = Vec::with_capacity(evs.len() + tids.len() + 1);
        for (track, tid) in &tids {
            parts.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                json::escape(track)
            ));
        }
        for ev in &evs {
            let tid = tids.get(ev.track.as_str()).copied().unwrap_or(0);
            let (ts, dur) = (fmt_ts(ev.ts), fmt_ts(ev.dur.max(1)));
            let mut args = String::new();
            for (k, v) in &ev.args {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":{v}", json::escape(k)));
            }
            parts.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"agl\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":{tid},\
                 \"sid\":{},\"psid\":{},\"args\":{{{args}}}}}",
                json::escape(&ev.name),
                ev.span_id,
                ev.parent_id,
            ));
        }
        // Flow arrows for cross-track causal edges, in child event order
        // (deterministic: `evs` is already sorted).
        for ev in &evs {
            if ev.parent_id == 0 {
                continue;
            }
            let Some(parent) = by_id.get(&ev.parent_id) else { continue };
            if parent.track == ev.track {
                continue; // same-track nesting renders as containment already
            }
            let ptid = tids.get(parent.track.as_str()).copied().unwrap_or(0);
            let ctid = tids.get(ev.track.as_str()).copied().unwrap_or(0);
            parts.push(format!(
                "{{\"name\":\"causal\",\"cat\":\"agl.flow\",\"ph\":\"s\",\"id\":{},\"pid\":1,\"tid\":{ptid},\"ts\":{}}}",
                ev.span_id,
                fmt_ts(parent.ts),
            ));
            parts.push(format!(
                "{{\"name\":\"causal\",\"cat\":\"agl.flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":1,\"tid\":{ctid},\"ts\":{}}}",
                ev.span_id,
                fmt_ts(ev.ts),
            ));
        }
        format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", parts.join(","))
    }

    /// Per-span-name aggregation: `(name, count, total_dur, min_dur, max_dur)`,
    /// sorted by name.
    pub fn summary(&self) -> Vec<(String, u64, u64, u64, u64)> {
        let mut agg: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
        for ev in self.events() {
            let e = agg.entry(ev.name).or_insert((0, 0, u64::MAX, 0));
            e.0 += 1;
            e.1 += ev.dur;
            e.2 = e.2.min(ev.dur);
            e.3 = e.3.max(ev.dur);
        }
        agg.into_iter().map(|(name, (n, total, min, max))| (name, n, total, min, max)).collect()
    }

    /// JSON summary export: per-span-name aggregates plus the clock mode.
    pub fn summary_json(&self) -> String {
        let clock = if self.inner.clock.is_logical() { "logical" } else { "monotonic" };
        let spans = self
            .summary()
            .into_iter()
            .map(|(name, count, total, min, max)| {
                format!(
                    "{{\"name\":\"{}\",\"count\":{count},\"total\":{total},\"min\":{min},\"max\":{max}}}",
                    json::escape(&name)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"clock\":\"{clock}\",\"spans\":[{spans}]}}")
    }

    /// Human-readable per-run report of where time went, widest spans first
    /// (ties and units follow the active clock: ns for monotonic, ticks for
    /// logical).
    pub fn render(&self) -> String {
        let unit = if self.inner.clock.is_logical() { "ticks" } else { "ns" };
        let mut rows = self.summary();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let mut out =
            format!("  {:<40} {:>8} {:>14} {:>14}\n", "span", "count", format!("total {unit}"), format!("max {unit}"));
        for (name, count, total, _min, max) in rows {
            out.push_str(&format!("  {name:<40} {count:>8} {total:>14} {max:>14}\n"));
        }
        out
    }
}

/// RAII span guard — see [`TraceSink::span`]. A disabled span (from a
/// disabled `Obs`) is inert and allocation-free.
#[derive(Debug)]
pub struct Span {
    sink: Option<Arc<SinkInner>>,
    track: String,
    name: String,
    seq: u64,
    ts: u64,
    depth: usize,
    span_id: u64,
    parent_id: u64,
    args: Vec<(String, u64)>,
}

impl Span {
    /// An inert span for disabled observability paths.
    pub fn disabled() -> Self {
        Self {
            sink: None,
            track: String::new(),
            name: String::new(),
            seq: 0,
            ts: 0,
            depth: 0,
            span_id: 0,
            parent_id: 0,
            args: Vec::new(),
        }
    }

    /// Is this span recording? (`false` for [`Span::disabled`].)
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// This span's wire identity, for propagating to the process that will
    /// do the work this span describes. `None` for a disabled span.
    pub fn context(&self) -> Option<SpanContext> {
        self.sink.as_ref().map(|inner| SpanContext { trace_id: inner.trace_id, span_id: self.span_id })
    }

    /// Attach a named counter to this span's event `args`. Repeated keys
    /// accumulate.
    pub fn counter(&mut self, key: &str, delta: u64) {
        if self.sink.is_none() {
            return;
        }
        if let Some(e) = self.args.iter_mut().find(|(k, _)| k == key) {
            e.1 += delta;
        } else {
            self.args.push((key.to_string(), delta));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.sink.take() else { return };
        let logical = inner.clock.is_logical();
        // Read the monotonic clock before taking the sink lock so lock
        // contention never inflates the measured duration.
        let real_end = if logical { 0 } else { inner.clock.now() };
        let mut st = TraceSink::lock(&inner);
        let end = match st.tracks.get_mut(&self.track) {
            Some(tr) => {
                tr.depth = tr.depth.saturating_sub(1);
                tr.open.retain(|&id| id != self.span_id);
                if logical {
                    let t = tr.tick;
                    tr.tick += 1;
                    t
                } else {
                    real_end
                }
            }
            // The track was created at span begin; absent means the sink
            // state was replaced — still record with a best-effort end.
            None => real_end.max(self.ts),
        };
        st.events.push(TraceEvent {
            track: std::mem::take(&mut self.track),
            seq: self.seq,
            name: std::mem::take(&mut self.name),
            ts: self.ts,
            dur: end.saturating_sub(self.ts),
            depth: self.depth,
            args: std::mem::take(&mut self.args),
            span_id: self.span_id,
            parent_id: self.parent_id,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_nest_by_timestamp_and_depth() {
        let sink = TraceSink::new(Clock::logical());
        {
            let mut outer = sink.span("driver", "job");
            outer.counter("records", 10);
            {
                let _inner = sink.span("driver", "round0");
            }
            {
                let _inner = sink.span("driver", "round1");
            }
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        // Sorted by seq: job (seq 0), round0 (seq 1), round1 (seq 2).
        assert_eq!(evs[0].name, "job");
        assert_eq!(evs[0].depth, 0);
        assert_eq!(evs[1].name, "round0");
        assert_eq!(evs[1].depth, 1);
        assert_eq!(evs[2].depth, 1);
        // Logical ticks: job=[0, .. 5], round0=[1,2], round1=[3,4].
        assert_eq!((evs[1].ts, evs[1].dur), (1, 1));
        assert_eq!((evs[2].ts, evs[2].dur), (3, 1));
        assert_eq!((evs[0].ts, evs[0].dur), (0, 5));
        // Children are strictly contained in the parent interval.
        for child in &evs[1..] {
            assert!(child.ts > evs[0].ts && child.ts + child.dur < evs[0].ts + evs[0].dur);
        }
        assert_eq!(evs[0].args, vec![("records".to_string(), 10)]);
    }

    #[test]
    fn monotonic_spans_have_real_durations() {
        let sink = TraceSink::new(Clock::monotonic());
        {
            let _s = sink.span("t", "work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].dur >= 1_000_000, "at least 1ms in nanos: {}", evs[0].dur);
    }

    fn concurrent_run() -> TraceSink {
        let sink = TraceSink::new(Clock::logical());
        std::thread::scope(|s| {
            for w in 0..4 {
                let sink = sink.clone();
                s.spawn(move || {
                    let track = format!("worker-{w}");
                    for i in 0..3 {
                        let mut sp = sink.span(&track, &format!("step-{i}"));
                        sp.counter("n", (w * 10 + i) as u64);
                        let _child = sink.span(&track, "sub");
                    }
                });
            }
        });
        sink
    }

    #[test]
    fn concurrent_emitters_are_deterministic_under_logical_clock() {
        let a = concurrent_run().to_chrome_json();
        let b = concurrent_run().to_chrome_json();
        assert_eq!(a, b, "same program → byte-identical logical trace");
        let s1 = concurrent_run().summary_json();
        let s2 = concurrent_run().summary_json();
        assert_eq!(s1, s2);
    }

    #[test]
    fn chrome_export_shape() {
        let sink = TraceSink::new(Clock::logical());
        {
            let mut s = sink.span("driver", "job \"x\"");
            s.counter("bytes", 7);
        }
        let j = sink.to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
        assert!(j.ends_with("],\"displayTimeUnit\":\"ms\"}"), "{j}");
        assert!(j.contains("\"ph\":\"M\""), "thread metadata present: {j}");
        assert!(j.contains("\"name\":\"job \\\"x\\\"\""), "escaped span name: {j}");
        assert!(j.contains("\"args\":{\"bytes\":7}"), "{j}");
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 1);
    }

    #[test]
    fn summary_aggregates_by_name() {
        let sink = TraceSink::new(Clock::logical());
        for _ in 0..3 {
            let _s = sink.span("t", "step");
        }
        let sum = sink.summary();
        assert_eq!(sum.len(), 1);
        let (name, count, total, min, max) = &sum[0];
        assert_eq!(name, "step");
        assert_eq!(*count, 3);
        assert_eq!((*min, *max), (1, 1));
        assert_eq!(*total, 3);
        let report = sink.render();
        assert!(report.contains("step"), "{report}");
        assert!(report.contains("ticks"), "logical unit labelled: {report}");
    }

    #[test]
    fn disabled_span_is_inert() {
        let mut s = Span::disabled();
        assert!(!s.is_enabled());
        s.counter("n", 5); // no-op, no panic
        assert!(s.context().is_none());
    }

    #[test]
    fn same_track_nesting_sets_parent_ids() {
        let sink = TraceSink::new(Clock::logical());
        {
            let outer = sink.span("driver", "job");
            let outer_id = outer.context().unwrap().span_id;
            {
                let inner = sink.span("driver", "round0");
                assert_ne!(inner.context().unwrap().span_id, outer_id);
            }
        }
        let evs = sink.events();
        let outer = evs.iter().find(|e| e.name == "job").unwrap();
        let inner = evs.iter().find(|e| e.name == "round0").unwrap();
        assert_eq!(outer.parent_id, 0, "top-level span is a root");
        assert_eq!(inner.parent_id, outer.span_id, "nested span parents under the open span");
        assert_ne!(outer.span_id, 0);
        assert_ne!(inner.span_id, 0);
    }

    #[test]
    fn explicit_context_overrides_track_nesting() {
        let driver = TraceSink::with_identity(Clock::logical(), 42, 0);
        let rpc = driver.span("dist.w0", "rpc.reduce.r0");
        let ctx = rpc.context().unwrap();
        assert_eq!(ctx.trace_id, 42);

        // A different process (distinct salt), parenting under the shipped
        // context rather than its own track stack.
        let worker = TraceSink::with_identity(Clock::logical(), 42, 7);
        {
            let _task = worker.span_child_of("reduce.r0.p0", "reduce", Some(ctx));
        }
        let evs = worker.events();
        assert_eq!(evs[0].parent_id, ctx.span_id);
        drop(rpc);
        let driver_evs = driver.events();
        assert_eq!(driver_evs[0].span_id, ctx.span_id);
        assert_ne!(evs[0].span_id, driver_evs[0].span_id, "distinct salts keep ids collision-free");
    }

    #[test]
    fn span_ids_are_deterministic_per_identity() {
        let run = |salt| {
            let sink = TraceSink::with_identity(Clock::logical(), 1, salt);
            let _a = sink.span("t", "a");
            let _b = sink.span("t", "b");
            drop((_a, _b));
            sink.events().iter().map(|e| e.span_id).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3), "same salt → same ids");
        assert_ne!(run(3), run(4), "different salt → different ids");
    }

    #[test]
    fn chrome_export_emits_flow_events_for_cross_track_parents() {
        let sink = TraceSink::new(Clock::logical());
        let rpc = sink.span("dist.w0", "rpc.reduce.r0");
        let ctx = rpc.context();
        {
            let _task = sink.span_child_of("w0/reduce.r0.p0", "reduce", ctx);
        }
        drop(rpc);
        let j = sink.to_chrome_json();
        assert_eq!(j.matches("\"ph\":\"s\"").count(), 1, "one flow start: {j}");
        assert_eq!(j.matches("\"ph\":\"f\"").count(), 1, "one flow finish: {j}");
        assert!(j.contains("\"cat\":\"agl.flow\""), "{j}");
        assert!(j.contains("\"sid\":"), "span ids exported: {j}");
        // Same-track nesting must NOT add arrows.
        let sink2 = TraceSink::new(Clock::logical());
        {
            let _outer = sink2.span("driver", "job");
            let _inner = sink2.span("driver", "round0");
        }
        let j2 = sink2.to_chrome_json();
        assert_eq!(j2.matches("\"ph\":\"s\"").count(), 0, "{j2}");
    }

    #[test]
    fn out_of_order_drops_keep_the_open_stack_consistent() {
        let sink = TraceSink::new(Clock::logical());
        let a = sink.span("t", "a");
        let b = sink.span("t", "b");
        drop(a); // dropped before its child — remove-by-id, not pop
        let c = sink.span("t", "c");
        let b_id = b.context().unwrap().span_id;
        assert_ne!(c.context().unwrap().span_id, 0);
        drop(c);
        drop(b);
        let evs = sink.events();
        let c_ev = evs.iter().find(|e| e.name == "c").unwrap();
        assert_eq!(c_ev.parent_id, b_id, "c parents under the still-open b");
    }
}
