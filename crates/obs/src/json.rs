//! Minimal JSON emission helpers (no external deps, no floats-from-nowhere).

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float deterministically (fixed precision, no locale).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn floats_are_fixed_width() {
        assert_eq!(float(1.5), "1.500000");
        assert_eq!(float(f64::NAN), "null");
    }
}
