//! Minimal JSON emission helpers and a strict reader (no external deps,
//! no floats-from-nowhere).
//!
//! The [`Value`] parser exists for `obs-report`: it reloads the Chrome
//! trace and metrics artifacts this crate writes. Numbers keep their raw
//! token so 64-bit span ids round-trip exactly — an `f64` intermediate
//! would silently corrupt ids above 2^53.

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float deterministically (fixed precision, no locale).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value. Object member order is preserved (`Obj` is a
/// vector, not a map) so traversal order is deterministic; numbers keep
/// their raw text (see [`Value::as_u64`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token.
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse `text` strictly: the whole input must be one JSON value.
    pub fn parse(text: &str) -> Result<Value, String> {
        let b = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup (first match, document order).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `u64` — only for non-negative integral
    /// tokens, parsed from the raw text so ids above 2^53 stay exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).map_err(|_| format!("bad number at byte {start}"))?;
    // Validate once; keep the raw token.
    raw.parse::<f64>().map_err(|_| format!("bad number at byte {start}"))?;
    Ok(Value::Num(raw.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    Some(c) => return Err(format!("unsupported escape '\\{}'", *c as char)),
                    None => return Err("unterminated escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8".to_string())?;
                let ch = rest.chars().next().ok_or("invalid utf-8")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn floats_are_fixed_width() {
        assert_eq!(float(1.5), "1.500000");
        assert_eq!(float(f64::NAN), "null");
    }

    #[test]
    fn parses_objects_arrays_and_raw_numbers() {
        let v = Value::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny"}, "t": true, "z": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("z"), Some(&Value::Null));
    }

    #[test]
    fn u64_span_ids_survive_exactly() {
        // 2^63 + 3 is not representable in f64; the raw token must survive.
        let v = Value::parse("{\"sid\":9223372036854775811}").unwrap();
        assert_eq!(v.get("sid").unwrap().as_u64(), Some(9_223_372_036_854_775_811));
        assert!(v.get("sid").unwrap().as_f64().is_some(), "f64 view still available (lossy)");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} junk").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_the_escape_helper() {
        let original = "a\"b\\c\nd\u{1}e";
        let parsed = Value::parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }
}
