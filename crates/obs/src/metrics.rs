//! Counters, gauges and bucketed histograms behind one registry.
//!
//! Metric naming scheme (see DESIGN.md "Observability"): dotted lowercase
//! paths, `<component>.<what>[.<detail>]` — e.g. `map.output_records`,
//! `ps.pull.wait_nanos`, `pipeline.prefetch.occupancy_pct`. Histograms hold
//! raw `u64` observations (nanoseconds, record counts, staleness steps) in
//! either exact linear buckets or log2-scaled buckets with p50/p95/p99
//! snapshots.

use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Bucketing scheme for a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// Bucket `i` counts observations with value exactly `i`; the last
    /// bucket absorbs everything `>= buckets - 1` (overflow). Used where
    /// the value domain is small and exact — e.g. SSP staleness steps.
    Linear {
        /// Number of buckets (the last one is the overflow bucket).
        buckets: usize,
    },
    /// Bucket 0 counts zeros; bucket `k >= 1` counts values in
    /// `[2^(k-1), 2^k)`; the last bucket absorbs the tail. Used for wide
    /// domains like nanosecond latencies.
    Log2 {
        /// Number of buckets (the last one is the overflow bucket).
        buckets: usize,
    },
}

impl HistogramKind {
    fn buckets(self) -> usize {
        match self {
            HistogramKind::Linear { buckets } | HistogramKind::Log2 { buckets } => buckets.max(1),
        }
    }

    fn index(self, v: u64) -> usize {
        let n = self.buckets();
        match self {
            HistogramKind::Linear { .. } => (v as usize).min(n - 1),
            HistogramKind::Log2 { .. } => {
                let k = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
                k.min(n - 1)
            }
        }
    }

    /// Representative (upper-bound) value for bucket `i`.
    fn bucket_value(self, i: usize) -> u64 {
        match self {
            HistogramKind::Linear { .. } => i as u64,
            HistogramKind::Log2 { .. } => {
                if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                }
            }
        }
    }
}

/// A thread-safe bucketed histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    kind: HistogramKind,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Point-in-time view of a histogram, with percentile estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate (bucket upper bound).
    pub p50: u64,
    /// 95th-percentile estimate (bucket upper bound).
    pub p95: u64,
    /// 99th-percentile estimate (bucket upper bound).
    pub p99: u64,
    /// Per-bucket observation counts, in bucket order.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Empty histogram with the given bucketing scheme.
    pub fn new(kind: HistogramKind) -> Self {
        let n = kind.buckets();
        Self {
            kind,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Exact small-domain histogram: bucket `i` = value `i`, last bucket
    /// overflows.
    pub fn linear(buckets: usize) -> Self {
        Self::new(HistogramKind::Linear { buckets })
    }

    /// Log2-scaled histogram covering `[0, 2^(buckets-1))` before overflow.
    pub fn log2(buckets: usize) -> Self {
        Self::new(HistogramKind::Log2 { buckets })
    }

    /// The bucketing scheme this histogram was built with.
    pub fn kind(&self) -> HistogramKind {
        self.kind
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        // agl-lint: allow(atomics) — monotone statistics; concurrent RMWs commute.
        self.counts[self.kind.index(v)].fetch_add(1, Ordering::Relaxed);
        // agl-lint: allow(atomics) — monotone statistics; concurrent RMWs commute.
        self.count.fetch_add(1, Ordering::Relaxed);
        // agl-lint: allow(atomics) — monotone statistics; concurrent RMWs commute.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // agl-lint: allow(atomics) — fetch_max is idempotent-monotone; order is irrelevant.
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of observations so far.
    pub fn count(&self) -> u64 {
        // agl-lint: allow(atomics) — statistical read of a monotone counter; staleness is fine.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values so far.
    pub fn sum(&self) -> u64 {
        // agl-lint: allow(atomics) — statistical read of a monotone counter; staleness is fine.
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest value observed so far.
    pub fn max(&self) -> u64 {
        // agl-lint: allow(atomics) — statistical read of a monotone maximum; staleness is fine.
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket observation counts, in bucket order.
    pub fn bucket_counts(&self) -> Vec<u64> {
        // agl-lint: allow(atomics) — statistical read of monotone buckets; staleness is fine.
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `q * count` (exact for
    /// linear histograms; the observed max caps the overflow bucket).
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let counts = self.bucket_counts();
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.kind.bucket_value(i).min(self.max());
            }
        }
        self.max()
    }

    /// Consistent view of count/sum/max, the p50/p95/p99 estimates, and
    /// the raw bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            buckets: self.bucket_counts(),
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    /// Monotone counter (also used for "max observed" cells via `fetch_max`).
    Counter(Arc<AtomicU64>),
    /// Last-write-wins instantaneous value.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

/// Snapshot value for one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Accumulated counter total.
    Counter(u64),
    /// Last value stored in the gauge.
    Gauge(u64),
    /// Full histogram snapshot (count/sum/max, percentiles, buckets).
    Histogram(HistogramSnapshot),
}

/// A named metric store shared by every instrumented component of a run.
/// Cheap to clone (Arc); all operations are safe from any thread.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry. Same as `default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Metrics are scalars/buckets with no cross-entry invariants, so a
    /// poisoned lock is still safe to read through.
    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Metric>> {
        self.inner.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Metric>> {
        self.inner.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Get-or-create the counter cell `name`. The cell outlives the lock,
    /// so hot paths can hold it and bump without re-looking-up.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(Metric::Counter(c)) = self.read().get(name) {
            return c.clone();
        }
        match self.write().entry(name.to_string()).or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Metric::Counter(c) => c.clone(),
            // Name already registered as a different type: hand back a
            // detached cell rather than panicking in telemetry code.
            _ => Arc::new(AtomicU64::new(0)),
        }
    }

    /// Bump counter `name` by `delta`.
    pub fn add(&self, name: &str, delta: u64) {
        // agl-lint: allow(atomics) — monotone counter bump; concurrent RMWs commute.
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Bump counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Raise counter `name` to at least `value`.
    pub fn counter_max(&self, name: &str, value: u64) {
        // agl-lint: allow(atomics) — fetch_max is idempotent-monotone; order is irrelevant.
        self.counter(name).fetch_max(value, Ordering::Relaxed);
    }

    /// Get-or-create the gauge cell `name`.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(Metric::Gauge(g)) = self.read().get(name) {
            return g.clone();
        }
        match self.write().entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0)))) {
            Metric::Gauge(g) => g.clone(),
            _ => Arc::new(AtomicU64::new(0)),
        }
    }

    /// Store `value` into gauge `name` (last write wins). A gauge is a
    /// published value, not a merged one, so the store is `Release` and
    /// readers use `Acquire`: whatever computed the value is ordered
    /// before any reader that observes it.
    pub fn gauge_set(&self, name: &str, value: u64) {
        self.gauge(name).store(value, Ordering::Release);
    }

    /// Get-or-create histogram `name` with bucketing `kind` (an existing
    /// histogram keeps its original kind).
    pub fn histogram(&self, name: &str, kind: HistogramKind) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.read().get(name) {
            return h.clone();
        }
        match self.write().entry(name.to_string()).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(kind))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Arc::new(Histogram::new(kind)),
        }
    }

    /// Record `v` into a log2 histogram named `name` (40 buckets — up to
    /// ~9 minutes when the unit is nanoseconds).
    pub fn record(&self, name: &str, v: u64) {
        self.histogram(name, HistogramKind::Log2 { buckets: 40 }).record(v);
    }

    /// Current value of counter/gauge `name` (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        match self.read().get(name) {
            // agl-lint: allow(atomics) — statistical read of a monotone counter; staleness is fine.
            Some(Metric::Counter(c)) => c.load(Ordering::Relaxed),
            Some(Metric::Gauge(g)) => g.load(Ordering::Acquire),
            _ => 0,
        }
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.read()
            .iter()
            .map(|(k, m)| {
                let v = match m {
                    // agl-lint: allow(atomics) — statistical read of a monotone counter; staleness is fine.
                    Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Acquire)),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (k.clone(), v)
            })
            .collect()
    }

    /// Deterministic JSON export: `{"counters":{},"gauges":{},"histograms":{}}`.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, v) in &snap {
            let key = json::escape(name);
            match v {
                MetricValue::Counter(c) => counters.push(format!("\"{key}\":{c}")),
                MetricValue::Gauge(g) => gauges.push(format!("\"{key}\":{g}")),
                MetricValue::Histogram(h) => {
                    let buckets = h.buckets.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",");
                    hists.push(format!(
                        "\"{key}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{buckets}]}}",
                        h.count, h.sum, h.max, h.p50, h.p95, h.p99
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }

    /// Human-readable listing, one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.snapshot() {
            match v {
                MetricValue::Counter(c) => out.push_str(&format!("  {name:<44} {c}\n")),
                MetricValue::Gauge(g) => out.push_str(&format!("  {name:<44} {g} (gauge)\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "  {name:<44} n={} p50={} p95={} p99={} max={}\n",
                    h.count, h.p50, h.p95, h.p99, h.max
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_buckets_exactly() {
        let h = Histogram::linear(4); // values 0,1,2 exact; >=3 overflow
        for v in [0, 1, 1, 2, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.max(), 9);
    }

    #[test]
    fn log2_histogram_bucket_boundaries() {
        let h = Histogram::log2(6);
        // 0→b0, 1→b1, 2,3→b2, 4..8→b3, 8..16→b4, everything ≥16→b5.
        for v in [0, 1, 2, 3, 4, 7, 8, 15, 16, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn percentiles_on_linear_are_exact() {
        let h = Histogram::linear(12);
        for v in 0..10 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 4);
        assert_eq!(h.percentile(1.0), 9);
        assert_eq!(h.percentile(0.0), 0);
        let s = h.snapshot();
        assert_eq!(s.p50, 4);
        assert_eq!(s.p99, 9);
    }

    #[test]
    fn percentile_of_empty_is_zero() {
        let h = Histogram::log2(8);
        assert_eq!(h.percentile(0.99), 0);
    }

    #[test]
    fn log2_percentile_capped_by_observed_max() {
        let h = Histogram::log2(40);
        h.record(1000); // bucket 10 (values 512..1024), upper bound 1023
        assert_eq!(h.percentile(0.5), 1000, "upper bound capped at observed max");
    }

    #[test]
    fn registry_counters_and_gauges() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 4);
        m.counter_max("peak", 7);
        m.counter_max("peak", 3);
        m.gauge_set("g", 42);
        m.gauge_set("g", 17);
        assert_eq!(m.get("a"), 5);
        assert_eq!(m.get("peak"), 7);
        assert_eq!(m.get("g"), 17);
        assert_eq!(m.get("missing"), 0);
    }

    #[test]
    fn registry_shared_across_clones_and_threads() {
        let m = MetricsRegistry::new();
        let cell = m.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m2 = m.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        m2.inc("n");
                    }
                });
            }
        });
        assert_eq!(cell.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn type_collision_does_not_panic() {
        let m = MetricsRegistry::new();
        m.inc("x");
        // Asking for "x" as a histogram hands back a detached instance.
        let h = m.histogram("x", HistogramKind::Log2 { buckets: 4 });
        h.record(1);
        assert_eq!(m.get("x"), 1, "counter untouched");
    }

    #[test]
    fn json_export_is_deterministic_and_sorted() {
        let m = MetricsRegistry::new();
        m.inc("z.count");
        m.gauge_set("a.gauge", 3);
        m.record("lat", 7);
        let j1 = m.to_json();
        let j2 = m.to_json();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"counters\":{\"z.count\":1}"), "{j1}");
        assert!(j1.contains("\"a.gauge\":3"));
        assert!(j1.contains("\"lat\":{\"count\":1,"));
    }
}
