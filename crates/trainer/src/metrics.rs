//! Evaluation metrics matching the paper's protocol (§4.1.2): accuracy on
//! Cora, micro-F1 on PPI, AUC on UUG.

use agl_nn::Loss;
use agl_tensor::Matrix;

/// Classification accuracy for one-hot labels (argmax match).
pub fn accuracy(logits: &Matrix, labels: &Matrix) -> f64 {
    assert_eq!(logits.shape(), labels.shape());
    if logits.rows() == 0 {
        return 0.0;
    }
    let pred = logits.argmax_rows();
    let truth = labels.argmax_rows();
    let hits = pred.iter().zip(&truth).filter(|(a, b)| a == b).count();
    hits as f64 / logits.rows() as f64
}

/// Micro-averaged F1 for multi-label outputs: predictions are `logit > 0`
/// (sigmoid > 0.5).
pub fn micro_f1(logits: &Matrix, labels: &Matrix) -> f64 {
    assert_eq!(logits.shape(), labels.shape());
    let (mut tp, mut fp, mut r#fn) = (0u64, 0u64, 0u64);
    for (&z, &y) in logits.as_slice().iter().zip(labels.as_slice()) {
        let p = z > 0.0;
        let t = y > 0.5;
        match (p, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => r#fn += 1,
            (false, false) => {}
        }
    }
    if 2 * tp + fp + r#fn == 0 {
        return 0.0;
    }
    2.0 * tp as f64 / (2 * tp + fp + r#fn) as f64
}

/// Macro-averaged F1 for multi-label outputs: per-label F1 (prediction =
/// `logit > 0`), averaged over labels that appear at least once.
pub fn macro_f1(logits: &Matrix, labels: &Matrix) -> f64 {
    assert_eq!(logits.shape(), labels.shape());
    let cols = logits.cols();
    let mut sum = 0.0f64;
    let mut counted = 0usize;
    for c in 0..cols {
        let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
        let mut has_pos = false;
        for r in 0..logits.rows() {
            let p = logits[(r, c)] > 0.0;
            let t = labels[(r, c)] > 0.5;
            has_pos |= t;
            match (p, t) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fn_ += 1,
                (false, false) => {}
            }
        }
        if has_pos {
            counted += 1;
            if 2 * tp + fp + fn_ > 0 {
                sum += 2.0 * tp as f64 / (2 * tp + fp + fn_) as f64;
            }
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

/// Precision and recall for binary predictions (`logit > 0`).
pub fn precision_recall(logits: &Matrix, labels: &Matrix) -> (f64, f64) {
    assert_eq!(logits.shape(), labels.shape());
    let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
    for (&z, &y) in logits.as_slice().iter().zip(labels.as_slice()) {
        match (z > 0.0, y > 0.5) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    (precision, recall)
}

/// Area under the ROC curve for binary labels, computed by the rank
/// (Mann–Whitney) method with midrank tie handling.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    // Midranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i + 1;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let midrank = ((i + 1 + j) as f64) / 2.0; // average of ranks i+1..=j
        for &idx in &order[i..j] {
            if labels[idx] > 0.5 {
                rank_sum_pos += midrank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (n_pos as f64) * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Bundle of evaluation results; which fields are populated depends on the
/// task shape.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    pub loss: f64,
    /// Multi-class (softmax) tasks.
    pub accuracy: Option<f64>,
    /// Multi-label (sigmoid, >1 output) tasks.
    pub micro_f1: Option<f64>,
    /// Binary (sigmoid, 1 output) tasks.
    pub auc: Option<f64>,
    pub n_examples: usize,
}

impl Metrics {
    /// Compute from collected logits/labels given the training loss.
    pub fn compute(loss_kind: Loss, logits: &Matrix, labels: &Matrix) -> Self {
        let (loss, _) = loss_kind.forward_backward(logits, labels);
        let mut m = Metrics { loss: loss as f64, n_examples: logits.rows(), ..Default::default() };
        match loss_kind {
            Loss::SoftmaxCrossEntropy => m.accuracy = Some(accuracy(logits, labels)),
            Loss::BceWithLogits if logits.cols() == 1 => {
                let scores: Vec<f32> = logits.as_slice().to_vec();
                m.auc = Some(auc(&scores, labels.as_slice()));
            }
            Loss::BceWithLogits => m.micro_f1 = Some(micro_f1(logits, labels)),
        }
        m
    }

    /// The headline number for this task (accuracy / micro-F1 / AUC).
    pub fn headline(&self) -> f64 {
        self.accuracy.or(self.micro_f1).or(self.auc).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[5.0, 4.0]]);
        let labels = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 1.0]]);
        assert!((accuracy(&logits, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn micro_f1_perfect_and_empty() {
        let logits = Matrix::from_rows(&[&[1.0, -1.0], &[-1.0, 1.0]]);
        let labels = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!((micro_f1(&logits, &labels) - 1.0).abs() < 1e-12);
        let none = Matrix::from_rows(&[&[-1.0, -1.0]]);
        let zeros = Matrix::from_rows(&[&[0.0, 0.0]]);
        assert_eq!(micro_f1(&none, &zeros), 0.0);
    }

    #[test]
    fn micro_f1_mixed() {
        // tp=1 (col0 row0), fp=1 (col1 row0), fn=1 (col0 row1).
        let logits = Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0]]);
        let labels = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        assert!((micro_f1(&logits, &labels) - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let labels = [1.0f32, 1.0, 0.0, 0.0];
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &labels) - 1.0).abs() < 1e-12);
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &labels) - 0.0).abs() < 1e-12);
        // All scores tied: AUC 0.5 by midranks.
        assert!((auc(&[0.5; 4], &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_handles_partial_ties() {
        // pos: {0.8, 0.5}, neg: {0.5, 0.1}: pairs: (0.8>0.5)=1, (0.8>0.1)=1,
        // (0.5=0.5)=0.5, (0.5>0.1)=1 -> 3.5/4.
        let v = auc(&[0.8, 0.5, 0.5, 0.1], &[1.0, 1.0, 0.0, 0.0]);
        assert!((v - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn macro_f1_averages_per_label() {
        // Label 0: perfect (F1 = 1). Label 1: tp=1, fn=1 -> F1 = 2/3.
        let logits = Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, -1.0], &[1.0, -1.0]]);
        let labels = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0], &[1.0, 0.0]]);
        let got = macro_f1(&logits, &labels);
        assert!((got - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-9, "{got}");
        // Labels never positive are excluded from the average.
        let no_pos = Matrix::from_rows(&[&[0.0, 0.0]]);
        let some_logits = Matrix::from_rows(&[&[1.0, -1.0]]);
        assert_eq!(macro_f1(&some_logits, &no_pos), 0.0);
    }

    #[test]
    fn precision_recall_basic() {
        let logits = Matrix::from_rows(&[&[1.0], &[1.0], &[-1.0], &[-1.0]]);
        let labels = Matrix::from_rows(&[&[1.0], &[0.0], &[1.0], &[0.0]]);
        let (p, r) = precision_recall(&logits, &labels);
        assert!((p - 0.5).abs() < 1e-9);
        assert!((r - 0.5).abs() < 1e-9);
        let (p0, r0) = precision_recall(&Matrix::from_rows(&[&[-1.0]]), &Matrix::from_rows(&[&[0.0]]));
        assert_eq!((p0, r0), (0.0, 0.0));
    }

    #[test]
    fn metrics_compute_picks_the_right_headline() {
        let logits = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0]]);
        let onehot = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let m = Metrics::compute(Loss::SoftmaxCrossEntropy, &logits, &onehot);
        assert_eq!(m.accuracy, Some(1.0));
        assert_eq!(m.headline(), 1.0);

        let bin_logits = Matrix::from_rows(&[&[0.7], &[-0.3]]);
        let bin_labels = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let m = Metrics::compute(Loss::BceWithLogits, &bin_logits, &bin_labels);
        assert_eq!(m.auc, Some(1.0));
        assert!(m.micro_f1.is_none());

        let ml = Metrics::compute(Loss::BceWithLogits, &logits, &onehot);
        assert!(ml.micro_f1.is_some() && ml.auc.is_none());
    }
}
