//! Link prediction on GraphFeatures — an extension beyond the paper's node
//! classification evaluation, covering the *"link property predictions"*
//! workload its introduction motivates (and Ant's DSSLP system — the paper's
//! reference 25 — serves in production).
//!
//! The GraphFeature abstraction carries over unchanged: a training example
//! for edge `(u, v)` is the *union* of the two endpoints' k-hop
//! neighborhoods (both information-complete, so the pair example is too).
//! The model is any [`GnnModel`] whose "prediction head" projects into an
//! embedding space; an edge's score is the sigmoid of the endpoint
//! embeddings' dot product.

use crate::metrics::auc;
use crate::pipeline::PrepSpec;
use agl_flat::builder::SubgraphBuilder;
use agl_flat::{decode_graph_feature, encode_graph_feature, TrainingExample};
use agl_graph::{Graph, NodeId};
use agl_nn::{Adam, GnnModel, Optimizer};
use agl_tensor::ops::sigmoid;
use agl_tensor::rng::derive_seed;
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, ExecCtx, Matrix};
use std::collections::HashMap;

/// One link example: the candidate edge plus the merged pair GraphFeature.
#[derive(Debug, Clone)]
pub struct LinkExample {
    pub src: NodeId,
    pub dst: NodeId,
    /// 1.0 = edge exists, 0.0 = negative sample.
    pub label: f32,
    /// GraphFeature with **two** targets: `src` first, `dst` second.
    pub graph_feature: Vec<u8>,
}

/// Build pair examples from per-node GraphFeatures (as produced by
/// GraphFlat): positives are real directed edges, negatives are uniformly
/// sampled non-edges. Endpoints must all have a GraphFeature.
pub fn build_link_examples(
    graph: &Graph,
    node_features: &[TrainingExample],
    n_pos: usize,
    n_neg: usize,
    seed: u64,
) -> Vec<LinkExample> {
    let by_id: HashMap<NodeId, &TrainingExample> = node_features.iter().map(|e| (e.target, e)).collect();
    let mut rng = seeded_rng(derive_seed(seed, 0x11AB));
    let mut out = Vec::with_capacity(n_pos + n_neg);
    let pair = |src: NodeId, dst: NodeId, label: f32, by_id: &HashMap<NodeId, &TrainingExample>| {
        // agl-lint: allow(no-panic) — GraphFeatures come straight from GraphFlat's encoder; see module docs.
        let a = decode_graph_feature(&by_id[&src].graph_feature).expect("src GraphFeature");
        // agl-lint: allow(no-panic) — same provenance as above.
        let b = decode_graph_feature(&by_id[&dst].graph_feature).expect("dst GraphFeature");
        let mut builder = SubgraphBuilder::new();
        builder.absorb(&a);
        builder.absorb(&b);
        let merged = builder.build(&[src, dst]);
        LinkExample { src, dst, label, graph_feature: encode_graph_feature(&merged) }
    };
    // Positives: sample directed edges whose endpoints both have features.
    let n_nodes = graph.n_nodes() as u32;
    let mut guard = 0;
    while out.len() < n_pos && guard < n_pos * 50 {
        guard += 1;
        let v = rng.gen_range(0..n_nodes);
        let (srcs, _) = graph.in_neighbors(v);
        if srcs.is_empty() {
            continue;
        }
        let u = srcs[rng.gen_range(0..srcs.len())];
        let (src, dst) = (graph.node_id(u), graph.node_id(v));
        if by_id.contains_key(&src) && by_id.contains_key(&dst) {
            out.push(pair(src, dst, 1.0, &by_id));
        }
    }
    // Negatives: uniform non-edges over featured nodes.
    let featured: Vec<NodeId> = node_features.iter().map(|e| e.target).collect();
    let mut negs = 0;
    guard = 0;
    while negs < n_neg && guard < n_neg * 50 {
        guard += 1;
        let src = featured[rng.gen_range(0..featured.len())];
        let dst = featured[rng.gen_range(0..featured.len())];
        if src == dst {
            continue;
        }
        let (Some(v), Some(u)) = (graph.local(dst), graph.local(src)) else {
            continue; // featured node absent from the graph — skip, never panic
        };
        let (srcs, _) = graph.in_neighbors(v);
        if srcs.contains(&u) {
            continue; // actually an edge
        }
        out.push(pair(src, dst, 0.0, &by_id));
        negs += 1;
    }
    out
}

/// Dot-product link predictor over a GNN encoder.
pub struct LinkPredictor {
    /// Encoder; its (linear) head output is the edge-embedding space.
    pub model: GnnModel,
    pub lr: f32,
    pub epochs: usize,
    pub batch_size: usize,
    pub seed: u64,
}

impl LinkPredictor {
    pub fn new(model: GnnModel) -> Self {
        Self { model, lr: 0.01, epochs: 10, batch_size: 16, seed: 5 }
    }

    fn spec(&self) -> PrepSpec {
        PrepSpec { n_layers: self.model.n_layers(), prep: self.model.layers()[0].adj_prep(), label_dim: 0, prune: true }
    }

    /// Score a batch of pair examples: `σ(e_src · e_dst)` per example.
    /// Returns scores and, when `train_pass` is given, also accumulates
    /// gradients for the whole encoder.
    fn forward_scores(&mut self, batch: &[LinkExample], train: bool, rng: &mut impl Rng) -> (Vec<f32>, f32) {
        // vectorize() asserts one target per example; pair features carry
        // two targets, so go through the subgraph merge directly.
        let mut builder = SubgraphBuilder::new();
        let mut targets_global = Vec::with_capacity(2 * batch.len());
        for l in batch {
            // agl-lint: allow(no-panic) — pair features are encoded by `link_examples` above.
            let sub = decode_graph_feature(&l.graph_feature).expect("pair GraphFeature");
            builder.absorb(&sub);
            targets_global.push(l.src);
            targets_global.push(l.dst);
        }
        // Deduplicate target list (builder.build requires presence, not
        // uniqueness of ids — but local indices must map per occurrence).
        let merged = builder.build(&dedup_keep_order(&targets_global));
        let local_of: HashMap<NodeId, usize> =
            merged.target_ids().into_iter().enumerate().map(|(i, id)| (id, i)).collect();
        let batch_vec = crate::vectorize::from_subgraph(&merged, Matrix::zeros(local_of.len(), 0));
        let spec = self.spec();
        let prepared_adj = agl_nn::layer::prepare_adj(&batch_vec.adj, spec.prep);
        let adjs: Vec<agl_tensor::Csr> = if spec.prune {
            let masks = crate::pruning::batch_keep_masks(&batch_vec, spec.n_layers);
            (0..spec.n_layers).map(|k| prepared_adj.filter_entries(|d, _| masks[k][d as usize])).collect()
        } else {
            vec![prepared_adj; spec.n_layers]
        };
        let ctx = ExecCtx::sequential();
        let pass = self.model.forward(&adjs, &batch_vec.features, &batch_vec.targets, train, &ctx, rng);
        // Embeddings live in `logits` (linear head = projection).
        let emb = &pass.logits;
        let dim = emb.cols();
        let mut scores = Vec::with_capacity(batch.len());
        let mut loss = 0.0f32;
        let mut d_emb = Matrix::zeros(emb.rows(), dim);
        for l in batch.iter() {
            let a = local_of[&l.src];
            let b = local_of[&l.dst];
            let dot: f32 = emb.row(a).iter().zip(emb.row(b)).map(|(&x, &y)| x * y).sum();
            let p = sigmoid(dot);
            scores.push(p);
            loss += -(l.label * p.max(1e-7).ln() + (1.0 - l.label) * (1.0 - p).max(1e-7).ln());
            if train {
                // dL/d(dot) for sigmoid+BCE folds to (p - y); the explicit
                // sigmoid' never appears.
                let d_dot = (p - l.label) / batch.len() as f32;
                for c in 0..dim {
                    d_emb[(a, c)] += d_dot * emb[(b, c)];
                    d_emb[(b, c)] += d_dot * emb[(a, c)];
                }
            }
        }
        if train {
            self.model.backward(&adjs, &pass, &d_emb, &ctx);
        }
        (scores, loss / batch.len() as f32)
    }

    /// Train on link examples; returns the per-epoch mean loss.
    pub fn train(&mut self, examples: &[LinkExample]) -> Vec<f32> {
        let mut opt = Adam::new(self.lr);
        let mut losses = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            let mut rng = seeded_rng(derive_seed(self.seed, epoch as u64));
            let mut loss_sum = 0.0;
            let mut batches = 0;
            for chunk in examples.chunks(self.batch_size) {
                self.model.zero_grads();
                let (_, loss) = self.forward_scores(chunk, true, &mut rng);
                let mut p = self.model.param_vector();
                opt.step(&mut p, &self.model.grad_vector());
                self.model.load_param_vector(&p);
                loss_sum += loss;
                batches += 1;
            }
            losses.push(loss_sum / batches as f32);
        }
        losses
    }

    /// AUC over held-out link examples.
    pub fn evaluate(&mut self, examples: &[LinkExample]) -> f64 {
        let mut rng = seeded_rng(0);
        let mut scores = Vec::with_capacity(examples.len());
        let mut labels = Vec::with_capacity(examples.len());
        for chunk in examples.chunks(self.batch_size) {
            let (s, _) = self.forward_scores(chunk, false, &mut rng);
            scores.extend(s);
            labels.extend(chunk.iter().map(|l| l.label));
        }
        auc(&scores, &labels)
    }
}

fn dedup_keep_order(ids: &[NodeId]) -> Vec<NodeId> {
    let mut seen = std::collections::HashSet::new();
    ids.iter().copied().filter(|id| seen.insert(*id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_flat::{FlatConfig, GraphFlat, TargetSpec};
    use agl_graph::{EdgeTable, NodeTable};
    use agl_nn::{Loss, ModelConfig, ModelKind};

    /// Two dense communities with few cross links: edges are predictable
    /// from community membership, which features encode noisily.
    fn community_graph() -> Graph {
        let n: u64 = 60;
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut rng = seeded_rng(9);
        let mut feats = Matrix::zeros(n as usize, 4);
        for i in 0..n as usize {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            for d in 0..4 {
                feats[(i, d)] = sign * 0.6 + 0.5 * rng.gen_range(-1.0..1.0f32);
            }
        }
        let nodes = NodeTable::new(ids, feats, None);
        let mut pairs = Vec::new();
        for i in (0..n).step_by(2) {
            for j in (0..n).step_by(2) {
                if i != j && rng.gen::<f32>() < 0.25 {
                    pairs.push((i, j));
                }
            }
        }
        for i in (1..n).step_by(2) {
            for j in (1..n).step_by(2) {
                if i != j && rng.gen::<f32>() < 0.25 {
                    pairs.push((i, j));
                }
            }
        }
        Graph::from_tables(&nodes, &EdgeTable::from_pairs(pairs))
    }

    #[test]
    fn link_prediction_learns_community_structure() {
        let graph = community_graph();
        let (nodes, edges) = graph.to_tables();
        let flat = GraphFlat::new(FlatConfig { k_hops: 2, ..FlatConfig::default() })
            .run(&nodes, &edges, &TargetSpec::All)
            .unwrap();
        let mut examples = build_link_examples(&graph, &flat.examples, 60, 60, 3);
        assert!(examples.len() >= 100, "got {}", examples.len());
        // Positives come first from the builder; mix before splitting.
        use agl_tensor::rng::SliceRandom;
        examples.shuffle(&mut seeded_rng(7));
        let (train, test) = examples.split_at(examples.len() * 3 / 4);

        let cfg = ModelConfig::new(ModelKind::Sage, 4, 8, 8, 2, Loss::BceWithLogits);
        let mut lp = LinkPredictor::new(agl_nn::GnnModel::new(cfg));
        lp.epochs = 12;
        lp.lr = 0.02;
        let before = lp.evaluate(test);
        let losses = lp.train(train);
        let after = lp.evaluate(test);
        assert!(losses.last().unwrap() < losses.first().unwrap(), "loss fell: {losses:?}");
        assert!(after > 0.8, "test AUC {after} (was {before})");
        assert!(after > before, "training improved AUC: {before} -> {after}");
    }

    #[test]
    fn pair_examples_carry_both_targets() {
        let graph = community_graph();
        let (nodes, edges) = graph.to_tables();
        let flat = GraphFlat::new(FlatConfig { k_hops: 1, ..FlatConfig::default() })
            .run(&nodes, &edges, &TargetSpec::All)
            .unwrap();
        let examples = build_link_examples(&graph, &flat.examples, 10, 10, 1);
        for ex in &examples {
            let sub = decode_graph_feature(&ex.graph_feature).unwrap();
            let targets = sub.target_ids();
            assert_eq!(targets, vec![ex.src, ex.dst]);
            assert!(sub.validate().is_ok());
        }
        let n_pos = examples.iter().filter(|e| e.label > 0.5).count();
        assert_eq!(n_pos, 10);
    }
}
