//! Standalone-mode trainer (the configuration Table 4 measures): one
//! process, batches streamed from the GraphFeature store, all three
//! optimisation strategies individually switchable.

use crate::metrics::Metrics;
use crate::pipeline::{prepare_batch, BatchPipeline, PrepSpec, PreparedBatch};
use agl_flat::TrainingExample;
use agl_mapreduce::EngineConfig;
use agl_nn::{Adam, GnnModel, Optimizer};
use agl_obs::{Clock, Obs};
use agl_tensor::rng::derive_seed;
use agl_tensor::rng::SliceRandom;
use agl_tensor::{seeded_rng, ExecCtx, Matrix};
use std::sync::Arc;
use std::time::Duration;

/// Training knobs — the Table 4 ablation axes plus the usual hyper-params.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    pub batch_size: usize,
    pub epochs: usize,
    pub lr: f32,
    /// Graph pruning (`+pruning`).
    pub pruning: bool,
    /// Edge partitions / aggregation threads; 1 disables (`+partition` ⇒ >1).
    pub partitions: usize,
    /// Prefetch pipeline (`AGL_base` keeps this on — the paper's baseline
    /// "trains only with the pipeline strategy").
    pub pipeline: bool,
    /// Worker-coordination mode for distributed training (`DistTrainer`);
    /// the standalone `LocalTrainer` has a single worker and ignores it.
    pub consistency: agl_ps::Consistency,
    /// Shared engine knobs. The trainer consumes `engine.seed` (batch
    /// shuffle), `engine.obs` (epoch/pipeline spans, PS metrics) and the
    /// effective clock; the MapReduce task counts only matter to the
    /// flatten/infer stages but ride along so one [`EngineConfig`] can be
    /// written across a whole job.
    pub engine: EngineConfig,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            batch_size: 32,
            epochs: 10,
            lr: 0.01,
            pruning: false,
            partitions: 1,
            pipeline: true,
            consistency: agl_ps::Consistency::Sync,
            // Seed 7 is the historical `shuffle_seed` default; keeping it
            // preserves every seeded training curve bit-for-bit.
            engine: EngineConfig::seeded(7),
        }
    }
}

impl TrainOptions {
    /// Builder-style obs-handle override (writes `engine.obs`).
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.engine.obs = obs;
        self
    }

    /// Builder-style shuffle-seed override (writes `engine.seed`).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Builder-style engine override.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// The configured obs handle.
    pub fn obs(&self) -> &Obs {
        &self.engine.obs
    }

    /// Epoch-timing source: the obs handle's clock when one is attached
    /// (keeping logical-clock runs wallclock-free), monotonic otherwise.
    pub(crate) fn clock(&self) -> Clock {
        self.engine.effective_clock()
    }

    fn ctx(&self) -> ExecCtx {
        let base = if self.partitions > 1 { ExecCtx::parallel(self.partitions) } else { ExecCtx::sequential() };
        base.with_obs(self.engine.obs.clone())
    }

    fn spec(&self, model: &GnnModel) -> PrepSpec {
        PrepSpec {
            n_layers: model.n_layers(),
            prep: model.layers()[0].adj_prep(),
            label_dim: model.config().out_dim,
            prune: self.pruning,
        }
    }
}

/// Per-epoch record.
#[derive(Debug, Clone)]
pub struct EpochStats {
    pub epoch: usize,
    /// Mean batch loss.
    pub loss: f64,
    pub duration: Duration,
    pub batches: usize,
}

/// Training history.
#[derive(Debug, Clone)]
pub struct TrainResult {
    pub epochs: Vec<EpochStats>,
}

impl TrainResult {
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |e| e.loss)
    }

    /// Mean epoch duration, skipping the first (warm-up) epoch when there
    /// are enough — the Table 4 measurement convention.
    pub fn mean_epoch_time(&self) -> Duration {
        let skip = usize::from(self.epochs.len() > 2);
        let rest = &self.epochs[skip..];
        if rest.is_empty() {
            return Duration::ZERO;
        }
        rest.iter().map(|e| e.duration).sum::<Duration>() / rest.len() as u32
    }
}

/// Standalone trainer.
#[derive(Debug, Clone)]
pub struct LocalTrainer {
    pub opts: TrainOptions,
}

impl LocalTrainer {
    pub fn new(opts: TrainOptions) -> Self {
        assert!(opts.batch_size > 0 && opts.epochs > 0);
        Self { opts }
    }

    /// Batch index plan for one epoch (shuffled).
    fn plan(&self, n: usize, epoch: usize) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = seeded_rng(derive_seed(self.opts.engine.seed, epoch as u64));
        idx.shuffle(&mut rng);
        idx.chunks(self.opts.batch_size).map(<[usize]>::to_vec).collect()
    }

    /// Train in place; returns per-epoch stats.
    pub fn train(&self, model: &mut GnnModel, examples: &[TrainingExample]) -> TrainResult {
        self.train_with_callback(model, examples, |_, _| {})
    }

    /// Train, invoking `after_epoch(epoch, model)` after each epoch (used to
    /// collect validation curves).
    pub fn train_with_callback(
        &self,
        model: &mut GnnModel,
        examples: &[TrainingExample],
        mut after_epoch: impl FnMut(usize, &GnnModel),
    ) -> TrainResult {
        assert!(!examples.is_empty(), "no training examples");
        let mut opt = Adam::new(self.opts.lr);
        let ctx = self.opts.ctx();
        let spec = self.opts.spec(model);
        let shared: Arc<Vec<TrainingExample>> = Arc::new(examples.to_vec());
        let clock = self.opts.clock();
        let mut epochs = Vec::with_capacity(self.opts.epochs);
        for epoch in 0..self.opts.epochs {
            let start = clock.now();
            let mut epoch_span = if self.opts.engine.obs.is_enabled() {
                self.opts.engine.obs.span("trainer", "train.epoch")
            } else {
                agl_obs::Span::disabled()
            };
            let order = self.plan(examples.len(), epoch);
            let n_batches = order.len();
            let mut rng = seeded_rng(derive_seed(self.opts.engine.seed ^ 0xD07, epoch as u64));
            let mut loss_sum = 0.0f64;
            let mut step = |prepared: PreparedBatch, model: &mut GnnModel, opt: &mut Adam| {
                model.zero_grads();
                let pass = model.forward(
                    &prepared.adjs,
                    &prepared.batch.features,
                    &prepared.batch.targets,
                    true,
                    &ctx,
                    &mut rng,
                );
                let (loss, grad) = model.loss(&pass.logits, &prepared.batch.labels);
                model.backward(&prepared.adjs, &pass, &grad, &ctx);
                let mut params = model.param_vector();
                opt.step(&mut params, &model.grad_vector());
                model.load_param_vector(&params);
                loss_sum += loss as f64;
            };
            if self.opts.pipeline {
                for prepared in
                    BatchPipeline::spawn_with_obs(shared.clone(), order, spec, 2, self.opts.engine.obs.clone())
                {
                    step(prepared, model, &mut opt);
                }
            } else {
                for batch_idx in order {
                    let batch: Vec<TrainingExample> = batch_idx.iter().map(|&i| shared[i].clone()).collect();
                    step(prepare_batch(&batch, &spec), model, &mut opt);
                }
            }
            epoch_span.counter("batches", n_batches as u64);
            drop(epoch_span);
            self.opts.engine.obs.metric_add("trainer.epochs", 1);
            epochs.push(EpochStats {
                epoch,
                loss: loss_sum / n_batches as f64,
                duration: Duration::from_nanos(clock.since(start)),
                batches: n_batches,
            });
            after_epoch(epoch, model);
        }
        TrainResult { epochs }
    }

    /// Train with validation-based early stopping — the paper's protocol of
    /// a maximum epoch budget with the best-validation model kept (§4.1.2
    /// trains "at a maximum of 200 epochs").
    ///
    /// Stops after `patience` epochs without improvement of the validation
    /// headline metric; the model is left at the *best* parameters seen.
    /// Returns the history and the best validation metrics.
    pub fn train_early_stopping(
        &self,
        model: &mut GnnModel,
        train: &[TrainingExample],
        val: &[TrainingExample],
        patience: usize,
    ) -> (TrainResult, Metrics) {
        let mut best: Option<(Metrics, Vec<f32>)> = None;
        let mut since_best = 0usize;
        let mut stop_at = None;
        let opts = self.opts.clone();
        let result = self.train_with_callback(model, train, |epoch, m| {
            if stop_at.is_some() {
                return; // budget exhausted; remaining epochs are no-ops below
            }
            let metrics = Self::evaluate(m, val, &opts);
            let improved = best.as_ref().is_none_or(|(b, _)| metrics.headline() > b.headline());
            if improved {
                best = Some((metrics, m.param_vector()));
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    stop_at = Some(epoch);
                }
            }
        });
        let Some((best_metrics, best_params)) = best else {
            // Unreachable in practice: the constructor asserts `epochs > 0`
            // and the first epoch always improves on `None` — but fall back
            // to evaluating the current parameters rather than aborting.
            return (result, Self::evaluate(model, val, &opts));
        };
        model.load_param_vector(&best_params);
        (result, best_metrics)
    }

    /// Evaluate a model over examples (eval mode, no dropout), producing the
    /// task-appropriate metrics.
    pub fn evaluate(model: &GnnModel, examples: &[TrainingExample], opts: &TrainOptions) -> Metrics {
        assert!(!examples.is_empty(), "no evaluation examples");
        let ctx = opts.ctx();
        let spec = opts.spec(model);
        let out_dim = model.config().out_dim;
        let mut logits = Matrix::zeros(examples.len(), out_dim);
        let mut labels = Matrix::zeros(examples.len(), out_dim);
        let mut row = 0;
        let mut rng = seeded_rng(0);
        for chunk in examples.chunks(opts.batch_size) {
            let prepared = prepare_batch(chunk, &spec);
            let pass =
                model.forward(&prepared.adjs, &prepared.batch.features, &prepared.batch.targets, false, &ctx, &mut rng);
            for i in 0..chunk.len() {
                logits.row_mut(row).copy_from_slice(pass.logits.row(i));
                labels.row_mut(row).copy_from_slice(prepared.batch.labels.row(i));
                row += 1;
            }
        }
        Metrics::compute(model.config().loss, &logits, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_flat::encode_graph_feature;
    use agl_graph::{NodeId, SubEdge, Subgraph};
    use agl_nn::{Loss, ModelConfig, ModelKind};

    /// Tiny learnable task: target's label equals the sign pattern of its
    /// neighbor's features.
    fn dataset(n: usize) -> Vec<TrainingExample> {
        (0..n as u64)
            .map(|i| {
                let class = (i % 2) as usize;
                let sign = if class == 0 { 1.0 } else { -1.0 };
                let sub = Subgraph {
                    target_locals: vec![0],
                    node_ids: vec![NodeId(i), NodeId(i + 10_000)],
                    features: Matrix::from_rows(&[&[0.1, -0.1], &[sign, sign * 0.5]]),
                    edges: vec![SubEdge { src: 1, dst: 0, weight: 1.0 }],
                    edge_features: None,
                };
                let mut label = vec![0.0; 2];
                label[class] = 1.0;
                TrainingExample { target: NodeId(i), label, graph_feature: encode_graph_feature(&sub) }
            })
            .collect()
    }

    fn model() -> GnnModel {
        GnnModel::new(ModelConfig::new(ModelKind::Gcn, 2, 8, 2, 2, Loss::SoftmaxCrossEntropy))
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let data = dataset(64);
        let mut m = model();
        let opts = TrainOptions { epochs: 20, lr: 0.05, ..TrainOptions::default() };
        let result = LocalTrainer::new(opts.clone()).train(&mut m, &data);
        assert!(result.final_loss() < result.epochs[0].loss * 0.5, "loss halved");
        let metrics = LocalTrainer::evaluate(&m, &data, &opts);
        assert!(metrics.accuracy.unwrap() > 0.9, "accuracy {:?}", metrics.accuracy);
    }

    #[test]
    fn all_ablation_configs_learn_the_same_task() {
        let data = dataset(32);
        for (pruning, partitions, pipeline) in [(false, 1, true), (true, 1, true), (false, 3, true), (true, 3, false)] {
            let mut m = model();
            let opts = TrainOptions { epochs: 12, lr: 0.05, pruning, partitions, pipeline, ..TrainOptions::default() };
            LocalTrainer::new(opts.clone()).train(&mut m, &data);
            let metrics = LocalTrainer::evaluate(&m, &data, &opts);
            assert!(
                metrics.accuracy.unwrap() > 0.85,
                "pruning={pruning} partitions={partitions} pipeline={pipeline}: {:?}",
                metrics.accuracy
            );
        }
    }

    #[test]
    fn pruning_and_partitioning_do_not_change_gradients() {
        // One epoch over identical batches: the optimisations are exact, so
        // final parameters must match (partitioned spmm is bit-identical;
        // pruning removes only dead rows).
        let data = dataset(16);
        let run = |pruning: bool, partitions: usize| {
            let mut m = model();
            let opts =
                TrainOptions { epochs: 2, lr: 0.05, pruning, partitions, pipeline: false, ..TrainOptions::default() };
            LocalTrainer::new(opts).train(&mut m, &data);
            m.param_vector()
        };
        let base = run(false, 1);
        let pruned = run(true, 1);
        let partitioned = run(false, 4);
        for (i, ((a, b), c)) in base.iter().zip(&pruned).zip(&partitioned).enumerate() {
            assert!((a - b).abs() < 1e-5, "pruning changed param {i}: {a} vs {b}");
            assert!((a - c).abs() < 1e-6, "partitioning changed param {i}: {a} vs {c}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = dataset(16);
        let run = || {
            let mut m = model();
            LocalTrainer::new(TrainOptions { epochs: 3, ..TrainOptions::default() }).train(&mut m, &data);
            m.param_vector()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn early_stopping_keeps_best_validation_model() {
        let train = dataset(48);
        let val = dataset(24);
        let mut m = model();
        let opts = TrainOptions { epochs: 40, lr: 0.05, ..TrainOptions::default() };
        let (history, best) = LocalTrainer::new(opts.clone()).train_early_stopping(&mut m, &train, &val, 5);
        assert!(best.accuracy.unwrap() > 0.9, "best val acc {:?}", best.accuracy);
        // The restored model reproduces the reported best metrics exactly.
        let now = LocalTrainer::evaluate(&m, &val, &opts);
        assert_eq!(now.accuracy, best.accuracy);
        assert_eq!(history.epochs.len(), 40, "history covers the full budget");
    }

    #[test]
    fn obs_reports_pipeline_stage_occupancy() {
        let data = dataset(16);
        let obs = agl_obs::Obs::enabled();
        let mut m = model();
        let opts = TrainOptions { epochs: 2, batch_size: 4, ..TrainOptions::default() }.with_obs(obs.clone());
        LocalTrainer::new(opts).train(&mut m, &data);
        let metrics = obs.metrics().unwrap();
        assert_eq!(metrics.get("trainer.epochs"), 2);
        assert!(metrics.get("pipeline.prefetch.busy_nanos") > 0, "prefetch stage did real work");
        let events = obs.trace().unwrap().events();
        // 16 examples / batch 4 = 4 prepare spans per epoch, on the
        // prefetch track; one epoch span per epoch on the trainer track.
        assert_eq!(events.iter().filter(|e| e.name == "pipeline.prepare").count(), 8);
        assert!(events.iter().filter(|e| e.name == "pipeline.prepare").all(|e| e.track == "pipeline.prefetch"));
        assert_eq!(events.iter().filter(|e| e.name == "train.epoch" && e.track == "trainer").count(), 2);
    }

    #[test]
    fn epoch_stats_are_recorded() {
        let data = dataset(10);
        let mut m = model();
        let r = LocalTrainer::new(TrainOptions { epochs: 4, batch_size: 3, ..TrainOptions::default() })
            .train(&mut m, &data);
        assert_eq!(r.epochs.len(), 4);
        assert!(r.epochs.iter().all(|e| e.batches == 4)); // ceil(10/3)
        assert!(r.mean_epoch_time() > Duration::ZERO);
    }
}
