//! Graph pruning (§3.3.2): drop per-layer computation that cannot reach a
//! target.
//!
//! With 0-indexed layers `k = 0..K`, layer `k`'s output for node `v` only
//! matters when `d(V_B, v) ≤ K − 1 − k` (its embedding still has enough
//! remaining layers to flow into a target). The keep-masks are row-granular
//! — either all of a destination's in-edges survive or none — so
//! normalisation before pruning is exact for every surviving row.

use crate::vectorize::VectorizedBatch;
use agl_graph::bfs::{multi_source_distances, UNREACHED};
use agl_tensor::Csr;

/// Per-layer row keep-masks: `keep[k][v]` ⟺ layer `k` must compute `v`.
pub fn keep_masks(adj: &Csr, targets: &[usize], n_layers: usize) -> Vec<Vec<bool>> {
    let sources: Vec<u32> = targets.iter().map(|&t| t as u32).collect();
    // `adj` rows list in-edge sources, so walking it goes upstream from the
    // targets — exactly d(V_B, ·).
    let dist = multi_source_distances(adj, &sources, Some(n_layers as u32));
    (0..n_layers)
        .map(|k| {
            let budget = (n_layers - 1 - k) as u32;
            dist.iter().map(|&d| d != UNREACHED && d <= budget).collect()
        })
        .collect()
}

/// Count of rows each layer keeps — used by benches to report pruning
/// effectiveness.
pub fn kept_rows(masks: &[Vec<bool>]) -> Vec<usize> {
    masks.iter().map(|m| m.iter().filter(|&&b| b).count()).collect()
}

/// Convenience: masks for a vectorized batch.
pub fn batch_keep_masks(batch: &VectorizedBatch, n_layers: usize) -> Vec<Vec<bool>> {
    keep_masks(&batch.adj, &batch.targets, n_layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::Coo;

    /// Chain of in-edges: 0 <- 1 <- 2 <- 3 <- 4.
    fn chain(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for v in 0..(n - 1) as u32 {
            coo.push(v, v + 1, 1.0);
        }
        coo.into_csr()
    }

    #[test]
    fn last_layer_keeps_only_targets() {
        let masks = keep_masks(&chain(5), &[0], 3);
        assert_eq!(masks.len(), 3);
        // layer 2 (last): budget 0 -> only node 0.
        assert_eq!(masks[2], vec![true, false, false, false, false]);
        // layer 1: budget 1.
        assert_eq!(masks[1], vec![true, true, false, false, false]);
        // layer 0: budget 2.
        assert_eq!(masks[0], vec![true, true, true, false, false]);
        assert_eq!(kept_rows(&masks), vec![3, 2, 1]);
    }

    #[test]
    fn one_layer_model_prunes_nothing_within_one_hop() {
        // K=1: budget 0 at layer 0 — keep exactly the targets. (The paper's
        // observation that pruning "doesn't work in training 1-layer GNN
        // model" refers to a batch built from 1-hop GraphFeatures, where
        // every stored edge already points at a target — as here.)
        let masks = keep_masks(&chain(2), &[0], 1);
        assert_eq!(masks[0], vec![true, false]);
    }

    #[test]
    fn multiple_targets_take_min_distance() {
        let masks = keep_masks(&chain(5), &[0, 3], 2);
        // d = [0,1,2,0,1]; layer0 budget 1 -> {0,1,3,4}; layer1 budget 0 -> {0,3}.
        assert_eq!(masks[0], vec![true, true, false, true, true]);
        assert_eq!(masks[1], vec![true, false, false, true, false]);
    }

    #[test]
    fn unreachable_nodes_always_pruned() {
        // Node 4 disconnected from target 0's upstream within 2 hops.
        let masks = keep_masks(&chain(5), &[0], 2);
        assert!(!masks[0][3] && !masks[0][4]);
    }
}
