//! `agl-trainer` — **GraphTrainer**, the distributed training framework
//! (paper §3.3).
//!
//! GraphTrainer consumes the `<TargetedNodeId, Label, GraphFeature>` triples
//! GraphFlat produced. Because each GraphFeature is information-complete,
//! workers are independent: they read their own partition from (simulated)
//! disk and only talk to the parameter servers. The training workflow per
//! batch is:
//!
//! 1. **Subgraph vectorization** (§3.3.1): merge the batch's GraphFeatures
//!    and build the three matrices — destination-sorted adjacency `A_B`,
//!    node features `X_B`, edge features `E_B` — plus target indices and
//!    labels.
//! 2. **Model computation**: forward/backward over the merged subgraph.
//!
//! The three optimisation strategies of §3.3.2 are all here and all
//! individually switchable (they are the Table 4 ablation axes):
//!
//! * **Training pipeline** ([`pipeline`]) — a prefetch thread overlaps
//!   reading + vectorization with model computation.
//! * **Graph pruning** ([`pruning`]) — per-layer adjacency `A^(k)_B` drops
//!   every destination row that cannot influence a target's final
//!   embedding (`d(V_B, v) > K−1−k` in 0-indexed layers).
//! * **Edge partitioning** — conflict-free multi-threaded aggregation,
//!   provided by `agl_tensor::ExecCtx` and enabled via
//!   [`trainer::TrainOptions::partitions`].

pub mod dist;
pub mod linkpred;
pub mod metrics;
pub mod pipeline;
pub mod pruning;
pub mod trainer;
pub mod vectorize;

pub use agl_ps::Consistency;
pub use dist::{DistTrainResult, DistTrainer};
pub use linkpred::{build_link_examples, LinkExample, LinkPredictor};
pub use metrics::{accuracy, auc, macro_f1, micro_f1, precision_recall, Metrics};
pub use pipeline::BatchPipeline;
pub use trainer::{EpochStats, LocalTrainer, TrainOptions, TrainResult};
pub use vectorize::{vectorize, VectorizedBatch};
