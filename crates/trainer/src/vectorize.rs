//! Subgraph vectorization (§3.3.1): merge a batch of GraphFeatures and
//! build the matrices the model computes on.
//!
//! > *"the training process of GNNs has to merge the subgraphs described by
//! > GraphFeatures together, and then vectorize the merged subgraph"*
//!
//! producing the adjacency matrix `A_B` (edges sorted by destination), node
//! feature matrix `X_B` and edge feature matrix `E_B`.

use agl_flat::builder::SubgraphBuilder;
use agl_flat::{decode_graph_feature, TrainingExample};
use agl_graph::{NodeId, Subgraph};
use agl_tensor::{Coo, Csr, Matrix};

/// A vectorized batch: the three matrices of §3.3.1 plus targets/labels.
#[derive(Debug, Clone)]
pub struct VectorizedBatch {
    /// `A_B` — raw merged in-edge adjacency (destination-sorted), before
    /// any model-specific preprocessing or pruning.
    pub adj: Csr,
    /// `X_B` — node features, local index order.
    pub features: Matrix,
    /// `E_B` — edge features aligned with [`Subgraph::edges`] order of the
    /// merged subgraph (when the dataset has edge features).
    pub edge_features: Option<Matrix>,
    /// Local indices of the targeted nodes, one per batch example.
    pub targets: Vec<usize>,
    /// Labels, one row per target.
    pub labels: Matrix,
    /// Global ids of the targets, aligned with `targets`.
    pub target_ids: Vec<NodeId>,
    /// Global ids of *every* local node, aligned with `features` rows —
    /// what [`canonicalize_adj_rows`] keys its per-row sort on.
    pub node_ids: Vec<NodeId>,
}

impl VectorizedBatch {
    pub fn n_nodes(&self) -> usize {
        self.features.rows()
    }

    pub fn n_edges(&self) -> usize {
        self.adj.nnz()
    }

    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }
}

/// Merge and vectorize a batch of training triples.
///
/// `label_dim` fixes the width of the label matrix (an example with an
/// empty label contributes a zero row — inference batches have no labels).
pub fn vectorize(batch: &[TrainingExample], label_dim: usize) -> VectorizedBatch {
    assert!(!batch.is_empty(), "empty batch");
    let mut builder = SubgraphBuilder::new();
    let mut target_ids = Vec::with_capacity(batch.len());
    let mut labels = Matrix::zeros(batch.len(), label_dim);
    for (i, ex) in batch.iter().enumerate() {
        // agl-lint: allow(no-panic) — TrainingExamples carry GraphFlat-encoded features; a decode failure is a pipeline bug.
        let sub = decode_graph_feature(&ex.graph_feature).expect("corrupt GraphFeature");
        debug_assert_eq!(sub.target_ids(), vec![ex.target], "GraphFeature target mismatch");
        builder.absorb(&sub);
        target_ids.push(ex.target);
        if !ex.label.is_empty() {
            assert_eq!(ex.label.len(), label_dim, "label width mismatch for {}", ex.target);
            labels.row_mut(i).copy_from_slice(&ex.label);
        }
    }
    let merged = builder.build(&target_ids);
    from_subgraph(&merged, labels)
}

/// Vectorize an already-merged subgraph (targets first, per
/// `SubgraphBuilder::build`). Exposed for the baseline engine and tests.
pub fn from_subgraph(merged: &Subgraph, labels: Matrix) -> VectorizedBatch {
    let n = merged.n_nodes();
    let mut coo = Coo::new(n, n);
    for e in &merged.edges {
        coo.push(e.dst, e.src, e.weight);
    }
    VectorizedBatch {
        adj: coo.into_csr(),
        features: merged.features.clone(),
        edge_features: merged.edge_features.clone(),
        targets: merged.target_locals.iter().map(|&t| t as usize).collect(),
        labels,
        target_ids: merged.target_ids(),
        node_ids: merged.node_ids.clone(),
    }
}

/// Reorder every adjacency row's entries into ascending **global** source
/// node-id order.
///
/// `Coo::into_csr` sorts rows by *local* column index, and the local
/// numbering depends on how a batch merged (targets first, then neighbors
/// in absorb order) — so a float fold over a row depends on which batch
/// the node landed in. Consumers that must agree with the canonical global
/// fold of the GraphInfer reducers (ascending source id) apply this to the
/// *final* per-layer adjacencies — after `prepare_adj`, whose
/// `with_self_loops` rebuilds rows in local order.
pub fn canonicalize_adj_rows(adj: &Csr, node_ids: &[NodeId]) -> Csr {
    let mut indices = Vec::with_capacity(adj.nnz());
    let mut values = Vec::with_capacity(adj.nnz());
    for r in 0..adj.n_rows() {
        let (srcs, ws) = adj.row(r);
        let mut entries: Vec<(u32, f32)> = srcs.iter().copied().zip(ws.iter().copied()).collect();
        entries.sort_by_key(|&(c, _)| node_ids[c as usize]);
        for (c, w) in entries {
            indices.push(c);
            values.push(w);
        }
    }
    Csr::from_raw(adj.n_rows(), adj.n_cols(), adj.indptr().to_vec(), indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_flat::encode_graph_feature;
    use agl_graph::SubEdge;

    /// GraphFeature: target `id` with one in-neighbor `id+100`.
    fn example(id: u64, label: Vec<f32>) -> TrainingExample {
        let sub = Subgraph {
            target_locals: vec![0],
            node_ids: vec![NodeId(id), NodeId(id + 100)],
            features: Matrix::from_rows(&[&[id as f32], &[(id + 100) as f32]]),
            edges: vec![SubEdge { src: 1, dst: 0, weight: 1.0 }],
            edge_features: None,
        };
        TrainingExample { target: NodeId(id), label, graph_feature: encode_graph_feature(&sub) }
    }

    #[test]
    fn disjoint_examples_concatenate() {
        let batch = vec![example(1, vec![1.0, 0.0]), example(2, vec![0.0, 1.0])];
        let v = vectorize(&batch, 2);
        assert_eq!(v.n_nodes(), 4);
        assert_eq!(v.n_edges(), 2);
        assert_eq!(v.targets.len(), 2);
        assert_eq!(v.labels.row(1), &[0.0, 1.0]);
        assert_eq!(v.target_ids, vec![NodeId(1), NodeId(2)]);
        // Targets occupy the first local slots.
        assert_eq!(v.targets, vec![0, 1]);
        // Feature rows follow the merged local order.
        assert_eq!(v.features.row(0), &[1.0]);
    }

    #[test]
    fn overlapping_neighborhoods_deduplicate() {
        // Two targets share in-neighbor 101.
        let mk = |id: u64| {
            let sub = Subgraph {
                target_locals: vec![0],
                node_ids: vec![NodeId(id), NodeId(101)],
                features: Matrix::from_rows(&[&[id as f32], &[101.0]]),
                edges: vec![SubEdge { src: 1, dst: 0, weight: 1.0 }],
                edge_features: None,
            };
            TrainingExample { target: NodeId(id), label: vec![0.0], graph_feature: encode_graph_feature(&sub) }
        };
        let v = vectorize(&[mk(1), mk(2)], 1);
        assert_eq!(v.n_nodes(), 3, "shared neighbor stored once");
        assert_eq!(v.n_edges(), 2);
    }

    #[test]
    fn adjacency_rows_are_destination_sorted() {
        let batch = vec![example(5, vec![0.0])];
        let v = vectorize(&batch, 1);
        let (srcs, ws) = v.adj.row(v.targets[0]);
        assert_eq!(srcs.len(), 1);
        assert_eq!(ws, &[1.0]);
    }

    #[test]
    fn empty_labels_are_zero_rows() {
        let batch = vec![example(9, vec![])];
        let v = vectorize(&batch, 3);
        assert_eq!(v.labels.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = vectorize(&[], 1);
    }
}
