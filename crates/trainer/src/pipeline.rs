//! The training pipeline (§3.3.2, batch level): a prefetch stage overlaps
//! *"data reading and subgraph vectorization"* with model computation.
//!
//! A background thread pulls batch index lists, reads + decodes their
//! GraphFeatures, vectorizes, preprocesses the per-layer adjacencies
//! (including pruning, which the paper notes costs "nearly no extra time"
//! precisely because it rides in this stage), and pushes [`PreparedBatch`]es
//! into a small bounded channel the compute loop drains.

use crate::pruning::batch_keep_masks;
use crate::vectorize::{canonicalize_adj_rows, vectorize, VectorizedBatch};
use agl_flat::TrainingExample;
use agl_nn::layer::{prepare_adj, AdjPrep};
use agl_obs::{Clock, Obs};
use agl_tensor::Csr;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What the preprocessing stage hands the compute stage.
#[derive(Debug)]
pub struct PreparedBatch {
    pub batch: VectorizedBatch,
    /// Per-layer prepared (and optionally pruned) adjacencies, ready for
    /// `GnnModel::forward`.
    pub adjs: Vec<Csr>,
}

/// Static description of the preprocessing a model needs.
#[derive(Debug, Clone, Copy)]
pub struct PrepSpec {
    pub n_layers: usize,
    pub prep: AdjPrep,
    pub label_dim: usize,
    /// Graph pruning on/off (the `+pruning` ablation axis).
    pub prune: bool,
}

/// Read + vectorize + preprocess one batch (the preprocessing stage body).
pub fn prepare_batch(examples: &[TrainingExample], spec: &PrepSpec) -> PreparedBatch {
    let batch = vectorize(examples, spec.label_dim);
    let prepared = prepare_adj(&batch.adj, spec.prep);
    let adjs: Vec<Csr> = if spec.prune {
        let masks = batch_keep_masks(&batch, spec.n_layers);
        (0..spec.n_layers).map(|k| prepared.filter_entries(|dst, _| masks[k][dst as usize])).collect()
    } else {
        vec![prepared; spec.n_layers]
    };
    PreparedBatch { batch, adjs }
}

/// [`prepare_batch`] with every adjacency row re-sorted into ascending
/// **global** source-id order ([`canonicalize_adj_rows`]) — the fold order
/// of the GraphInfer reducers. The original-inference baseline uses this so
/// its per-node sums are independent of batch composition and comparable to
/// the streaming path; training keeps the cheaper local order (fold order
/// is a deterministic function of the batch either way).
pub fn prepare_batch_canonical(examples: &[TrainingExample], spec: &PrepSpec) -> PreparedBatch {
    let mut p = prepare_batch(examples, spec);
    p.adjs = p.adjs.iter().map(|a| canonicalize_adj_rows(a, &p.batch.node_ids)).collect();
    p
}

/// A two-stage pipeline: preprocessing on a background thread, compute on
/// the caller's thread. Dropping the pipeline (or exhausting it) joins the
/// worker.
pub struct BatchPipeline {
    rx: Receiver<PreparedBatch>,
    handle: Option<JoinHandle<()>>,
    obs: Obs,
    /// Clock for compute-stage wait accounting (present iff obs enabled).
    clock: Option<Clock>,
    /// Accumulated time the compute stage spent blocked on `recv`.
    recv_wait: u64,
}

impl BatchPipeline {
    /// Spawn the preprocessing stage over `order` (each entry is the example
    /// indices of one batch). `depth` bounds how far preprocessing may run
    /// ahead of compute.
    pub fn spawn(examples: Arc<Vec<TrainingExample>>, order: Vec<Vec<usize>>, spec: PrepSpec, depth: usize) -> Self {
        Self::spawn_with_obs(examples, order, spec, depth, Obs::default())
    }

    /// [`spawn`](Self::spawn) with an observability handle: the prefetch
    /// stage emits a `pipeline.prepare` span per batch on the
    /// `pipeline.prefetch` track and accounts its busy/blocked split into
    /// the metrics registry (`pipeline.prefetch.busy_nanos`,
    /// `pipeline.prefetch.wait_nanos`, `pipeline.prefetch.occupancy_pct`);
    /// the compute side's recv waits land in
    /// `pipeline.compute.wait_nanos`. Units follow the obs clock (logical
    /// runs account ticks, not nanoseconds).
    pub fn spawn_with_obs(
        examples: Arc<Vec<TrainingExample>>,
        order: Vec<Vec<usize>>,
        spec: PrepSpec,
        depth: usize,
        obs: Obs,
    ) -> Self {
        let (tx, rx) = sync_channel(depth.max(1));
        let producer_obs = obs.clone();
        let handle = std::thread::spawn(move || {
            let clock = producer_obs.trace().map(|t| t.clock().clone());
            let (mut busy, mut blocked) = (0u64, 0u64);
            for batch_idx in order {
                let t0 = clock.as_ref().map(Clock::now);
                let prepared = {
                    let mut span = if producer_obs.is_enabled() {
                        producer_obs.span("pipeline.prefetch", "pipeline.prepare")
                    } else {
                        agl_obs::Span::disabled()
                    };
                    span.counter("examples", batch_idx.len() as u64);
                    // "Read" the batch from the store (clone = the disk read
                    // the paper's workers do — GraphFeatures live on DFS,
                    // not RAM).
                    let batch: Vec<TrainingExample> = batch_idx.iter().map(|&i| examples[i].clone()).collect();
                    prepare_batch(&batch, &spec)
                };
                let sent = clock.as_ref().map(Clock::now);
                if tx.send(prepared).is_err() {
                    break; // compute side hung up
                }
                if let (Some(c), Some(t0), Some(sent)) = (&clock, t0, sent) {
                    busy += sent.saturating_sub(t0);
                    blocked += c.since(sent);
                }
            }
            if let Some(m) = producer_obs.metrics() {
                m.add("pipeline.prefetch.busy_nanos", busy);
                m.add("pipeline.prefetch.wait_nanos", blocked);
                if busy + blocked > 0 {
                    m.gauge_set("pipeline.prefetch.occupancy_pct", busy * 100 / (busy + blocked));
                }
            }
        });
        let clock = obs.trace().map(|t| t.clock().clone());
        Self { rx, handle: Some(handle), obs, clock, recv_wait: 0 }
    }

    /// Flush the compute-side wait accounting (idempotent) and join the
    /// producer if it is still running.
    fn finish(&mut self) {
        if self.recv_wait > 0 {
            self.obs.metric_add("pipeline.compute.wait_nanos", self.recv_wait);
            self.recv_wait = 0;
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Iterator for BatchPipeline {
    type Item = PreparedBatch;

    fn next(&mut self) -> Option<PreparedBatch> {
        let t0 = self.clock.as_ref().map(Clock::now);
        match self.rx.recv() {
            Ok(b) => {
                if let (Some(c), Some(t0)) = (&self.clock, t0) {
                    self.recv_wait += c.since(t0);
                }
                Some(b)
            }
            Err(_) => {
                self.finish();
                None
            }
        }
    }
}

impl Drop for BatchPipeline {
    fn drop(&mut self) {
        // Disconnect so the producer stops, then join it.
        let (_tx, rx) = sync_channel(0);
        self.rx = rx;
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_flat::encode_graph_feature;
    use agl_graph::{NodeId, SubEdge, Subgraph};
    use agl_tensor::Matrix;

    fn example(id: u64) -> TrainingExample {
        let sub = Subgraph {
            target_locals: vec![0],
            node_ids: vec![NodeId(id), NodeId(id + 1000)],
            features: Matrix::from_rows(&[&[id as f32, 0.0], &[0.0, id as f32]]),
            edges: vec![SubEdge { src: 1, dst: 0, weight: 1.0 }],
            edge_features: None,
        };
        TrainingExample { target: NodeId(id), label: vec![1.0], graph_feature: encode_graph_feature(&sub) }
    }

    fn spec(prune: bool) -> PrepSpec {
        PrepSpec { n_layers: 2, prep: AdjPrep::MeanWithSelfLoops, label_dim: 1, prune }
    }

    #[test]
    fn pipeline_yields_all_batches_in_order() {
        let examples = Arc::new((0..10u64).map(example).collect::<Vec<_>>());
        let order: Vec<Vec<usize>> = (0..5).map(|b| vec![2 * b, 2 * b + 1]).collect();
        let got: Vec<PreparedBatch> = BatchPipeline::spawn(examples, order, spec(false), 2).collect();
        assert_eq!(got.len(), 5);
        for (b, p) in got.iter().enumerate() {
            assert_eq!(p.batch.target_ids[0], NodeId(2 * b as u64));
            assert_eq!(p.adjs.len(), 2);
        }
    }

    #[test]
    fn pipelined_output_matches_inline_preparation() {
        let examples = Arc::new((0..6u64).map(example).collect::<Vec<_>>());
        let order: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3, 4, 5]];
        for prune in [false, true] {
            let inline: Vec<PreparedBatch> = order
                .iter()
                .map(|idx| {
                    let b: Vec<_> = idx.iter().map(|&i| examples[i].clone()).collect();
                    prepare_batch(&b, &spec(prune))
                })
                .collect();
            let piped: Vec<PreparedBatch> =
                BatchPipeline::spawn(examples.clone(), order.clone(), spec(prune), 1).collect();
            for (a, b) in inline.iter().zip(&piped) {
                assert_eq!(a.batch.features, b.batch.features);
                assert_eq!(a.adjs, b.adjs, "prune={prune}");
            }
        }
    }

    #[test]
    fn pruned_spec_produces_smaller_last_layer() {
        let examples: Vec<_> = (0..4u64).map(example).collect();
        let full = prepare_batch(&examples, &spec(false));
        let pruned = prepare_batch(&examples, &spec(true));
        // Layer 1 (last) only needs target rows; with self-loops the full
        // version has entries for every node.
        assert!(pruned.adjs[1].nnz() < full.adjs[1].nnz());
    }

    #[test]
    fn dropping_pipeline_early_does_not_hang() {
        let examples = Arc::new((0..100u64).map(example).collect::<Vec<_>>());
        let order: Vec<Vec<usize>> = (0..100).map(|i| vec![i]).collect();
        let mut p = BatchPipeline::spawn(examples, order, spec(false), 1);
        let _first = p.next().unwrap();
        drop(p); // must join cleanly while producer is mid-stream
    }
}
