//! Distributed training on the parameter server (§3.3 / Figures 7–8).
//!
//! Each worker owns a partition of the training triples (self-contained by
//! Theorem 1), runs the same batch loop as the standalone trainer, and
//! exchanges state with the [`agl_ps::ParameterServer`] only: pull the
//! model, compute gradients on its own batch, push.
//!
//! The coordination mode is [`Consistency`] (from `TrainOptions`): the
//! paper's synchronous configuration (used for the Fig. 7 convergence
//! study), Hogwild-style async, or SSP with a bounded staleness slack —
//! for which `DistTrainResult::max_staleness <= slack` is enforced as a
//! hard invariant after every run.
//!
//! In the synchronous configuration the effective batch grows with the
//! worker count — which is exactly why *"more training epochs are required
//! in the distributed mode"* while the final AUC matches.

use crate::metrics::Metrics;
use crate::pipeline::prepare_batch;
use crate::trainer::{EpochStats, LocalTrainer, TrainOptions};
use agl_flat::TrainingExample;
use agl_nn::{Adam, GnnModel};
use agl_ps::{run_client_workers, Consistency, ParameterServer, PsClient, PsNetError, PsStats};
use agl_tensor::rng::derive_seed;
use agl_tensor::rng::SliceRandom;
use agl_tensor::seeded_rng;
use std::time::Duration;

/// Distributed-training configuration. The coordination mode lives in
/// `opts.consistency` — there is exactly one way to pick it.
#[derive(Debug, Clone)]
pub struct DistTrainer {
    pub n_workers: usize,
    /// Parameter-server shards.
    pub n_shards: usize,
    pub opts: TrainOptions,
    /// Fault injection for staleness tests: worker `i` sleeps this long
    /// before every push, making it a deterministic straggler.
    pub straggler: Option<(usize, Duration)>,
}

/// Distributed-training outcome.
#[derive(Debug, Clone)]
pub struct DistTrainResult {
    pub epochs: Vec<EpochStats>,
    /// Validation metrics after each epoch (when a validation set is given).
    pub val_curve: Vec<Metrics>,
    pub ps_stats: PsStats,
    /// Largest gradient staleness any worker observed: server model version
    /// at apply time minus the version its gradient was computed against.
    /// Always 0 in `Sync` mode (the barrier forces a common version),
    /// `<= slack` in `Ssp` mode (enforced), unbounded in `Async`.
    ///
    /// Recorded by the server under its version lock at apply time and read
    /// here from `ParameterServer::stats()` *after* `run_workers` has
    /// joined every worker thread. The join is the synchronization point —
    /// all worker writes happen-before it — so no relaxed-atomic final load
    /// can race a straggler's last push (the pre-SSP implementation
    /// aggregated a relaxed `fetch_max` on the worker side and read it
    /// while conceptually unordered with the final pushes; keeping the
    /// record under the lock removes that class of bug entirely).
    pub max_staleness: u64,
}

impl DistTrainer {
    pub fn new(n_workers: usize, opts: TrainOptions) -> Self {
        assert!(n_workers > 0);
        Self { n_workers, n_shards: 4, opts, straggler: None }
    }

    /// Train `model` over `train`, optionally evaluating `val` after every
    /// epoch. The final server parameters are loaded back into `model`.
    ///
    /// Builds an in-process [`ParameterServer`] and runs the exact same
    /// loop [`Self::train_with_client`] runs against a remote one.
    pub fn train(
        &self,
        model: &mut GnnModel,
        train: &[TrainingExample],
        val: Option<&[TrainingExample]>,
    ) -> DistTrainResult {
        let lr = self.opts.lr;
        let server =
            ParameterServer::new(model.param_vector(), self.n_shards, self.n_workers, self.opts.consistency, || {
                Box::new(Adam::new(lr))
            })
            .with_obs(self.opts.engine.obs.clone());
        match self.train_with_client(model, train, val, &server) {
            Ok(r) => r,
            // agl-lint: allow(no-panic) — the in-process PsClient impl is infallible; Err is unreachable.
            Err(e) => panic!("in-process parameter server failed: {e}"),
        }
    }

    /// Train `model` against any [`PsClient`] — the in-process server or an
    /// [`agl_ps::RemotePs`] talking to shard processes over sockets. Both
    /// modes share this single code path; only the client differs.
    ///
    /// On a remote client, a dead shard surfaces here as `Err(PsNetError)`
    /// within the connection's read deadline — the epoch loop stops, every
    /// worker thread is joined, and the model keeps its last good epoch.
    pub fn train_with_client<C: PsClient>(
        &self,
        model: &mut GnnModel,
        train: &[TrainingExample],
        val: Option<&[TrainingExample]>,
        server: &C,
    ) -> Result<DistTrainResult, PsNetError> {
        assert!(!train.is_empty());

        // Static data partition: worker w owns examples w, w+W, w+2W, ...
        let partitions: Vec<Vec<usize>> =
            (0..self.n_workers).map(|w| (w..train.len()).step_by(self.n_workers).collect()).collect();
        // Synchronous mode needs every worker to push the same number of
        // batches per epoch; short partitions cycle their data.
        let batches_per_worker =
            partitions.iter().map(|p| p.len().div_ceil(self.opts.batch_size)).max().unwrap_or(1).max(1);

        let spec = self.opts.spec_public(model);
        let ctx = self.opts.ctx_public();
        let template = model.clone();
        let clock = self.opts.clock();
        let mut epochs = Vec::with_capacity(self.opts.epochs);
        let mut val_curve = Vec::new();
        for epoch in 0..self.opts.epochs {
            let start = clock.now();
            let mut epoch_span = if self.opts.engine.obs.is_enabled() {
                self.opts.engine.obs.span("trainer", "train.epoch")
            } else {
                agl_obs::Span::disabled()
            };
            run_client_workers(server, self.n_workers, |w, ps| {
                // Per-worker kernel track: each worker's spans land on its
                // own `tensor.w{w}` lane, keeping logical-clock timestamps
                // independent of cross-worker thread interleaving.
                let ctx = ctx.clone().with_track(&format!("tensor.w{w}"));
                let mut replica = template.clone();
                let mut rng = seeded_rng(derive_seed(self.opts.engine.seed, (epoch * 1000 + w) as u64));
                let mut order = partitions[w].clone();
                order.shuffle(&mut rng);
                for b in 0..batches_per_worker {
                    let lo = (b * self.opts.batch_size) % order.len().max(1);
                    let batch: Vec<TrainingExample> = (0..self.opts.batch_size.min(order.len()))
                        .map(|i| train[order[(lo + i) % order.len()]].clone())
                        .collect();
                    let prepared = prepare_batch(&batch, &spec);
                    let (params, _pulled_version) = ps.pull_with_version(w)?;
                    replica.load_param_vector(&params);
                    replica.zero_grads();
                    let pass = replica.forward(
                        &prepared.adjs,
                        &prepared.batch.features,
                        &prepared.batch.targets,
                        true,
                        &ctx,
                        &mut rng,
                    );
                    let (_, grad) = replica.loss(&pass.logits, &prepared.batch.labels);
                    replica.backward(&prepared.adjs, &pass, &grad, &ctx);
                    if let Some((slow, delay)) = self.straggler {
                        if w == slow {
                            std::thread::sleep(delay);
                        }
                    }
                    // Staleness of this gradient — steps that land between
                    // our pull and the apply (§3.3's bounded-delay lens) —
                    // is recorded by the server under its version lock.
                    ps.push(w, &replica.grad_vector())?;
                }
                Ok(())
            })?;
            model.load_param_vector(&server.snapshot()?);
            epoch_span.counter("batches", batches_per_worker as u64);
            drop(epoch_span);
            self.opts.engine.obs.metric_add("trainer.epochs", 1);
            // Mean train loss after the epoch's updates (cheap re-pass over
            // a sample keeps the run fast at large scale).
            let probe = &train[..train.len().min(512)];
            let m = LocalTrainer::evaluate(model, probe, &self.opts);
            epochs.push(EpochStats {
                epoch,
                loss: m.loss,
                duration: Duration::from_nanos(clock.since(start)),
                batches: batches_per_worker,
            });
            if let Some(v) = val {
                val_curve.push(LocalTrainer::evaluate(model, v, &self.opts));
            }
        }
        // `run_client_workers` joined every worker thread above, so this
        // snapshot is ordered after all pushes (see
        // `DistTrainResult::max_staleness`).
        let ps_stats = server.stats()?;
        let max_staleness = ps_stats.max_staleness;
        // The tentpole contract: SSP turns the measured staleness into an
        // enforced bound. A violation is a server bug, never load-dependent
        // noise, so fail loudly right here.
        if let Consistency::Ssp { slack } = server.consistency() {
            assert!(
                max_staleness <= slack,
                "SSP contract violated: observed staleness {max_staleness} > slack {slack}"
            );
        }
        Ok(DistTrainResult { epochs, val_curve, ps_stats, max_staleness })
    }
}

impl TrainOptions {
    /// Public shims so `DistTrainer` (different module) reuses the exact
    /// preprocessing the standalone trainer applies.
    pub fn spec_public(&self, model: &GnnModel) -> crate::pipeline::PrepSpec {
        crate::pipeline::PrepSpec {
            n_layers: model.n_layers(),
            prep: model.layers()[0].adj_prep(),
            label_dim: model.config().out_dim,
            prune: self.pruning,
        }
    }

    pub fn ctx_public(&self) -> agl_tensor::ExecCtx {
        let base = if self.partitions > 1 {
            agl_tensor::ExecCtx::parallel(self.partitions)
        } else {
            agl_tensor::ExecCtx::sequential()
        };
        base.with_obs(self.engine.obs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_flat::encode_graph_feature;
    use agl_graph::{NodeId, SubEdge, Subgraph};
    use agl_nn::{Loss, ModelConfig, ModelKind};
    use agl_tensor::Matrix;

    fn dataset(n: usize) -> Vec<TrainingExample> {
        (0..n as u64)
            .map(|i| {
                let y = (i % 2) as f32;
                let sign = 1.0 - 2.0 * y;
                let sub = Subgraph {
                    target_locals: vec![0],
                    node_ids: vec![NodeId(i), NodeId(i + 10_000)],
                    features: Matrix::from_rows(&[&[0.05, -0.05], &[sign, sign * 0.5]]),
                    edges: vec![SubEdge { src: 1, dst: 0, weight: 1.0 }],
                    edge_features: None,
                };
                TrainingExample { target: NodeId(i), label: vec![y], graph_feature: encode_graph_feature(&sub) }
            })
            .collect()
    }

    fn model() -> GnnModel {
        GnnModel::new(ModelConfig::new(ModelKind::Sage, 2, 8, 1, 2, Loss::BceWithLogits))
    }

    fn opts(consistency: Consistency) -> TrainOptions {
        TrainOptions { epochs: 8, lr: 0.05, batch_size: 8, consistency, ..TrainOptions::default() }
    }

    #[test]
    fn distributed_training_converges_sync() {
        let data = dataset(64);
        let val = dataset(32);
        let mut m = model();
        let trainer = DistTrainer::new(4, opts(Consistency::Sync));
        let result = trainer.train(&mut m, &data, Some(&val));
        assert_eq!(result.val_curve.len(), 8);
        let final_auc = result.val_curve.last().unwrap().auc.unwrap();
        assert!(final_auc > 0.95, "val AUC {final_auc}");
        assert!(result.ps_stats.steps > 0);
        assert_eq!(result.ps_stats.pushes % 4, 0, "all workers pushed equally");
        assert_eq!(result.ps_stats.model_version, result.ps_stats.steps);
        assert_eq!(result.max_staleness, 0, "the sync barrier admits no stale gradients");
    }

    #[test]
    fn distributed_training_converges_async() {
        let data = dataset(48);
        let mut m = model();
        let trainer = DistTrainer::new(3, opts(Consistency::Async));
        let result = trainer.train(&mut m, &data, None);
        let metrics = LocalTrainer::evaluate(&m, &data, &trainer.opts);
        assert!(metrics.auc.unwrap() > 0.95, "AUC {:?}", metrics.auc);
        assert!(result.val_curve.is_empty());
        assert!(
            result.max_staleness <= result.ps_stats.steps,
            "staleness {} cannot exceed total applied steps {}",
            result.max_staleness,
            result.ps_stats.steps
        );
    }

    #[test]
    fn worker_counts_converge_to_same_level() {
        // The Fig. 7 property: different worker counts reach the same AUC
        // neighbourhood (not identical parameters).
        let data = dataset(60);
        let val = dataset(24);
        for workers in [1, 3, 6] {
            let mut m = model();
            let trainer = DistTrainer::new(
                workers,
                TrainOptions { epochs: 10, lr: 0.05, batch_size: 6, ..TrainOptions::default() },
            );
            let r = trainer.train(&mut m, &data, Some(&val));
            let auc = r.val_curve.last().unwrap().auc.unwrap();
            assert!(auc > 0.9, "{workers} workers: AUC {auc}");
        }
    }

    #[test]
    fn single_worker_sync_matches_standalone_shape() {
        let data = dataset(20);
        let mut m = model();
        let trainer = DistTrainer::new(1, TrainOptions { epochs: 2, batch_size: 5, ..TrainOptions::default() });
        let r = trainer.train(&mut m, &data, None);
        assert_eq!(r.epochs.len(), 2);
        assert_eq!(r.epochs[0].batches, 4);
    }

    #[test]
    fn ssp_staleness_bounded_across_workers_slack_and_delays() {
        // The tentpole property: for every (workers, slack, delay)
        // combination the observed max staleness respects the bound. The
        // straggler injection makes the fast workers actually hit the
        // gates, so the bound is exercised, not vacuous. (`train` itself
        // re-asserts the invariant as a hard contract.)
        let data = dataset(32);
        for &workers in &[1usize, 2, 4, 8] {
            for &slack in &[0u64, 1, 4] {
                for &delay in &[None, Some((0usize, Duration::from_millis(2)))] {
                    let mut m = model();
                    let mut trainer = DistTrainer::new(
                        workers,
                        TrainOptions {
                            epochs: 2,
                            lr: 0.05,
                            batch_size: 8,
                            consistency: Consistency::Ssp { slack },
                            ..TrainOptions::default()
                        },
                    );
                    trainer.straggler = delay;
                    let r = trainer.train(&mut m, &data, None);
                    assert!(
                        r.max_staleness <= slack,
                        "workers={workers} slack={slack} delay={delay:?}: staleness {} > slack",
                        r.max_staleness
                    );
                    assert_eq!(r.epochs.len(), 2, "workers={workers} slack={slack}: run completed");
                }
            }
        }
    }

    #[test]
    fn ssp_slack_zero_is_bit_identical_to_sync() {
        // `Ssp { slack: 0 }` normalizes to the sync barrier inside the
        // server, and the sync barrier combines gradients in worker-id
        // order — so the entire training trajectory, not just the final
        // AUC, must agree bit for bit with explicit `Sync` on one seed.
        let data = dataset(48);
        let val = dataset(16);
        let run = |consistency| {
            let mut m = model();
            let trainer = DistTrainer::new(3, opts(consistency));
            trainer.train(&mut m, &data, Some(&val))
        };
        let ssp0 = run(Consistency::Ssp { slack: 0 });
        let sync = run(Consistency::Sync);
        let losses = |r: &DistTrainResult| r.epochs.iter().map(|e| e.loss.to_bits()).collect::<Vec<_>>();
        assert_eq!(losses(&ssp0), losses(&sync), "per-epoch loss curves must be bit-identical");
        let curve = |r: &DistTrainResult| {
            r.val_curve.iter().map(|m| (m.loss.to_bits(), m.auc.map(f64::to_bits))).collect::<Vec<_>>()
        };
        assert_eq!(curve(&ssp0), curve(&sync), "validation metrics must be bit-identical");
        assert_eq!(ssp0.max_staleness, 0);
        assert_eq!(ssp0.ps_stats.steps, sync.ps_stats.steps);
    }

    #[test]
    fn ssp_slack_zero_with_straggler_never_hangs() {
        // Deadlock-freedom: slack 0 degrades to the barrier even with an
        // injected straggler; completing the run is the assertion.
        let data = dataset(24);
        let mut m = model();
        let mut trainer = DistTrainer::new(4, opts(Consistency::Ssp { slack: 0 }));
        trainer.opts.epochs = 2;
        trainer.straggler = Some((1, Duration::from_millis(3)));
        let r = trainer.train(&mut m, &data, None);
        assert_eq!(r.epochs.len(), 2);
        assert_eq!(r.max_staleness, 0);
    }

    #[test]
    fn ssp_gate_waits_surface_in_ps_stats() {
        // With a hard straggler and slack 1, the fast workers must block at
        // the gates and the wait accounting must show it.
        let data = dataset(32);
        let mut m = model();
        let mut trainer = DistTrainer::new(4, opts(Consistency::Ssp { slack: 1 }));
        trainer.opts.epochs = 2;
        trainer.straggler = Some((0, Duration::from_millis(4)));
        let r = trainer.train(&mut m, &data, None);
        assert!(r.ps_stats.ssp_waits > 0, "expected gate waits: {:?}", r.ps_stats);
        assert!(r.ps_stats.ssp_wait_nanos > 0);
        assert!(r.max_staleness <= 1);
        // Per-worker histograms account for every push.
        for ws in &r.ps_stats.workers {
            assert_eq!(ws.staleness_hist.iter().sum::<u64>(), ws.pushes);
        }
    }

    #[test]
    fn obs_instruments_epochs_and_ps_traffic() {
        let data = dataset(16);
        let obs = agl_obs::Obs::enabled();
        let mut m = model();
        let trainer = DistTrainer::new(
            2,
            TrainOptions { epochs: 2, batch_size: 8, ..TrainOptions::default() }.with_obs(obs.clone()),
        );
        trainer.train(&mut m, &data, None);
        let events = obs.trace().unwrap().events();
        assert_eq!(events.iter().filter(|e| e.name == "train.epoch").count(), 2);
        assert!(events.iter().any(|e| e.track == "ps.w0" && e.name == "ps.pull"));
        assert!(events.iter().any(|e| e.track == "ps.w1" && e.name == "ps.push"));
        assert!(events.iter().any(|e| e.name == "ps.apply"));
        let metrics = obs.metrics().unwrap();
        assert_eq!(metrics.get("trainer.epochs"), 2);
        assert!(metrics.get("ps.pushes") > 0);
        assert!(metrics.get("ps.bytes_transferred") > 0);
    }

    #[test]
    fn ssp_converges_like_sync() {
        // Bounded staleness must not cost convergence on this easy task.
        let data = dataset(64);
        let val = dataset(32);
        let mut m = model();
        let trainer = DistTrainer::new(4, opts(Consistency::Ssp { slack: 4 }));
        let r = trainer.train(&mut m, &data, Some(&val));
        let auc = r.val_curve.last().unwrap().auc.unwrap();
        assert!(auc > 0.95, "SSP(4) val AUC {auc}");
        assert!(r.max_staleness <= 4);
    }
}
