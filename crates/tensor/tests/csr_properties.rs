//! Property-based tests of the sparse kernels: the CSR algebra must agree
//! with dense reference computations, and the edge-partitioned parallel
//! kernels must be bit-identical to sequential — for arbitrary matrices.

use agl_tensor::{Coo, Csr, ExecCtx, Matrix};
use proptest::prelude::*;

fn coo_from(n_rows: usize, n_cols: usize, entries: &[(u8, u8, i8)]) -> Csr {
    let mut coo = Coo::new(n_rows, n_cols);
    for &(d, s, w) in entries {
        coo.push(
            (d as usize % n_rows) as u32,
            (s as usize % n_cols) as u32,
            f32::from(w) * 0.1,
        );
    }
    coo.into_csr()
}

fn dense_from(rows: usize, cols: usize, seed: &[i8]) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|i| f32::from(seed[i % seed.len().max(1)]) * 0.05).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// spmm == dense matmul on the densified matrix.
    #[test]
    fn prop_spmm_matches_dense(
        n_rows in 1usize..12,
        n_cols in 1usize..12,
        width in 1usize..6,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<i8>()), 0..40),
        seed in proptest::collection::vec(any::<i8>(), 1..16),
    ) {
        let csr = coo_from(n_rows, n_cols, &entries);
        let x = dense_from(n_cols, width, &seed);
        let sparse = csr.spmm(&x);
        let dense = csr.to_dense().matmul(&x);
        prop_assert!(sparse.max_abs_diff(&dense) < 1e-4);
    }

    /// t_spmm is the adjoint: <A x, y> == <x, Aᵀ y> for all x, y.
    #[test]
    fn prop_t_spmm_is_adjoint(
        n in 1usize..10,
        width in 1usize..4,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<i8>()), 0..30),
        sx in proptest::collection::vec(any::<i8>(), 1..12),
        sy in proptest::collection::vec(any::<i8>(), 1..12),
    ) {
        let csr = coo_from(n, n, &entries);
        let x = dense_from(n, width, &sx);
        let y = dense_from(n, width, &sy);
        let lhs: f32 = csr.spmm(&x).hadamard(&y).sum();
        let rhs: f32 = x.hadamard(&csr.t_spmm(&y)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    /// Edge-partitioned parallel spmm is bit-identical to sequential for
    /// any thread count.
    #[test]
    fn prop_partitioned_spmm_bit_identical(
        n in 1usize..24,
        width in 1usize..5,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<i8>()), 0..80),
        seed in proptest::collection::vec(any::<i8>(), 1..16),
        threads in 2usize..6,
    ) {
        let csr = coo_from(n, n, &entries);
        let x = dense_from(n, width, &seed);
        let seq = ExecCtx::sequential().spmm(&csr, &x);
        let par = ExecCtx::parallel(threads).spmm(&csr, &x);
        prop_assert_eq!(seq.max_abs_diff(&par), 0.0);
    }

    /// row_normalized is idempotent and row-stochastic on non-empty rows
    /// (for non-negative weights).
    #[test]
    fn prop_row_normalized_idempotent(
        n in 1usize..10,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), 1i8..120), 0..40),
    ) {
        let csr = coo_from(n, n, &entries);
        let once = csr.row_normalized();
        let twice = once.row_normalized();
        for r in 0..n {
            let (_, vals) = once.row(r);
            if !vals.is_empty() {
                let s: f32 = vals.iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4, "row {r} sums {s}");
            }
        }
        prop_assert!(once.to_dense().max_abs_diff(&twice.to_dense()) < 1e-5);
    }

    /// COO→CSR→entries→CSR is a fixpoint (canonical form).
    #[test]
    fn prop_csr_roundtrip_fixpoint(
        n in 1usize..12,
        entries in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<i8>()), 0..40),
    ) {
        let csr = coo_from(n, n, &entries);
        let mut coo = Coo::new(n, n);
        for (d, s, w) in csr.iter_entries() {
            coo.push(d, s, w);
        }
        prop_assert_eq!(coo.into_csr(), csr);
    }
}
