//! Self-contained deterministic RNG — no external crates.
//!
//! The repo must build fully offline, so this module replaces the `rand`
//! crate with a small xoshiro256++ generator behind a `rand`-shaped API
//! ([`Rng`], [`SmallRng`], [`SliceRandom`]). Sequences are *not* bit-equal
//! to `rand`'s — tests pin behaviour, not golden bytes — but everything is
//! reproducible given a seed, which is what the MapReduce retry semantics
//! and the sampling framework require.

use std::ops::{Range, RangeInclusive};

/// A deterministic RNG from a `u64` seed.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// Used wherever one logical seed must fan out into many independent streams
/// (per-reducer sampling, per-worker shuffling) without the streams being
/// trivially correlated. SplitMix64 finaliser.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 step — used to expand one `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable generator: xoshiro256++ (Blackman & Vigna).
/// Plays the role `rand::rngs::SmallRng` used to play.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Construct from a `u64` seed via SplitMix64 state expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// The generator interface. All randomness flows through [`Rng::next_u64`];
/// everything else is a provided method, so alternative generators (tests,
/// counters) only implement one function.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive; integer or float).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical "uniform" distribution for [`Rng::gen`]:
/// floats in `[0, 1)`, integers over their full range.
pub trait Standard {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full float precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by Lemire-style widening multiply
/// (without the rejection loop: the bias is < 2^-64 per draw, far below
/// anything the statistical tests here could observe, and keeping draws to
/// exactly one `next_u64` call makes sequences easy to reason about).
fn uniform_below(rng: &mut impl Rng, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range_impl!(usize, u32, u64, i32, i64);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut r1 = seeded_rng(5);
        let mut r2 = seeded_rng(5);
        let a: Vec<u32> = (0..8).map(|_| r1.gen()).collect();
        let b: Vec<u32> = (0..8).map(|_| r2.gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = seeded_rng(1).next_u64();
        let b: u64 = seeded_rng(2).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100, "no collisions across streams");
    }

    #[test]
    fn derive_seed_is_pure() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = seeded_rng(9);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += f64::from(x);
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_int_covers_whole_range() {
        let mut rng = seeded_rng(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut rng = seeded_rng(4);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..7.5f32);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn gen_range_negative_int_bounds() {
        let mut rng = seeded_rng(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut seeded_rng(6));
        b.shuffle(&mut seeded_rng(6));
        assert_eq!(a, b, "same seed, same permutation");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut c: Vec<usize> = (0..50).collect();
        c.shuffle(&mut seeded_rng(7));
        assert_ne!(a, c, "different seed, different permutation");
    }

    #[test]
    fn choose_returns_member() {
        let v = [10, 20, 30];
        let mut rng = seeded_rng(8);
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).expect("non-empty")));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = seeded_rng(12);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
    }
}
