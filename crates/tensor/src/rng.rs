//! Seeded RNG construction. `SmallRng` is non-portable across rand versions
//! but fast and reproducible within a build, which is all determinism here
//! requires (tests pin behaviour, not golden bytes).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A deterministic RNG from a `u64` seed.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index.
///
/// Used wherever one logical seed must fan out into many independent streams
/// (per-reducer sampling, per-worker shuffling) without the streams being
/// trivially correlated. SplitMix64 finaliser.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u32> = (0..8).map(|_| seeded_rng(5).gen()).collect();
        let b: Vec<u32> = (0..8).map(|_| seeded_rng(5).gen()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn derived_seeds_differ_per_stream() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100, "no collisions across streams");
    }

    #[test]
    fn derive_seed_is_pure() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 1));
    }
}
