//! Edge partitioning — the operator-level optimisation of paper §3.3.2.
//!
//! > *"we partition the sparse adjacent matrix into `t` parts and ensure
//! > that the edges with the same destination node (i.e., the entries in
//! > the same row) fall in the same partition"*.
//!
//! Because a CSR row holds all edges of one destination, any split at row
//! boundaries satisfies that property. [`EdgePartition`] chooses the row
//! boundaries so that every partition carries roughly the same number of
//! edges (nnz), which is what gives load balance under the skewed degree
//! distributions the paper targets. Each partition is then aggregated by its
//! own thread with **no write conflicts**, since partitions own disjoint
//! output rows.

use crate::csr::Csr;
use crate::matrix::Matrix;

/// A split of CSR rows into contiguous, nnz-balanced chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePartition {
    /// `bounds[i]..bounds[i+1]` is the row range of partition `i`.
    bounds: Vec<usize>,
}

impl EdgePartition {
    /// Partition the rows of `csr` into (at most) `t` chunks with roughly
    /// equal edge counts. Always returns at least one chunk; never returns
    /// an empty chunk unless the matrix itself is empty.
    pub fn new(csr: &Csr, t: usize) -> Self {
        let t = t.max(1);
        let nnz = csr.nnz();
        let n_rows = csr.n_rows();
        if nnz == 0 || t == 1 || n_rows <= 1 {
            return Self { bounds: vec![0, n_rows] };
        }
        let per_part = nnz.div_ceil(t);
        let mut bounds = Vec::with_capacity(t + 1);
        bounds.push(0);
        let indptr = csr.indptr();
        let mut next_quota = per_part;
        for r in 1..n_rows {
            if indptr[r] >= next_quota && bounds.len() < t {
                bounds.push(r);
                next_quota = indptr[r] + per_part;
            }
        }
        bounds.push(n_rows);
        Self { bounds }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.bounds.len() - 1
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row range of partition `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// Iterate over all row ranges.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.len()).map(|i| self.range(i))
    }

    /// Edge count of partition `i` for a given matrix.
    pub fn part_nnz(&self, csr: &Csr, i: usize) -> usize {
        let r = self.range(i);
        csr.indptr()[r.end] - csr.indptr()[r.start]
    }
}

/// Execution context for aggregation kernels: how many partitions/threads to
/// use. A context with `threads == 1` degenerates to the sequential kernel,
/// which is what `AGL_base` (no `+partition`) uses in the Table 4 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCtx {
    /// Number of aggregation threads (and edge partitions).
    pub threads: usize,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

impl ExecCtx {
    /// Sequential execution (the `AGL_base` configuration).
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// Parallel execution with `t` edge partitions (`AGL+partition`).
    pub fn parallel(t: usize) -> Self {
        Self { threads: t.max(1) }
    }

    /// `csr @ dense` using edge-partitioned multithreaded aggregation when
    /// `threads > 1`, sequential otherwise. The result is bit-identical to
    /// the sequential kernel because partitions write disjoint rows and each
    /// row is accumulated in the same order.
    pub fn spmm(&self, csr: &Csr, dense: &Matrix) -> Matrix {
        if self.threads <= 1 {
            return csr.spmm(dense);
        }
        let part = EdgePartition::new(csr, self.threads);
        let mut out = Matrix::zeros(csr.n_rows(), dense.cols());
        let cols = dense.cols();
        // Split the output buffer at partition boundaries so each thread gets
        // an exclusive &mut of its rows.
        let mut slices: Vec<(std::ops::Range<usize>, &mut [f32])> = Vec::with_capacity(part.len());
        let mut rest = out.as_mut_slice();
        let mut offset = 0usize;
        for range in part.ranges() {
            let take = (range.end - range.start) * cols;
            let (head, tail) = rest.split_at_mut(take);
            slices.push((range, head));
            rest = tail;
            offset += take;
        }
        debug_assert_eq!(offset, csr.n_rows() * cols);
        crossbeam::thread::scope(|scope| {
            for (range, out_rows) in slices {
                scope.spawn(move |_| {
                    for r in range.clone() {
                        let (srcs, vals) = csr.row(r);
                        let base = (r - range.start) * cols;
                        let out_row = &mut out_rows[base..base + cols];
                        for (&c, &w) in srcs.iter().zip(vals) {
                            let x = dense.row(c as usize);
                            for (o, &xv) in out_row.iter_mut().zip(x) {
                                *o += w * xv;
                            }
                        }
                    }
                });
            }
        })
        .expect("aggregation worker panicked");
        out
    }

    /// Row-parallel map over destination rows: calls `f(dst_row_index)` from
    /// up to `threads` workers, chunked by the given partition. Used by the
    /// GAT layer whose per-row work (attention softmax) is not a plain spmm.
    ///
    /// `f` must only touch state owned by row `dst` — the partitioning
    /// guarantees no two threads see the same row.
    pub fn for_each_row<F>(&self, csr: &Csr, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads <= 1 {
            for r in 0..csr.n_rows() {
                f(r);
            }
            return;
        }
        let part = EdgePartition::new(csr, self.threads);
        crossbeam::thread::scope(|scope| {
            for range in part.ranges() {
                let f = &f;
                scope.spawn(move |_| {
                    for r in range {
                        f(r);
                    }
                });
            }
        })
        .expect("aggregation worker panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn random_csr(n: usize, avg_deg: usize, seed: u64) -> Csr {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for dst in 0..n as u32 {
            let deg = rng.gen_range(0..=2 * avg_deg);
            for _ in 0..deg {
                coo.push(dst, rng.gen_range(0..n as u32), rng.gen_range(0.1..1.0f32));
            }
        }
        coo.into_csr()
    }

    fn random_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
    }

    #[test]
    fn partition_covers_all_rows_without_overlap() {
        let csr = random_csr(103, 7, 1);
        for t in [1, 2, 3, 8, 200] {
            let p = EdgePartition::new(&csr, t);
            let mut covered = 0;
            let mut prev_end = 0;
            for r in p.ranges() {
                assert_eq!(r.start, prev_end);
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, csr.n_rows());
            assert!(p.len() <= t.max(1));
        }
    }

    #[test]
    fn partition_balances_nnz() {
        let csr = random_csr(1000, 10, 2);
        let p = EdgePartition::new(&csr, 4);
        assert_eq!(p.len(), 4);
        let total: usize = (0..p.len()).map(|i| p.part_nnz(&csr, i)).sum();
        assert_eq!(total, csr.nnz());
        let max = (0..p.len()).map(|i| p.part_nnz(&csr, i)).max().unwrap();
        // With 1000 rows and avg degree 10 the imbalance should be small.
        assert!(max < csr.nnz() / 4 + csr.nnz() / 10, "max part {} of nnz {}", max, csr.nnz());
    }

    #[test]
    fn parallel_spmm_matches_sequential() {
        let csr = random_csr(211, 6, 3);
        let x = random_dense(211, 17, 4);
        let seq = ExecCtx::sequential().spmm(&csr, &x);
        for t in [2, 3, 7] {
            let par = ExecCtx::parallel(t).spmm(&csr, &x);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "t={t} must be bit-identical");
        }
    }

    #[test]
    fn for_each_row_visits_every_row_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let csr = random_csr(57, 4, 5);
        let visits: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        ExecCtx::parallel(4).for_each_row(&csr, |r| {
            visits[r].fetch_add(1, Ordering::Relaxed);
        });
        assert!(visits.iter().all(|v| v.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let csr = Csr::empty(5, 5);
        let p = EdgePartition::new(&csr, 4);
        assert_eq!(p.len(), 1);
        let x = random_dense(5, 3, 6);
        let out = ExecCtx::parallel(3).spmm(&csr, &x);
        assert_eq!(out.sum(), 0.0);
    }
}
