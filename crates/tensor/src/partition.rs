//! Edge partitioning — the operator-level optimisation of paper §3.3.2.
//!
//! > *"we partition the sparse adjacent matrix into `t` parts and ensure
//! > that the edges with the same destination node (i.e., the entries in
//! > the same row) fall in the same partition"*.
//!
//! Because a CSR row holds all edges of one destination, any split at row
//! boundaries satisfies that property. [`EdgePartition`] chooses the row
//! boundaries so that every partition carries roughly the same number of
//! edges (nnz), which is what gives load balance under the skewed degree
//! distributions the paper targets. Each partition is then aggregated by its
//! own thread with **no write conflicts**, since partitions own disjoint
//! output rows.
//!
//! The "conflict-free" claim is *checked*, not just stated: before any
//! threads are spawned the kernels assert [`EdgePartition::check_conflict_free`]
//! (disjoint row ranges covering `0..n_rows`), and in debug builds a
//! [write-set tracker](WriteSetTracker) records which worker touched every
//! output row and fails loudly on any cross-thread overlap. The richer
//! configurable verifier lives in `agl-analysis` (`ConflictFreedomVerifier`),
//! which builds on the same primitives.

use crate::csr::Csr;
use crate::matrix::Matrix;
use std::fmt;

/// A split of CSR rows into contiguous, nnz-balanced chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePartition {
    /// `bounds[i]..bounds[i+1]` is the row range of partition `i`.
    bounds: Vec<usize>,
}

/// Why a partition fails the conflict-freedom check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionViolation {
    /// Fewer than two boundary entries — no partitions at all.
    NoPartitions,
    /// First boundary is not row 0.
    DoesNotStartAtZero { first: usize },
    /// Last boundary is not `n_rows` — rows would be skipped or invented.
    DoesNotCover { last: usize, n_rows: usize },
    /// Boundaries decrease: partitions would overlap (a write conflict).
    Overlap { index: usize, start: usize, end: usize },
    /// An empty partition in a non-empty matrix (a wasted thread).
    EmptyPart { index: usize },
    /// A partition's edge count exceeds the balance bound.
    Imbalanced { index: usize, part_nnz: usize, bound: usize },
}

impl fmt::Display for PartitionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionViolation::NoPartitions => write!(f, "partition has no chunks"),
            PartitionViolation::DoesNotStartAtZero { first } => {
                write!(f, "first boundary is {first}, expected 0")
            }
            PartitionViolation::DoesNotCover { last, n_rows } => {
                write!(f, "last boundary is {last}, expected n_rows = {n_rows}")
            }
            PartitionViolation::Overlap { index, start, end } => {
                write!(f, "partition {index} has start {start} > end {end}: ranges overlap")
            }
            PartitionViolation::EmptyPart { index } => {
                write!(f, "partition {index} is empty in a non-empty matrix")
            }
            PartitionViolation::Imbalanced { index, part_nnz, bound } => {
                write!(f, "partition {index} holds {part_nnz} edges, balance bound is {bound}")
            }
        }
    }
}

impl std::error::Error for PartitionViolation {}

impl EdgePartition {
    /// Partition the rows of `csr` into (at most) `t` chunks with roughly
    /// equal edge counts. Always returns at least one chunk; never returns
    /// an empty chunk unless the matrix itself is empty.
    pub fn new(csr: &Csr, t: usize) -> Self {
        let t = t.max(1);
        let nnz = csr.nnz();
        let n_rows = csr.n_rows();
        if nnz == 0 || t == 1 || n_rows <= 1 {
            return Self { bounds: vec![0, n_rows] };
        }
        let per_part = nnz.div_ceil(t);
        let mut bounds = Vec::with_capacity(t + 1);
        bounds.push(0);
        let indptr = csr.indptr();
        let mut next_quota = per_part;
        for r in 1..n_rows {
            if indptr[r] >= next_quota && bounds.len() < t {
                bounds.push(r);
                next_quota = indptr[r] + per_part;
            }
        }
        bounds.push(n_rows);
        Self { bounds }
    }

    /// Build directly from boundary rows (`bounds[i]..bounds[i+1]` is chunk
    /// `i`). **Unchecked**: exists so verifiers and tests can construct
    /// arbitrary — including invalid — partitions; run
    /// [`check_conflict_free`](Self::check_conflict_free) before trusting one.
    pub fn from_bounds(bounds: Vec<usize>) -> Self {
        Self { bounds }
    }

    /// The boundary rows. `bounds()[i]..bounds()[i+1]` is partition `i`.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row range of partition `i`.
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// Iterate over all row ranges.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.len()).map(|i| self.range(i))
    }

    /// Edge count of partition `i` for a given matrix.
    pub fn part_nnz(&self, csr: &Csr, i: usize) -> usize {
        let r = self.range(i);
        csr.indptr()[r.end] - csr.indptr()[r.start]
    }

    /// The structural half of the §3.3.2 conflict-freedom argument: row
    /// ranges are contiguous, pairwise disjoint, cover exactly `0..n_rows`,
    /// and (for non-empty matrices) no chunk is empty. Kernels assert this
    /// *before* spawning threads; `agl-analysis` re-checks it with a
    /// configurable nnz-imbalance bound on top.
    pub fn check_conflict_free(&self, n_rows: usize) -> Result<(), PartitionViolation> {
        if self.bounds.len() < 2 {
            return Err(PartitionViolation::NoPartitions);
        }
        if self.bounds[0] != 0 {
            return Err(PartitionViolation::DoesNotStartAtZero { first: self.bounds[0] });
        }
        let last = self.bounds[self.bounds.len() - 1];
        if last != n_rows {
            return Err(PartitionViolation::DoesNotCover { last, n_rows });
        }
        for i in 0..self.len() {
            let (start, end) = (self.bounds[i], self.bounds[i + 1]);
            if start > end {
                return Err(PartitionViolation::Overlap { index: i, start, end });
            }
            if start == end && n_rows > 0 {
                return Err(PartitionViolation::EmptyPart { index: i });
            }
        }
        Ok(())
    }
}

/// Debug-mode write-set tracker: records which worker claimed each output
/// row and fails on any cross-thread claim — the dynamic half of the
/// conflict-freedom proof. Compiled into the aggregation kernels only under
/// `debug_assertions`; release builds pay nothing.
#[cfg(debug_assertions)]
pub struct WriteSetTracker {
    /// Row -> claiming worker (usize::MAX = unclaimed).
    claims: Vec<std::sync::atomic::AtomicUsize>,
}

#[cfg(debug_assertions)]
impl WriteSetTracker {
    const UNCLAIMED: usize = usize::MAX;

    pub fn new(n_rows: usize) -> Self {
        Self { claims: (0..n_rows).map(|_| std::sync::atomic::AtomicUsize::new(Self::UNCLAIMED)).collect() }
    }

    /// Record that `worker` is about to write row `row`. Fails the process
    /// (debug builds only) if another worker already claimed it.
    pub fn claim(&self, row: usize, worker: usize) {
        use std::sync::atomic::Ordering;
        // Conflict detector: a disjoint partition means each cell is touched by one worker,
        // so no ordering is needed; an overlapping claim races by definition, and any
        // interleaving of the swap still exposes it to the assert below.
        // agl-lint: allow(atomics) — detector for races, not a participant; see above.
        let prev = self.claims[row].swap(worker, Ordering::Relaxed);
        assert!(
            prev == Self::UNCLAIMED || prev == worker,
            "conflict-freedom violated: row {row} written by worker {prev} and worker {worker}"
        );
    }

    /// Rows claimed so far (test observability).
    pub fn claimed_rows(&self) -> usize {
        use std::sync::atomic::Ordering;
        // Test observability read after the worker scope has joined.
        // agl-lint: allow(atomics) — the scope exit is the happens-before edge.
        self.claims.iter().filter(|c| c.load(Ordering::Relaxed) != Self::UNCLAIMED).count()
    }
}

/// Execution context for aggregation kernels: how many partitions/threads to
/// use, plus the observability handle kernel spans report through. A context
/// with `threads == 1` degenerates to the sequential kernel, which is what
/// `AGL_base` (no `+partition`) uses in the Table 4 ablation.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    /// Number of aggregation threads (and edge partitions).
    pub threads: usize,
    /// Span/metric sink; `Obs::default()` keeps the kernels inert.
    pub obs: agl_obs::Obs,
    /// Trace track kernel spans land on. Per-worker contexts (one trainer
    /// worker per thread) must use distinct tracks — e.g. `tensor.w0` — so
    /// logical-clock timestamps stay deterministic per worker.
    pub track: String,
}

impl Default for ExecCtx {
    fn default() -> Self {
        Self::sequential()
    }
}

impl ExecCtx {
    /// Sequential execution (the `AGL_base` configuration).
    pub fn sequential() -> Self {
        Self { threads: 1, obs: agl_obs::Obs::default(), track: "tensor".to_string() }
    }

    /// Parallel execution with `t` edge partitions (`AGL+partition`).
    pub fn parallel(t: usize) -> Self {
        Self { threads: t.max(1), ..Self::sequential() }
    }

    /// Attach an observability handle (builder-style).
    pub fn with_obs(mut self, obs: agl_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Put kernel spans on `track` instead of the default `tensor` lane.
    pub fn with_track(mut self, track: &str) -> Self {
        self.track = track.to_string();
        self
    }

    /// `csr @ dense` using edge-partitioned multithreaded aggregation when
    /// `threads > 1`, sequential otherwise. The result is bit-identical to
    /// the sequential kernel because partitions write disjoint rows and each
    /// row is accumulated in the same order.
    pub fn spmm(&self, csr: &Csr, dense: &Matrix) -> Matrix {
        if self.threads <= 1 {
            let mut span = self.obs.span(&self.track, "spmm.sequential");
            span.counter("rows", csr.n_rows() as u64);
            span.counter("nnz", csr.nnz() as u64);
            return csr.spmm(dense);
        }
        let part = EdgePartition::new(csr, self.threads);
        // Conflict-freedom is checked *before* any thread is spawned; a
        // violated partition would mean overlapping &mut row slices below.
        debug_assert!(
            part.check_conflict_free(csr.n_rows()).is_ok(),
            "EdgePartition::new produced a conflicting partition: {:?}",
            part.check_conflict_free(csr.n_rows())
        );
        let mut span = self.obs.span(&self.track, "spmm.edge_partitioned");
        span.counter("rows", csr.n_rows() as u64);
        span.counter("nnz", csr.nnz() as u64);
        span.counter("parts", part.len() as u64);
        let mut out = Matrix::zeros(csr.n_rows(), dense.cols());
        let cols = dense.cols();
        #[cfg(debug_assertions)]
        let tracker = WriteSetTracker::new(csr.n_rows());
        // Split the output buffer at partition boundaries so each thread gets
        // an exclusive &mut of its rows.
        let mut slices: Vec<(std::ops::Range<usize>, &mut [f32])> = Vec::with_capacity(part.len());
        let mut rest = out.as_mut_slice();
        let mut offset = 0usize;
        for range in part.ranges() {
            let take = (range.end - range.start) * cols;
            let (head, tail) = rest.split_at_mut(take);
            slices.push((range, head));
            rest = tail;
            offset += take;
        }
        debug_assert_eq!(offset, csr.n_rows() * cols);
        let obs = &self.obs;
        let kernel_ctx = span.context();
        // Tile track names are formatted up front, outside the hot spawn
        // loop (and only when tracing is live).
        let tile_tracks: Vec<String> = if obs.is_enabled() {
            (0..slices.len()).map(|i| format!("{}.p{i}", self.track)).collect()
        } else {
            Vec::new()
        };
        std::thread::scope(|scope| {
            for (_worker, (range, out_rows)) in slices.into_iter().enumerate() {
                #[cfg(debug_assertions)]
                let tracker = &tracker;
                let (start, end) = (range.start, range.end);
                let nnz = csr.indptr()[end] - csr.indptr()[start];
                let tile_track = tile_tracks.get(_worker).map_or("", String::as_str);
                scope.spawn(move || {
                    // Each tile spans on its own `{track}.p{i}` lane: under
                    // the logical clock a track's timestamps depend only on
                    // its own span order, so per-tile lanes keep the trace
                    // byte-stable however the threads interleave. Tiles
                    // parent under the kernel span for causal linkage.
                    let mut tile = obs.span_child_of(tile_track, "spmm.tile", kernel_ctx);
                    tile.counter("rows", (end - start) as u64);
                    tile.counter("nnz", nnz as u64);
                    for r in start..end {
                        #[cfg(debug_assertions)]
                        tracker.claim(r, _worker);
                        let (srcs, vals) = csr.row(r);
                        let base = (r - start) * cols;
                        let out_row = &mut out_rows[base..base + cols];
                        for (&c, &w) in srcs.iter().zip(vals) {
                            let x = dense.row(c as usize);
                            for (o, &xv) in out_row.iter_mut().zip(x) {
                                *o += w * xv;
                            }
                        }
                    }
                });
            }
        });
        out
    }

    /// Row-parallel map over destination rows: calls `f(dst_row_index)` from
    /// up to `threads` workers, chunked by the given partition. Used by the
    /// GAT layer whose per-row work (attention softmax) is not a plain spmm.
    ///
    /// `f` must only touch state owned by row `dst` — the partitioning
    /// guarantees no two threads see the same row, and in debug builds the
    /// write-set tracker verifies it.
    pub fn for_each_row<F>(&self, csr: &Csr, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads <= 1 {
            for r in 0..csr.n_rows() {
                f(r);
            }
            return;
        }
        let part = EdgePartition::new(csr, self.threads);
        debug_assert!(
            part.check_conflict_free(csr.n_rows()).is_ok(),
            "EdgePartition::new produced a conflicting partition: {:?}",
            part.check_conflict_free(csr.n_rows())
        );
        #[cfg(debug_assertions)]
        let tracker = WriteSetTracker::new(csr.n_rows());
        std::thread::scope(|scope| {
            for (_worker, range) in part.ranges().enumerate() {
                let f = &f;
                #[cfg(debug_assertions)]
                let tracker = &tracker;
                scope.spawn(move || {
                    for r in range {
                        #[cfg(debug_assertions)]
                        tracker.claim(r, _worker);
                        f(r);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Coo;
    use crate::rng::{Rng, SmallRng};

    fn random_csr(n: usize, avg_deg: usize, seed: u64) -> Csr {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coo = Coo::new(n, n);
        for dst in 0..n as u32 {
            let deg = rng.gen_range(0..=2 * avg_deg);
            for _ in 0..deg {
                coo.push(dst, rng.gen_range(0..n as u32), rng.gen_range(0.1..1.0f32));
            }
        }
        coo.into_csr()
    }

    fn random_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
    }

    #[test]
    fn partition_covers_all_rows_without_overlap() {
        let csr = random_csr(103, 7, 1);
        for t in [1, 2, 3, 8, 200] {
            let p = EdgePartition::new(&csr, t);
            let mut covered = 0;
            let mut prev_end = 0;
            for r in p.ranges() {
                assert_eq!(r.start, prev_end);
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, csr.n_rows());
            assert!(p.len() <= t.max(1));
            assert!(p.check_conflict_free(csr.n_rows()).is_ok());
        }
    }

    #[test]
    fn partition_balances_nnz() {
        let csr = random_csr(1000, 10, 2);
        let p = EdgePartition::new(&csr, 4);
        assert_eq!(p.len(), 4);
        let total: usize = (0..p.len()).map(|i| p.part_nnz(&csr, i)).sum();
        assert_eq!(total, csr.nnz());
        let max = (0..p.len()).map(|i| p.part_nnz(&csr, i)).max().unwrap();
        // With 1000 rows and avg degree 10 the imbalance should be small.
        assert!(max < csr.nnz() / 4 + csr.nnz() / 10, "max part {} of nnz {}", max, csr.nnz());
    }

    #[test]
    fn parallel_spmm_matches_sequential() {
        let csr = random_csr(211, 6, 3);
        let x = random_dense(211, 17, 4);
        let seq = ExecCtx::sequential().spmm(&csr, &x);
        for t in [2, 3, 7] {
            let par = ExecCtx::parallel(t).spmm(&csr, &x);
            assert_eq!(seq.max_abs_diff(&par), 0.0, "t={t} must be bit-identical");
        }
    }

    #[test]
    fn spmm_kernels_emit_spans_with_tile_parents() {
        let csr = random_csr(64, 5, 9);
        let x = random_dense(64, 4, 10);
        let obs = agl_obs::Obs::enabled_logical();
        let ctx = ExecCtx::parallel(3).with_obs(obs.clone()).with_track("tensor.w0");
        ctx.spmm(&csr, &x);
        let events = obs.trace().unwrap().events();
        let kernel: Vec<_> = events.iter().filter(|e| e.name == "spmm.edge_partitioned").collect();
        assert_eq!(kernel.len(), 1, "one kernel span per call");
        assert_eq!(kernel[0].track, "tensor.w0");
        assert!(kernel[0].args.iter().any(|(k, v)| k == "nnz" && *v == csr.nnz() as u64));
        let tiles: Vec<_> = events.iter().filter(|e| e.name == "spmm.tile").collect();
        assert!(!tiles.is_empty(), "tile spans recorded");
        for t in &tiles {
            assert_eq!(t.parent_id, kernel[0].span_id, "tile parents under the kernel span");
            assert!(t.track.starts_with("tensor.w0.p"), "{}", t.track);
        }
        let obs2 = agl_obs::Obs::enabled_logical();
        ExecCtx::sequential().with_obs(obs2.clone()).spmm(&csr, &x);
        assert_eq!(obs2.trace().unwrap().events()[0].name, "spmm.sequential");
    }

    #[test]
    fn for_each_row_visits_every_row_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let csr = random_csr(57, 4, 5);
        let visits: Vec<AtomicU32> = (0..57).map(|_| AtomicU32::new(0)).collect();
        ExecCtx::parallel(4).for_each_row(&csr, |r| {
            visits[r].fetch_add(1, Ordering::Relaxed);
        });
        assert!(visits.iter().all(|v| v.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_matrix_is_fine() {
        let csr = Csr::empty(5, 5);
        let p = EdgePartition::new(&csr, 4);
        assert_eq!(p.len(), 1);
        let x = random_dense(5, 3, 6);
        let out = ExecCtx::parallel(3).spmm(&csr, &x);
        assert_eq!(out.sum(), 0.0);
    }

    #[test]
    fn check_rejects_overlapping_and_gapped_bounds() {
        // Overlap: second chunk starts before the first ends.
        assert!(matches!(
            EdgePartition::from_bounds(vec![0, 6, 4, 10]).check_conflict_free(10),
            Err(PartitionViolation::Overlap { .. })
        ));
        // Gap / wrong cover.
        assert!(matches!(
            EdgePartition::from_bounds(vec![0, 4, 8]).check_conflict_free(10),
            Err(PartitionViolation::DoesNotCover { .. })
        ));
        assert!(matches!(
            EdgePartition::from_bounds(vec![2, 10]).check_conflict_free(10),
            Err(PartitionViolation::DoesNotStartAtZero { .. })
        ));
        assert!(matches!(
            EdgePartition::from_bounds(vec![0, 0, 10]).check_conflict_free(10),
            Err(PartitionViolation::EmptyPart { .. })
        ));
        assert!(matches!(
            EdgePartition::from_bounds(vec![5]).check_conflict_free(10),
            Err(PartitionViolation::NoPartitions)
        ));
        assert!(EdgePartition::from_bounds(vec![0, 4, 10]).check_conflict_free(10).is_ok());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn write_set_tracker_accepts_disjoint_claims() {
        let t = WriteSetTracker::new(8);
        t.claim(0, 0);
        t.claim(1, 0);
        t.claim(2, 1);
        t.claim(2, 1); // same worker re-claiming its own row is fine
        assert_eq!(t.claimed_rows(), 3);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "conflict-freedom violated")]
    fn write_set_tracker_catches_cross_thread_write() {
        let t = WriteSetTracker::new(4);
        t.claim(3, 0);
        t.claim(3, 1);
    }
}
