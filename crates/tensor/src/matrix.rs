//! Dense row-major `f32` matrix and the kernels GNN training needs.
//!
//! The kernels are written in the `ikj` loop order (row of the output in the
//! innermost loop walking contiguous memory), which is the standard
//! cache-friendly ordering for row-major data and what the Rust performance
//! guidance recommends for hot dense loops: no bounds checks in the inner
//! loop (slices are re-borrowed per row), no allocation inside the loop.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// An all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// A matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Build from a row-major buffer. Panics if the buffer length does not
    /// match `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} != {}x{}", data.len(), rows, cols);
        Self { rows, cols, data }
    }

    /// Build from nested rows (test/fixture convenience).
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// `self @ other` — the plain dense product.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch {:?} x {:?}", self.shape(), other.shape());
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materialising the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch {:?} x {:?}", self.shape(), other.shape());
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` without materialising the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch {:?} x {:?}", self.shape(), other.shape());
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Materialised transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Elementwise product `self * other` (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scale all elements in place.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Map every element through `f` into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&x| f(x)).collect())
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Add a row-vector `bias` (length = cols) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (a, &b) in row.iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Column sums — gradient of a broadcast bias.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Gather the given rows into a new matrix (`out.row(i) = self.row(idx[i])`).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Scatter-add rows of `src` back: `self.row(idx[i]) += src.row(i)`.
    /// This is the adjoint of [`Matrix::gather_rows`].
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Matrix) {
        assert_eq!(idx.len(), src.rows(), "scatter index length mismatch");
        assert_eq!(self.cols, src.cols(), "scatter width mismatch");
        for (i, &r) in idx.iter().enumerate() {
            let dst = self.row_mut(r);
            for (d, &s) in dst.iter_mut().zip(src.row(i)) {
                *d += s;
            }
        }
    }

    /// Row index of the maximum entry for each row (first max on ties).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                let mut best = 0;
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Maximum absolute difference against another matrix — test helper.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(&other.data).map(|(&a, &b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[10.0, 11.0, 12.0]]);
        (a, b)
    }

    #[test]
    fn matmul_basic() {
        let (a, b) = abc();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c[(0, 0)], 27.0);
        assert_eq!(c[(2, 2)], 117.0);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let (a, b) = abc();
        // a^T @ a  via t_matmul vs transpose().matmul()
        let t1 = a.t_matmul(&a);
        let t2 = a.transpose().matmul(&a);
        assert!(t1.max_abs_diff(&t2) < 1e-6);
        let u1 = b.matmul_t(&b);
        let u2 = b.matmul(&b.transpose());
        assert!(u1.max_abs_diff(&u2) < 1e-6);
    }

    #[test]
    fn eye_is_identity_for_matmul() {
        let (a, _) = abc();
        let i = Matrix::eye(2);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-7);
    }

    #[test]
    fn gather_scatter_roundtrip_is_adjoint() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let idx = [2usize, 0, 2];
        let g = m.gather_rows(&idx);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        let mut acc = Matrix::zeros(3, 2);
        acc.scatter_add_rows(&idx, &g);
        // row 2 gathered twice -> scattered back doubled
        assert_eq!(acc.row(2), &[10.0, 12.0]);
        assert_eq!(acc.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn broadcast_bias_and_col_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(m.row(2), &[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let m = Matrix::from_rows(&[&[0.0, 3.0, 1.0], &[9.0, 2.0, 9.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let (a, _) = abc();
        let _ = a.matmul(&a);
    }

    #[test]
    fn axpy_and_hadamard() {
        let (a, _) = abc();
        let mut c = a.clone();
        c.axpy(2.0, &a);
        assert_eq!(c[(0, 0)], 3.0);
        let h = a.hadamard(&a);
        assert_eq!(h[(2, 1)], 36.0);
    }
}
