//! `agl-tensor` — the numeric substrate of the AGL reproduction.
//!
//! AGL (Zhang et al., VLDB 2020) trains graph neural networks on CPU
//! clusters, and its operator-level contribution is the *edge-partitioned*
//! parallel aggregation of §3.3.2: sparse adjacency rows (edges sorted by
//! destination) are split into partitions so that every thread owns a
//! disjoint set of destination nodes and aggregation is conflict-free.
//!
//! This crate provides everything the layers in `agl-nn` need:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the small set of
//!   BLAS-like kernels GNN training requires (matmul, transposed matmuls,
//!   axpy, row gather/scatter).
//! * [`Csr`] — a compressed sparse row matrix whose rows are destination
//!   nodes and whose columns are source nodes, i.e. row `v` lists the
//!   in-edge neighborhood `N+(v)` of the paper (§2.1).
//! * [`partition`] — the edge-partitioning strategy plus partitioned
//!   sparse-dense multiply kernels.
//! * [`ops`] — activations and their derivatives, softmax, dropout masks.
//! * [`init`] — Xavier/Glorot initialisation driven by a seeded RNG.
//!
//! Everything is deterministic given a seed; no global RNG state is used.

pub mod csr;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod partition;
pub mod rng;

pub use csr::{Coo, Csr};
pub use matrix::Matrix;
pub use partition::{EdgePartition, ExecCtx, PartitionViolation};
pub use rng::{derive_seed, seeded_rng, Rng, SliceRandom, SmallRng};
