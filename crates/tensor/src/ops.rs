//! Elementwise activations, softmax, and dropout — forward *and* the exact
//! derivative forms the hand-written backward passes in `agl-nn` consume.

use crate::matrix::Matrix;
use crate::rng::Rng;

/// Slope used for LeakyReLU inside GAT attention, matching the GAT paper
/// value used by the systems AGL compares against.
pub const LEAKY_RELU_SLOPE: f32 = 0.2;

/// ReLU forward.
#[inline]
pub fn relu(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// ReLU derivative in terms of the *input*.
#[inline]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// LeakyReLU with slope [`LEAKY_RELU_SLOPE`].
#[inline]
pub fn leaky_relu(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        LEAKY_RELU_SLOPE * x
    }
}

/// LeakyReLU derivative in terms of the input.
#[inline]
pub fn leaky_relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        LEAKY_RELU_SLOPE
    }
}

/// Numerically-stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid derivative in terms of the *output* `s = sigmoid(x)`.
#[inline]
pub fn sigmoid_grad_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// ELU (used as the hidden activation of GAT in the reference setups).
#[inline]
pub fn elu(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        x.exp() - 1.0
    }
}

/// ELU derivative in terms of the *output* `y = elu(x)`: `1` for `x>0`,
/// `y + 1 = exp(x)` otherwise.
#[inline]
pub fn elu_grad_from_output(y: f32) -> f32 {
    if y > 0.0 {
        1.0
    } else {
        y + 1.0
    }
}

/// The activation functions supported by the GNN layers. A closed enum keeps
/// layer caches `Send` and serialisable without trait objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    #[default]
    Relu,
    LeakyRelu,
    Elu,
    Sigmoid,
    /// Identity — used for final layers whose output feeds a loss directly.
    Linear,
}

impl Activation {
    /// Apply in place, returning a copy of the *pre-activation* input when
    /// the backward pass needs it (`Relu`/`LeakyRelu` differentiate w.r.t.
    /// the input; `Elu`/`Sigmoid` w.r.t. the output; `Linear` needs nothing).
    pub fn forward_inplace(self, m: &mut Matrix) {
        match self {
            Activation::Relu => m.map_inplace(relu),
            Activation::LeakyRelu => m.map_inplace(leaky_relu),
            Activation::Elu => m.map_inplace(elu),
            Activation::Sigmoid => m.map_inplace(sigmoid),
            Activation::Linear => {}
        }
    }

    /// Multiply `grad` elementwise by the activation derivative.
    ///
    /// * `pre` — the pre-activation values (input to the activation)
    /// * `post` — the post-activation values (output)
    ///
    /// Both are supplied so each variant can pick the cheaper form.
    pub fn backward_inplace(self, grad: &mut Matrix, pre: &Matrix, post: &Matrix) {
        match self {
            Activation::Relu => {
                for (g, &x) in grad.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    *g *= relu_grad(x);
                }
            }
            Activation::LeakyRelu => {
                for (g, &x) in grad.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    *g *= leaky_relu_grad(x);
                }
            }
            Activation::Elu => {
                for (g, &y) in grad.as_mut_slice().iter_mut().zip(post.as_slice()) {
                    *g *= elu_grad_from_output(y);
                }
            }
            Activation::Sigmoid => {
                for (g, &s) in grad.as_mut_slice().iter_mut().zip(post.as_slice()) {
                    *g *= sigmoid_grad_from_output(s);
                }
            }
            Activation::Linear => {}
        }
    }
}

/// Row-wise softmax, numerically stabilised by the row max.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place row-wise softmax.
pub fn softmax_rows_inplace(m: &mut Matrix) {
    let cols = m.cols();
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        softmax_slice_inplace(row);
    }
}

/// In-place softmax over a single slice.
pub fn softmax_slice_inplace(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// An inverted-dropout mask: entries are `0` with probability `p` and
/// `1/(1-p)` otherwise, so the expected activation is unchanged and the
/// backward pass multiplies by the same mask.
pub fn dropout_mask(rows: usize, cols: usize, p: f32, rng: &mut impl Rng) -> Matrix {
    assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1)");
    if p == 0.0 {
        return Matrix::full(rows, cols, 1.0);
    }
    let keep = 1.0 / (1.0 - p);
    let data = (0..rows * cols).map(|_| if rng.gen::<f32>() < p { 0.0 } else { keep }).collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let s = softmax_rows(&m);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0f32, 1001.0, 1002.0];
        let mut b = vec![0.0f32, 1.0, 2.0];
        softmax_slice_inplace(&mut a);
        softmax_slice_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn sigmoid_extremes_are_finite() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn activation_backward_matches_finite_difference() {
        let eps = 1e-3f32;
        for act in [Activation::Relu, Activation::LeakyRelu, Activation::Elu, Activation::Sigmoid] {
            for &x in &[-1.7f32, -0.3, 0.4, 2.1] {
                let mut pre = Matrix::from_vec(1, 1, vec![x]);
                let mut post = pre.clone();
                act.forward_inplace(&mut post);
                let mut g = Matrix::from_vec(1, 1, vec![1.0]);
                act.backward_inplace(&mut g, &pre, &post);
                // finite difference
                let mut hi = Matrix::from_vec(1, 1, vec![x + eps]);
                let mut lo = Matrix::from_vec(1, 1, vec![x - eps]);
                act.forward_inplace(&mut hi);
                act.forward_inplace(&mut lo);
                let fd = (hi[(0, 0)] - lo[(0, 0)]) / (2.0 * eps);
                assert!((g[(0, 0)] - fd).abs() < 1e-2, "{act:?} at {x}: analytic {} vs fd {fd}", g[(0, 0)]);
                pre.scale(1.0); // silence unused-mut lint paths
            }
        }
    }

    #[test]
    fn dropout_mask_scales_expectation() {
        let mut rng = seeded_rng(7);
        let m = dropout_mask(100, 100, 0.3, &mut rng);
        let mean = m.sum() / (100.0 * 100.0);
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout keeps expectation ~1, got {mean}");
        let zeros = m.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10000.0;
        assert!((frac - 0.3).abs() < 0.03);
    }

    #[test]
    fn dropout_zero_probability_is_all_ones() {
        let mut rng = seeded_rng(8);
        let m = dropout_mask(4, 4, 0.0, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v == 1.0));
    }
}
