//! Parameter initialisation. All initialisers take the RNG explicitly so
//! model construction is deterministic given a seed — a requirement for the
//! MapReduce retry semantics (re-executed tasks must reproduce their output)
//! and for test reproducibility.

use crate::matrix::Matrix;
use crate::rng::Rng;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The default for the dense projections inside GCN/SAGE/GAT layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| rng.gen_range(-a..a)).collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

/// Uniform `U(-a, a)` with an explicit bound — used for attention vectors.
pub fn uniform(rows: usize, cols: usize, a: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..a)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// All-zeros — biases.
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn xavier_bound_and_determinism() {
        let mut r1 = seeded_rng(42);
        let mut r2 = seeded_rng(42);
        let a = (6.0 / (30 + 20) as f32).sqrt();
        let m1 = xavier_uniform(30, 20, &mut r1);
        let m2 = xavier_uniform(30, 20, &mut r2);
        assert_eq!(m1, m2, "same seed, same init");
        assert!(m1.as_slice().iter().all(|v| v.abs() <= a));
        // different seed differs
        let m3 = xavier_uniform(30, 20, &mut seeded_rng(43));
        assert_ne!(m1, m3);
    }

    #[test]
    fn xavier_is_roughly_centered() {
        let m = xavier_uniform(100, 100, &mut seeded_rng(1));
        let mean = m.sum() / m.len() as f32;
        assert!(mean.abs() < 0.01);
    }
}
