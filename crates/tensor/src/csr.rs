//! Compressed sparse row adjacency.
//!
//! Row `v` of a [`Csr`] lists the **in-edge** sources of destination node `v`
//! — the set `N+(v)` of paper §2.1 — because every aggregation in a GNN layer
//! runs over in-edges. This matches the paper's vectorization step (§3.3.1):
//! *"Edges in the sparse matrix are sorted by their destination nodes"*.

use crate::matrix::Matrix;

/// A coordinate-format edge list used to assemble a [`Csr`].
///
/// Entries are `(dst, src, weight)` triples; duplicates are allowed and are
/// summed when converting (consistent with sparse matrix semantics).
#[derive(Debug, Clone, Default)]
pub struct Coo {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32, f32)>,
}

impl Coo {
    /// New empty COO with the given shape.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self { n_rows, n_cols, entries: Vec::new() }
    }

    /// Add entry `(dst, src) = w`.
    pub fn push(&mut self, dst: u32, src: u32, w: f32) {
        debug_assert!((dst as usize) < self.n_rows && (src as usize) < self.n_cols);
        self.entries.push((dst, src, w));
    }

    /// Number of (possibly duplicate) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Convert to CSR. Entries are bucketed by destination row (counting
    /// sort — O(nnz)), duplicates within a row are merged by summation, and
    /// columns within each row are sorted ascending.
    pub fn into_csr(self) -> Csr {
        let mut counts = vec![0usize; self.n_rows + 1];
        for &(dst, _, _) in &self.entries {
            counts[dst as usize + 1] += 1;
        }
        for i in 0..self.n_rows {
            counts[i + 1] += counts[i];
        }
        let indptr_raw = counts.clone();
        let mut indices = vec![0u32; self.entries.len()];
        let mut values = vec![0f32; self.entries.len()];
        let mut cursor = counts;
        for (dst, src, w) in self.entries {
            let at = cursor[dst as usize];
            indices[at] = src;
            values[at] = w;
            cursor[dst as usize] += 1;
        }
        // Sort within each row and merge duplicate columns.
        let mut out_indptr = vec![0usize; self.n_rows + 1];
        let mut out_indices = Vec::with_capacity(indices.len());
        let mut out_values = Vec::with_capacity(values.len());
        let mut scratch: Vec<(u32, f32)> = Vec::new();
        for r in 0..self.n_rows {
            let (s, e) = (indptr_raw[r], indptr_raw[r + 1]);
            scratch.clear();
            scratch.extend(indices[s..e].iter().copied().zip(values[s..e].iter().copied()));
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let (c, mut w) = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == c {
                    w += scratch[j].1;
                    j += 1;
                }
                out_indices.push(c);
                out_values.push(w);
                i = j;
            }
            out_indptr[r + 1] = out_indices.len();
        }
        Csr { n_rows: self.n_rows, n_cols: self.n_cols, indptr: out_indptr, indices: out_indices, values: out_values }
    }
}

/// Compressed sparse row matrix. Rows are destination nodes; columns are
/// source nodes. Column indices within each row are sorted ascending and
/// unique.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// An empty matrix with no edges.
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        Self { n_rows, n_cols, indptr: vec![0; n_rows + 1], indices: Vec::new(), values: Vec::new() }
    }

    /// Build directly from raw CSR arrays (trusted input; asserts invariants).
    pub fn from_raw(n_rows: usize, n_cols: usize, indptr: Vec<usize>, indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(indptr.len(), n_rows + 1);
        assert_eq!(indices.len(), values.len());
        assert_eq!(indptr.last().copied(), Some(indices.len()));
        debug_assert!(indices.iter().all(|&c| (c as usize) < n_cols));
        Self { n_rows, n_cols, indptr, indices, values }
    }

    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries (edges).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The `(sources, weights)` of row `r` — the in-edge neighborhood of
    /// destination `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// In-degree of destination `r` (stored entries in its row).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Iterate `(dst, src, weight)` over all stored entries.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.n_rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r as u32, c, v))
        })
    }

    /// Sparse × dense: `out = self @ dense`. Row `r` of the output is the
    /// weighted sum of the dense rows of `r`'s in-edge sources — the
    /// message-passing *merge* step.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(
            self.n_cols,
            dense.rows(),
            "spmm shape mismatch: {}x{} @ {:?}",
            self.n_rows,
            self.n_cols,
            dense.shape()
        );
        let mut out = Matrix::zeros(self.n_rows, dense.cols());
        self.spmm_rows_into(0, self.n_rows, dense, &mut out);
        out
    }

    /// Compute rows `[row_start, row_end)` of `self @ dense` into `out`.
    /// This is the kernel the edge-partitioned parallel multiply dispatches
    /// to — each partition owns a disjoint row range of `out`.
    pub fn spmm_rows_into(&self, row_start: usize, row_end: usize, dense: &Matrix, out: &mut Matrix) {
        let n = dense.cols();
        debug_assert_eq!(out.cols(), n);
        for r in row_start..row_end {
            let (cols, vals) = self.row(r);
            let out_row = out.row_mut(r);
            for (&c, &w) in cols.iter().zip(vals) {
                let src = dense.row(c as usize);
                for (o, &x) in out_row.iter_mut().zip(src) {
                    *o += w * x;
                }
            }
        }
    }

    /// Transposed sparse × dense: `out = self^T @ dense`. This is the adjoint
    /// of [`Csr::spmm`] and what backward passes need: it scatters gradient
    /// from destinations back to sources.
    pub fn t_spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.n_rows, dense.rows(), "t_spmm shape mismatch");
        let mut out = Matrix::zeros(self.n_cols, dense.cols());
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            let d_row = dense.row(r);
            for (&c, &w) in cols.iter().zip(vals) {
                let out_row = out.row_mut(c as usize);
                for (o, &x) in out_row.iter_mut().zip(d_row) {
                    *o += w * x;
                }
            }
        }
        out
    }

    /// Return a copy whose rows are L1-normalised (each row sums to 1).
    /// Rows with no entries are left empty. This realises the mean in-edge
    /// aggregation `D_in^{-1} A` used by our GCN/SAGE formulation, which is
    /// computable both batch-wise and per-node in the GraphInfer pipeline.
    pub fn row_normalized(&self) -> Csr {
        let mut out = self.clone();
        for r in 0..self.n_rows {
            let (s, e) = (out.indptr[r], out.indptr[r + 1]);
            let sum: f32 = out.values[s..e].iter().sum();
            if sum != 0.0 {
                let inv = 1.0 / sum;
                for v in &mut out.values[s..e] {
                    *v *= inv;
                }
            }
        }
        out
    }

    /// Add the identity (a self-loop of weight `w` on every node). Requires a
    /// square matrix. Used to build `A + I` before normalisation.
    pub fn with_self_loops(&self, w: f32) -> Csr {
        assert_eq!(self.n_rows, self.n_cols, "self loops need a square matrix");
        let mut coo = Coo::new(self.n_rows, self.n_cols);
        for (d, s, v) in self.iter_entries() {
            coo.push(d, s, v);
        }
        for i in 0..self.n_rows as u32 {
            coo.push(i, i, w);
        }
        coo.into_csr()
    }

    /// Materialise as a dense matrix (tests only — O(rows*cols)).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n_rows, self.n_cols);
        for (d, s, v) in self.iter_entries() {
            m[(d as usize, s as usize)] += v;
        }
        m
    }

    /// Keep only the entries for which `keep(dst, src)` returns true.
    /// Used by the graph-pruning strategy to drop edges whose destination
    /// cannot influence any target node at a given layer.
    pub fn filter_entries(&self, mut keep: impl FnMut(u32, u32) -> bool) -> Csr {
        let mut indptr = vec![0usize; self.n_rows + 1];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..self.n_rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if keep(r as u32, c) {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr[r + 1] = indices.len();
        }
        Csr { n_rows: self.n_rows, n_cols: self.n_cols, indptr, indices, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-node graph: edges (dst <- src): 0<-1, 0<-2, 1<-2, 3<-0.
    fn sample() -> Csr {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(3, 0, 4.0);
        coo.into_csr()
    }

    #[test]
    fn coo_to_csr_sorts_and_merges() {
        let mut coo = Coo::new(2, 3);
        coo.push(0, 2, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(0, 2, 0.5); // duplicate -> merged
        let csr = coo.into_csr();
        assert_eq!(csr.nnz(), 2);
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[1, 2]);
        assert_eq!(vals, &[1.0, 1.5]);
        assert_eq!(csr.row_nnz(1), 0);
    }

    #[test]
    fn spmm_matches_dense() {
        let csr = sample();
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let sparse = csr.spmm(&x);
        let dense = csr.to_dense().matmul(&x);
        assert!(sparse.max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn t_spmm_matches_dense_transpose() {
        let csr = sample();
        let g = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let sparse = csr.t_spmm(&g);
        let dense = csr.to_dense().transpose().matmul(&g);
        assert!(sparse.max_abs_diff(&dense) < 1e-6);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let n = sample().row_normalized();
        let (_, vals) = n.row(0);
        let s: f32 = vals.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        // empty row stays empty
        assert_eq!(n.row_nnz(2), 0);
    }

    #[test]
    fn self_loops_added_once_per_node() {
        let sl = sample().with_self_loops(1.0);
        assert_eq!(sl.nnz(), 4 + 4);
        let d = sl.to_dense();
        for i in 0..4 {
            assert!(d[(i, i)] >= 1.0);
        }
    }

    #[test]
    fn filter_entries_prunes() {
        let f = sample().filter_entries(|dst, _| dst == 0);
        assert_eq!(f.nnz(), 2);
        assert_eq!(f.row_nnz(3), 0);
        assert_eq!(f.n_rows(), 4);
    }

    #[test]
    fn iter_entries_roundtrip() {
        let csr = sample();
        let mut coo = Coo::new(4, 4);
        for (d, s, v) in csr.iter_entries() {
            coo.push(d, s, v);
        }
        assert_eq!(coo.into_csr(), csr);
    }
}
