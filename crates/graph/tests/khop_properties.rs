//! Property-based tests of the reference k-hop extraction (Definition 1) —
//! the oracle the GraphFlat pipeline is validated against, so its own
//! invariants deserve independent pinning.

use agl_graph::graph::Graph;
use agl_graph::khop::{khop_subgraph, EdgeRule};
use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_tensor::Matrix;
use proptest::prelude::*;

fn graph_from(n: u64, raw_edges: &[(u64, u64)]) -> Graph {
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats = Matrix::from_vec(n as usize, 1, (0..n as usize).map(|i| i as f32).collect());
    let nodes = NodeTable::new(ids, feats, None);
    let mut pairs: Vec<(u64, u64)> = raw_edges.iter().map(|&(a, b)| (a % n, b % n)).filter(|&(a, b)| a != b).collect();
    pairs.sort_unstable();
    pairs.dedup();
    Graph::from_tables(&nodes, &EdgeTable::from_pairs(pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The target is always local 0 of its own neighborhood; the result is
    /// always structurally valid.
    #[test]
    fn prop_target_is_first_and_valid(
        n in 1u64..20,
        raw_edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..60),
        target in any::<u64>(),
        k in 0u32..4,
    ) {
        let g = graph_from(n, &raw_edges);
        let t = NodeId(target % n);
        for rule in [EdgeRule::Sufficient, EdgeRule::Induced] {
            let sub = khop_subgraph(&g, &[t], k, rule);
            prop_assert!(sub.validate().is_ok());
            prop_assert_eq!(sub.node_ids[0], t);
            prop_assert_eq!(&sub.target_locals, &vec![0u32]);
        }
    }

    /// Node sets grow monotonically with k, and edges of Sufficient are a
    /// subset of Induced for the same k.
    #[test]
    fn prop_monotone_in_k_and_rule_ordering(
        n in 2u64..16,
        raw_edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..50),
        target in any::<u64>(),
    ) {
        let g = graph_from(n, &raw_edges);
        let t = NodeId(target % n);
        let mut prev_nodes = 0usize;
        for k in 0..4u32 {
            let suff = khop_subgraph(&g, &[t], k, EdgeRule::Sufficient);
            let ind = khop_subgraph(&g, &[t], k, EdgeRule::Induced);
            prop_assert!(suff.n_nodes() >= prev_nodes, "k={k}");
            prop_assert_eq!(suff.n_nodes(), ind.n_nodes(), "same node set for both rules");
            prop_assert!(suff.n_edges() <= ind.n_edges(), "Sufficient ⊆ Induced");
            prev_nodes = suff.n_nodes();
        }
    }

    /// A batch neighborhood contains every single-target neighborhood's
    /// node set (union property behind batch vectorization).
    #[test]
    fn prop_batch_contains_singletons(
        n in 3u64..14,
        raw_edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 5..40),
        t1 in any::<u64>(),
        t2 in any::<u64>(),
    ) {
        let g = graph_from(n, &raw_edges);
        let (a, b) = (NodeId(t1 % n), NodeId(t2 % n));
        prop_assume!(a != b);
        let batch = khop_subgraph(&g, &[a, b], 2, EdgeRule::Sufficient);
        let batch_ids: std::collections::HashSet<_> = batch.node_ids.iter().collect();
        for t in [a, b] {
            let single = khop_subgraph(&g, &[t], 2, EdgeRule::Sufficient);
            for id in &single.node_ids {
                prop_assert!(batch_ids.contains(id), "{id} of {t}'s hood missing from batch");
            }
        }
    }

    /// k ≥ diameter: the neighborhood stops growing (fixpoint).
    #[test]
    fn prop_saturates_at_large_k(
        n in 2u64..12,
        raw_edges in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..40),
        target in any::<u64>(),
    ) {
        let g = graph_from(n, &raw_edges);
        let t = NodeId(target % n);
        let big = khop_subgraph(&g, &[t], n as u32 + 1, EdgeRule::Sufficient);
        let bigger = khop_subgraph(&g, &[t], n as u32 + 3, EdgeRule::Sufficient);
        prop_assert_eq!(big.canonicalize(), bigger.canonicalize());
    }
}
