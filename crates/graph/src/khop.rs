//! Reference (single-machine) k-hop neighborhood extraction — Definition 1.
//!
//! `GraphFlat` produces the same subgraphs with a K-round MapReduce; this
//! module is the oracle those pipelines are validated against, and doubles
//! as the extractor the in-memory baseline uses for its "original inference
//! module" (Table 5's comparison row).
//!
//! Two edge rules are offered:
//!
//! * [`EdgeRule::Sufficient`] — edges `(u → w)` with `d(targets, w) ≤ k−1`.
//!   This is exactly the edge set the message-passing pipeline accumulates
//!   after `k` merge/propagate rounds, and per Theorem 1 it is sufficient
//!   *and necessary* for a k-layer GNN on the targets.
//! * [`EdgeRule::Induced`] — every edge of `E` with both endpoints inside
//!   the node set (the literal induced-subgraph reading of Definition 1).
//!   A superset of `Sufficient`; the extra edges are pruned away by the
//!   trainer's graph-pruning strategy anyway.

use crate::bfs::{multi_source_distances, UNREACHED};
use crate::graph::Graph;
use crate::subgraph::{SubEdge, Subgraph};
use crate::tables::NodeId;
use agl_tensor::Matrix;

/// Which edges the extracted neighborhood keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeRule {
    /// Message-passing-equivalent edge set (what GraphFlat emits).
    #[default]
    Sufficient,
    /// Full induced subgraph (Definition 1 verbatim).
    Induced,
}

/// Extract the k-hop neighborhood of `targets` (global ids) from `graph`.
///
/// Local node 0..t-1 are the targets in the order given; remaining nodes
/// follow in BFS discovery order. Panics if a target id is unknown.
pub fn khop_subgraph(graph: &Graph, targets: &[NodeId], k: u32, rule: EdgeRule) -> Subgraph {
    let target_locals: Vec<u32> =
        targets.iter().map(|&t| graph.local(t).unwrap_or_else(|| panic!("unknown target {t}"))).collect();
    let dist = multi_source_distances(graph.in_adj(), &target_locals, Some(k));

    // Collect member nodes: targets first (in caller order), then the rest
    // ordered by (distance, local index) for determinism.
    let mut members: Vec<u32> = target_locals.clone();
    let mut is_target = vec![false; graph.n_nodes()];
    for &t in &target_locals {
        is_target[t as usize] = true;
    }
    let mut rest: Vec<u32> =
        (0..graph.n_nodes() as u32).filter(|&v| dist[v as usize] != UNREACHED && !is_target[v as usize]).collect();
    rest.sort_unstable_by_key(|&v| (dist[v as usize], v));
    members.extend(rest);

    // Global -> subgraph-local mapping.
    let mut local_of = vec![u32::MAX; graph.n_nodes()];
    for (l, &g) in members.iter().enumerate() {
        local_of[g as usize] = l as u32;
    }

    let fdim = graph.features().cols();
    let mut features = Matrix::zeros(members.len(), fdim);
    for (l, &g) in members.iter().enumerate() {
        features.row_mut(l).copy_from_slice(graph.features().row(g as usize));
    }

    let mut edges = Vec::new();
    let mut edge_feature_slots = Vec::new();
    for (l_dst, &g_dst) in members.iter().enumerate() {
        let keep_dst = match rule {
            EdgeRule::Sufficient => k > 0 && dist[g_dst as usize] <= k - 1,
            EdgeRule::Induced => true,
        };
        if !keep_dst {
            continue;
        }
        let (srcs, ws) = graph.in_neighbors(g_dst);
        let row_base = graph.in_adj().indptr()[g_dst as usize];
        for (pos, (&s, &w)) in srcs.iter().zip(ws).enumerate() {
            let l_src = local_of[s as usize];
            if l_src == u32::MAX {
                // Source outside the k-hop node set. Under Sufficient this
                // cannot happen (d(src) <= d(dst)+1 <= k); under Induced it
                // just means the edge is not induced.
                debug_assert!(rule == EdgeRule::Induced || dist[s as usize] != UNREACHED);
                continue;
            }
            edges.push(SubEdge { src: l_src, dst: l_dst as u32, weight: w });
            edge_feature_slots.push(row_base + pos);
        }
    }

    let edge_features = graph.edge_features().map(|ef| {
        let mut out = Matrix::zeros(edges.len(), ef.cols());
        for (i, &slot) in edge_feature_slots.iter().enumerate() {
            out.row_mut(i).copy_from_slice(ef.row(slot));
        }
        out
    });

    let node_ids = members.iter().map(|&g| graph.node_id(g)).collect();
    Subgraph { target_locals: (0..target_locals.len() as u32).collect(), node_ids, features, edges, edge_features }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{EdgeTable, NodeTable};

    /// Diamond + tail:
    ///   1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4, 4 -> 5, and a lateral 2 -> 3.
    fn g() -> Graph {
        let ids: Vec<NodeId> = (1..=5).map(NodeId).collect();
        let feats = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let nodes = NodeTable::new(ids, feats, None);
        let edges = EdgeTable::from_pairs([(1, 2), (1, 3), (2, 4), (3, 4), (4, 5), (2, 3)]);
        Graph::from_tables(&nodes, &edges)
    }

    #[test]
    fn zero_hop_is_just_the_target() {
        let s = khop_subgraph(&g(), &[NodeId(4)], 0, EdgeRule::Sufficient);
        assert_eq!(s.n_nodes(), 1);
        assert_eq!(s.n_edges(), 0);
        assert_eq!(s.node_ids, vec![NodeId(4)]);
        assert_eq!(s.features.row(0), &[4.0]);
    }

    #[test]
    fn one_hop_contains_in_neighbors_and_their_edges_to_target() {
        let s = khop_subgraph(&g(), &[NodeId(4)], 1, EdgeRule::Sufficient);
        let mut ids = s.node_ids.clone();
        ids.sort();
        assert_eq!(ids, vec![NodeId(2), NodeId(3), NodeId(4)]);
        // Sufficient rule at k=1: only edges whose dst is the target.
        assert_eq!(s.n_edges(), 2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn induced_superset_of_sufficient() {
        let suff = khop_subgraph(&g(), &[NodeId(4)], 1, EdgeRule::Sufficient);
        let ind = khop_subgraph(&g(), &[NodeId(4)], 1, EdgeRule::Induced);
        assert_eq!(suff.n_nodes(), ind.n_nodes());
        // Induced additionally has the lateral edge 2 -> 3.
        assert_eq!(ind.n_edges(), 3);
        assert!(ind.n_edges() >= suff.n_edges());
    }

    #[test]
    fn two_hop_reaches_roots() {
        let s = khop_subgraph(&g(), &[NodeId(4)], 2, EdgeRule::Sufficient);
        let mut ids = s.node_ids.clone();
        ids.sort();
        assert_eq!(ids, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        // edges with d(dst) <= 1: into 4 (2), into 2 (1), into 3 (2: from 1 and from 2)
        assert_eq!(s.n_edges(), 5);
    }

    #[test]
    fn batch_targets_share_neighborhood() {
        let s = khop_subgraph(&g(), &[NodeId(4), NodeId(5)], 1, EdgeRule::Sufficient);
        assert_eq!(s.target_locals, vec![0, 1]);
        assert_eq!(s.target_ids(), vec![NodeId(4), NodeId(5)]);
        let mut ids = s.node_ids.clone();
        ids.sort();
        assert_eq!(ids, vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn downstream_nodes_excluded() {
        // Node 5 is downstream of 4; a k-hop neighborhood of 4 must not
        // contain it (aggregation only looks at in-edges).
        let s = khop_subgraph(&g(), &[NodeId(4)], 3, EdgeRule::Sufficient);
        assert!(!s.node_ids.contains(&NodeId(5)));
    }
}
