//! Multi-source BFS distances over either adjacency direction.
//!
//! Two consumers:
//! * the reference k-hop extraction ([`crate::khop`]) walks **upstream**
//!   along in-edges (paper Definition 1: `d(v, u)` is the shortest path
//!   *from `u` to `v`*, i.e. following edge direction towards the target);
//! * the graph-pruning strategy (§3.3.2) computes `d(V_B, u)` for every node
//!   of a batch subgraph the same way.

use agl_tensor::Csr;

/// Distance value meaning "unreachable".
pub const UNREACHED: u32 = u32::MAX;

/// Multi-source BFS. `adj` row `v` must list the nodes one step *away* in
/// the walking direction — pass the in-CSR to walk upstream from targets
/// (each row lists the sources pointing at `v`, which sit one hop further
/// from the target set).
///
/// Returns `dist[u]` = hops from the nearest source, or [`UNREACHED`].
/// When `max_depth` is `Some(k)`, exploration stops after depth `k`.
pub fn multi_source_distances(adj: &Csr, sources: &[u32], max_depth: Option<u32>) -> Vec<u32> {
    let n = adj.n_rows();
    let mut dist = vec![UNREACHED; n];
    let mut frontier: Vec<u32> = Vec::with_capacity(sources.len());
    for &s in sources {
        debug_assert!((s as usize) < n, "source {s} out of range {n}");
        if dist[s as usize] == UNREACHED {
            dist[s as usize] = 0;
            frontier.push(s);
        }
    }
    let mut depth = 0u32;
    let mut next: Vec<u32> = Vec::new();
    while !frontier.is_empty() {
        if let Some(k) = max_depth {
            if depth >= k {
                break;
            }
        }
        depth += 1;
        next.clear();
        for &v in &frontier {
            let (nbrs, _) = adj.row(v as usize);
            for &u in nbrs {
                if dist[u as usize] == UNREACHED {
                    dist[u as usize] = depth;
                    next.push(u);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::Coo;

    /// Chain 0 <- 1 <- 2 <- 3 (in-CSR: row v lists its in-sources).
    fn chain_in_csr() -> Csr {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 2, 1.0);
        coo.push(2, 3, 1.0);
        coo.into_csr()
    }

    #[test]
    fn distances_follow_in_edges_upstream() {
        let adj = chain_in_csr();
        let d = multi_source_distances(&adj, &[0], None);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn max_depth_truncates() {
        let adj = chain_in_csr();
        let d = multi_source_distances(&adj, &[0], Some(2));
        assert_eq!(d, vec![0, 1, 2, UNREACHED]);
        let d0 = multi_source_distances(&adj, &[0], Some(0));
        assert_eq!(d0, vec![0, UNREACHED, UNREACHED, UNREACHED]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let adj = chain_in_csr();
        let d = multi_source_distances(&adj, &[0, 2], None);
        assert_eq!(d, vec![0, 1, 0, 1]);
    }

    #[test]
    fn duplicate_sources_are_fine() {
        let adj = chain_in_csr();
        let d = multi_source_distances(&adj, &[1, 1], None);
        assert_eq!(d[1], 0);
        assert_eq!(d[0], UNREACHED, "node 0 is downstream, not reachable upstream");
    }

    #[test]
    fn empty_sources_reach_nothing() {
        let adj = chain_in_csr();
        let d = multi_source_distances(&adj, &[], None);
        assert!(d.iter().all(|&x| x == UNREACHED));
    }
}
