//! In-memory attributed graph with both adjacency directions.
//!
//! This is the structure the *single-machine* baseline engine (the DGL/PyG
//! stand-in) trains on, and the source of truth the distributed pipelines
//! are validated against. AGL itself never materialises it at industrial
//! scale — that is the whole point of GraphFlat — but test-scale graphs fit
//! comfortably.

use crate::tables::{EdgeTable, IdIndex, NodeId, NodeTable};
use agl_tensor::{Coo, Csr, Matrix};

/// A directed, weighted, attributed graph (§2.1) in memory.
///
/// Nodes are re-indexed to dense local indices `0..n`; [`Graph::node_ids`]
/// maps back to the original ids.
#[derive(Debug, Clone)]
pub struct Graph {
    index: IdIndex,
    features: Matrix,
    labels: Option<Matrix>,
    /// Row `v` lists in-edge sources `N+(v)` — the aggregation direction.
    in_adj: Csr,
    /// Row `u` lists out-edge destinations `N-(u)` — the propagation direction.
    out_adj: Csr,
    /// Edge features aligned with `in_adj` entry order (optional).
    edge_features: Option<Matrix>,
}

impl Graph {
    /// Assemble from a node table and an edge table. Edges referencing
    /// unknown node ids are rejected (industrial pipelines validate
    /// referential integrity before GraphFlat runs).
    pub fn from_tables(nodes: &NodeTable, edges: &EdgeTable) -> Self {
        let mut index = IdIndex::new();
        for &id in nodes.ids() {
            index.intern(id);
        }
        let n = index.len();
        let mut in_coo = Coo::new(n, n);
        let mut out_coo = Coo::new(n, n);
        for (row, _) in edges.iter() {
            let s = index.get(row.src).unwrap_or_else(|| panic!("edge references unknown src {}", row.src));
            let d = index.get(row.dst).unwrap_or_else(|| panic!("edge references unknown dst {}", row.dst));
            in_coo.push(d, s, row.weight);
            out_coo.push(s, d, row.weight);
        }
        let in_adj = in_coo.into_csr();
        let out_adj = out_coo.into_csr();
        // Align edge features with in_adj entry order when present. Because
        // into_csr() merges duplicate (dst, src) pairs, edge features are only
        // kept when the edge list is duplicate-free.
        let edge_features = edges.features().and_then(|feats| {
            if in_adj.nnz() != edges.len() {
                return None; // duplicates merged; per-edge features undefined
            }
            let mut out = Matrix::zeros(in_adj.nnz(), feats.cols());
            // Recompute each edge's slot in CSR order.
            let mut cursor: Vec<usize> = in_adj.indptr().to_vec();
            // Pre-sort entries by (dst, src) exactly as CSR stores them.
            let mut order: Vec<usize> = (0..edges.len()).collect();
            order.sort_unstable_by_key(|&i| {
                let r = edges.rows()[i];
                (index.get(r.dst).unwrap(), index.get(r.src).unwrap())
            });
            for &ei in &order {
                let r = edges.rows()[ei];
                let d = index.get(r.dst).unwrap() as usize;
                let slot = cursor[d];
                cursor[d] += 1;
                out.row_mut(slot).copy_from_slice(feats.row(ei));
            }
            Some(out)
        });
        Self {
            index,
            features: nodes.features().clone(),
            labels: nodes.labels().cloned(),
            in_adj,
            out_adj,
            edge_features,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.index.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.in_adj.nnz()
    }

    /// Node feature matrix `X` (dense local index order).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Per-node label matrix when the node table carried labels.
    pub fn labels(&self) -> Option<&Matrix> {
        self.labels.as_ref()
    }

    /// Edge feature matrix aligned with [`Graph::in_adj`] entry order.
    pub fn edge_features(&self) -> Option<&Matrix> {
        self.edge_features.as_ref()
    }

    /// In-edge adjacency (row `v` = sources pointing at `v`).
    pub fn in_adj(&self) -> &Csr {
        &self.in_adj
    }

    /// Out-edge adjacency (row `u` = destinations pointed at by `u`).
    pub fn out_adj(&self) -> &Csr {
        &self.out_adj
    }

    /// Original id of local node `v`.
    pub fn node_id(&self, local: u32) -> NodeId {
        self.index.global(local)
    }

    /// All original ids in local index order.
    pub fn node_ids(&self) -> &[NodeId] {
        self.index.globals()
    }

    /// Local index of an original id.
    pub fn local(&self, id: NodeId) -> Option<u32> {
        self.index.get(id)
    }

    /// In-degree of local node `v` = `|N+(v)|`.
    pub fn in_degree(&self, v: u32) -> usize {
        self.in_adj.row_nnz(v as usize)
    }

    /// Out-degree of local node `v` = `|N-(v)|`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.out_adj.row_nnz(v as usize)
    }

    /// In-edge sources of `v` with weights.
    pub fn in_neighbors(&self, v: u32) -> (&[u32], &[f32]) {
        self.in_adj.row(v as usize)
    }

    /// Out-edge destinations of `v` with weights.
    pub fn out_neighbors(&self, v: u32) -> (&[u32], &[f32]) {
        self.out_adj.row(v as usize)
    }

    /// Rebuild the `(NodeTable, EdgeTable)` pair — used to feed generated
    /// graphs into the GraphFlat pipeline, which consumes tables, not graphs.
    pub fn to_tables(&self) -> (NodeTable, EdgeTable) {
        let nodes = NodeTable::new(self.index.globals().to_vec(), self.features.clone(), self.labels.clone());
        let mut rows = Vec::with_capacity(self.n_edges());
        for (d, s, w) in self.in_adj.iter_entries() {
            rows.push(crate::tables::EdgeRow { src: self.index.global(s), dst: self.index.global(d), weight: w });
        }
        (nodes, EdgeTable::new(rows, self.edge_features.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path with a branch:  1 -> 2 -> 3,  4 -> 2.
    pub(crate) fn small() -> Graph {
        let nodes = NodeTable::new(
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
            Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]),
            None,
        );
        let edges = EdgeTable::from_pairs([(1, 2), (2, 3), (4, 2)]);
        Graph::from_tables(&nodes, &edges)
    }

    #[test]
    fn adjacency_directions_agree() {
        let g = small();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 3);
        let v2 = g.local(NodeId(2)).unwrap();
        let (srcs, _) = g.in_neighbors(v2);
        let in_ids: Vec<_> = srcs.iter().map(|&s| g.node_id(s)).collect();
        assert!(in_ids.contains(&NodeId(1)) && in_ids.contains(&NodeId(4)));
        assert_eq!(g.in_degree(v2), 2);
        assert_eq!(g.out_degree(v2), 1);
        // out view is the transpose of the in view
        assert!(g.in_adj().to_dense().transpose().max_abs_diff(&g.out_adj().to_dense()) < 1e-7);
    }

    #[test]
    fn to_tables_roundtrip() {
        let g = small();
        let (nt, et) = g.to_tables();
        let g2 = Graph::from_tables(&nt, &et);
        assert_eq!(g2.n_nodes(), g.n_nodes());
        assert_eq!(g2.n_edges(), g.n_edges());
        assert!(g2.in_adj().to_dense().max_abs_diff(&g.in_adj().to_dense()) < 1e-7);
        assert_eq!(g2.features(), g.features());
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn dangling_edge_rejected() {
        let nodes = NodeTable::new(vec![NodeId(1)], Matrix::zeros(1, 1), None);
        let edges = EdgeTable::from_pairs([(1, 999)]);
        let _ = Graph::from_tables(&nodes, &edges);
    }

    #[test]
    fn edge_features_follow_csr_order() {
        let nodes = NodeTable::new(vec![NodeId(0), NodeId(1), NodeId(2)], Matrix::zeros(3, 1), None);
        // Two edges into node 2, listed in "wrong" order relative to CSR.
        let rows = vec![
            crate::tables::EdgeRow { src: NodeId(1), dst: NodeId(2), weight: 1.0 },
            crate::tables::EdgeRow { src: NodeId(0), dst: NodeId(2), weight: 1.0 },
        ];
        let feats = Matrix::from_rows(&[&[10.0], &[20.0]]);
        let g = Graph::from_tables(&nodes, &EdgeTable::new(rows, Some(feats)));
        let ef = g.edge_features().unwrap();
        // CSR sorts row 2's sources ascending: src 0 first -> feature 20.
        assert_eq!(ef.row(0), &[20.0]);
        assert_eq!(ef.row(1), &[10.0]);
    }
}
