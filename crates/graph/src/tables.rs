//! Node/edge table input format.
//!
//! GraphFlat's contract (§3.2.1): *"the node table consists of node ids and
//! node features, while the edge table consists of source node ids,
//! destination node ids and the edge features."* These tables are what an
//! industrial user would dump out of a data warehouse; everything downstream
//! (GraphFlat, the baseline engine) is built from them.

use agl_tensor::Matrix;
use std::collections::HashMap;
use std::fmt;

/// A global node identifier. Industrial ids are arbitrary 64-bit keys, not
/// dense indices — the newtype keeps them from being confused with the local
/// (dense) indices used inside subgraphs and matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The node table: one row per node, with its feature vector and an optional
/// label. Labels ride along here because GraphFlat emits training triples
/// `<TargetedNodeId, Label, GraphFeature>` (§3.3.1).
#[derive(Debug, Clone)]
pub struct NodeTable {
    ids: Vec<NodeId>,
    features: Matrix,
    /// Multi-hot label vector per node (empty matrix when unlabeled).
    labels: Option<Matrix>,
}

impl NodeTable {
    /// Build a node table. `features` must have one row per id; `labels`,
    /// when present, likewise.
    pub fn new(ids: Vec<NodeId>, features: Matrix, labels: Option<Matrix>) -> Self {
        assert_eq!(ids.len(), features.rows(), "one feature row per node");
        if let Some(l) = &labels {
            assert_eq!(ids.len(), l.rows(), "one label row per node");
        }
        let mut dedup: Vec<u64> = ids.iter().map(|n| n.0).collect();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "node ids must be unique");
        Self { ids, features, labels }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Feature dimensionality `f_n`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    pub fn labels(&self) -> Option<&Matrix> {
        self.labels.as_ref()
    }

    /// Iterate `(id, feature_row)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[f32])> {
        self.ids.iter().copied().zip(self.features.rows_iter())
    }
}

/// One directed edge row of the edge table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRow {
    pub src: NodeId,
    pub dst: NodeId,
    pub weight: f32,
}

/// The edge table: directed `(src, dst, weight)` rows plus an optional
/// `f_e`-dimensional feature matrix aligned with the rows.
#[derive(Debug, Clone, Default)]
pub struct EdgeTable {
    rows: Vec<EdgeRow>,
    features: Option<Matrix>,
}

impl EdgeTable {
    pub fn new(rows: Vec<EdgeRow>, features: Option<Matrix>) -> Self {
        if let Some(f) = &features {
            assert_eq!(rows.len(), f.rows(), "one feature row per edge");
        }
        Self { rows, features }
    }

    /// Build from `(src, dst)` pairs with unit weights and no features.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let rows = pairs.into_iter().map(|(s, d)| EdgeRow { src: NodeId(s), dst: NodeId(d), weight: 1.0 }).collect();
        Self { rows, features: None }
    }

    /// Expand an undirected edge list into the two-directed-edge form of
    /// §2.1 (each undirected edge becomes `(u,v)` and `(v,u)` with the same
    /// weight/features).
    pub fn from_undirected_pairs(pairs: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut rows = Vec::new();
        for (a, b) in pairs {
            rows.push(EdgeRow { src: NodeId(a), dst: NodeId(b), weight: 1.0 });
            rows.push(EdgeRow { src: NodeId(b), dst: NodeId(a), weight: 1.0 });
        }
        Self { rows, features: None }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn rows(&self) -> &[EdgeRow] {
        &self.rows
    }

    pub fn features(&self) -> Option<&Matrix> {
        self.features.as_ref()
    }

    /// Edge feature dimensionality `f_e` (0 when absent).
    pub fn feature_dim(&self) -> usize {
        self.features.as_ref().map_or(0, Matrix::cols)
    }

    /// Iterate `(row, feature_row)` where the feature slice is empty when the
    /// table has no edge features.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeRow, &[f32])> {
        static EMPTY: [f32; 0] = [];
        self.rows.iter().enumerate().map(move |(i, r)| {
            let feat = self.features.as_ref().map_or(&EMPTY[..], |f| f.row(i));
            (*r, feat)
        })
    }
}

/// A dense mapping from arbitrary [`NodeId`]s to local `0..n` indices.
/// Shared by the in-memory [`crate::Graph`] builder and subgraph merging.
#[derive(Debug, Clone, Default)]
pub struct IdIndex {
    to_local: HashMap<NodeId, u32>,
    to_global: Vec<NodeId>,
}

impl IdIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or look up) an id, returning its local index.
    pub fn intern(&mut self, id: NodeId) -> u32 {
        if let Some(&l) = self.to_local.get(&id) {
            return l;
        }
        let l = self.to_global.len() as u32;
        self.to_local.insert(id, l);
        self.to_global.push(id);
        l
    }

    pub fn get(&self, id: NodeId) -> Option<u32> {
        self.to_local.get(&id).copied()
    }

    pub fn global(&self, local: u32) -> NodeId {
        self.to_global[local as usize]
    }

    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }

    pub fn globals(&self) -> &[NodeId] {
        &self.to_global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_table_basic() {
        let t = NodeTable::new(vec![NodeId(10), NodeId(20)], Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.feature_dim(), 2);
        let rows: Vec<_> = t.iter().collect();
        assert_eq!(rows[1].0, NodeId(20));
        assert_eq!(rows[1].1, &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_node_ids_rejected() {
        let _ = NodeTable::new(vec![NodeId(1), NodeId(1)], Matrix::zeros(2, 1), None);
    }

    #[test]
    fn undirected_expansion_doubles_edges() {
        let t = EdgeTable::from_undirected_pairs([(1, 2), (2, 3)]);
        assert_eq!(t.len(), 4);
        assert!(t.rows().iter().any(|r| r.src == NodeId(2) && r.dst == NodeId(1)));
    }

    #[test]
    fn edge_iter_without_features_yields_empty_slices() {
        let t = EdgeTable::from_pairs([(1, 2)]);
        let (_, f) = t.iter().next().unwrap();
        assert!(f.is_empty());
        assert_eq!(t.feature_dim(), 0);
    }

    #[test]
    fn id_index_interns_stably() {
        let mut idx = IdIndex::new();
        let a = idx.intern(NodeId(99));
        let b = idx.intern(NodeId(7));
        assert_eq!(idx.intern(NodeId(99)), a);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.global(b), NodeId(7));
        assert_eq!(idx.get(NodeId(8)), None);
    }
}
