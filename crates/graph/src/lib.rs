//! `agl-graph` — attributed directed graph substrate.
//!
//! The paper (§2.1) works on a *directed, weighted, attributed* graph
//! `G = {V, E, A, X, E}`: nodes with `f_n`-dimensional features, edges with
//! weights and optional `f_e`-dimensional features. Undirected inputs are
//! expanded into two directed edges. Aggregation always runs over the
//! **in-edge** neighbors `N+(v)`; propagation runs along **out-edges**.
//!
//! This crate provides:
//!
//! * [`tables`] — the node-table / edge-table input format GraphFlat
//!   consumes (§3.2.1: *"Assume that we take a node table and an edge table
//!   as input"*).
//! * [`graph`] — an in-memory [`Graph`] with both in-CSR and out-CSR views,
//!   used by the single-machine baseline engine and by reference
//!   implementations.
//! * [`subgraph`] — [`Subgraph`], the materialised k-hop neighborhood
//!   ("GraphFeature" before serialisation).
//! * [`khop`] — a reference BFS implementation of Definition 1, used as the
//!   oracle the MapReduce GraphFlat pipeline is tested against.
//! * [`bfs`] — multi-source distance computation shared with the pruning
//!   strategy.
//! * [`stats`] — degree statistics and hub detection used by the
//!   re-indexing threshold.

pub mod bfs;
pub mod graph;
pub mod khop;
pub mod stats;
pub mod subgraph;
pub mod tables;

pub use graph::Graph;
pub use subgraph::{SubEdge, Subgraph};
pub use tables::{EdgeTable, NodeId, NodeTable};
