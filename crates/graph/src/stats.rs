//! Degree statistics and hub detection.
//!
//! GraphFlat's re-indexing strategy (§3.2.2) triggers *"when the in-degree
//! of a certain shuffle key exceeds a pre-defined threshold (like 10k)"*.
//! These helpers characterise the degree skew of a graph so that threshold
//! can be chosen and so the dataset generators can assert they produced the
//! intended power-law shape.

use crate::graph::Graph;

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// 50th / 90th / 99th percentiles.
    pub p50: usize,
    pub p90: usize,
    pub p99: usize,
}

impl DegreeStats {
    /// Compute from an arbitrary degree sequence. Returns `None` when empty.
    pub fn from_degrees(mut degrees: Vec<usize>) -> Option<Self> {
        if degrees.is_empty() {
            return None;
        }
        degrees.sort_unstable();
        let n = degrees.len();
        let pct = |p: f64| degrees[(((n - 1) as f64) * p).round() as usize];
        Some(Self {
            min: degrees[0],
            max: degrees[n - 1],
            mean: degrees.iter().sum::<usize>() as f64 / n as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
        })
    }
}

/// In-degree statistics of a graph.
pub fn in_degree_stats(g: &Graph) -> Option<DegreeStats> {
    DegreeStats::from_degrees((0..g.n_nodes() as u32).map(|v| g.in_degree(v)).collect())
}

/// Out-degree statistics of a graph.
pub fn out_degree_stats(g: &Graph) -> Option<DegreeStats> {
    DegreeStats::from_degrees((0..g.n_nodes() as u32).map(|v| g.out_degree(v)).collect())
}

/// Local indices of "hub" nodes whose in-degree exceeds `threshold` — the
/// nodes the re-indexing strategy splits across reducers.
pub fn hub_nodes(g: &Graph, threshold: usize) -> Vec<u32> {
    (0..g.n_nodes() as u32).filter(|&v| g.in_degree(v) > threshold).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{EdgeTable, NodeId, NodeTable};
    use agl_tensor::Matrix;

    fn star(n_leaves: u64) -> Graph {
        let ids: Vec<NodeId> = (0..=n_leaves).map(NodeId).collect();
        let nodes = NodeTable::new(ids, Matrix::zeros(n_leaves as usize + 1, 1), None);
        let edges = EdgeTable::from_pairs((1..=n_leaves).map(|l| (l, 0)));
        Graph::from_tables(&nodes, &edges)
    }

    #[test]
    fn star_center_is_the_only_hub() {
        let g = star(50);
        let hubs = hub_nodes(&g, 10);
        assert_eq!(hubs.len(), 1);
        assert_eq!(g.node_id(hubs[0]), NodeId(0));
        assert!(hub_nodes(&g, 50).is_empty());
    }

    #[test]
    fn stats_capture_skew() {
        let g = star(100);
        let s = in_degree_stats(&g).unwrap();
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 0);
        assert!((s.mean - 100.0 / 101.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sequence_is_none() {
        assert!(DegreeStats::from_degrees(vec![]).is_none());
    }

    #[test]
    fn percentiles_of_uniform_sequence() {
        let s = DegreeStats::from_degrees((0..101).collect()).unwrap();
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
    }
}
