//! The materialised k-hop neighborhood — what the paper calls a
//! *GraphFeature* once flattened to a byte string (§3.2.1).
//!
//! A [`Subgraph`] is self-contained: it carries its own node features, edge
//! list and the (local indices of the) targeted nodes, so training workers
//! never touch the original graph. This is the data-independency property
//! Theorem 1 buys.

use crate::tables::NodeId;
use agl_tensor::{Coo, Csr, Matrix};

/// A directed edge inside a subgraph, in local indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubEdge {
    pub src: u32,
    pub dst: u32,
    pub weight: f32,
}

/// An information-complete subgraph for one or more target nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgraph {
    /// Local indices of the targeted nodes (whose embeddings/labels matter).
    pub target_locals: Vec<u32>,
    /// Local → global id map. `node_ids[i]` is the global id of local `i`.
    pub node_ids: Vec<NodeId>,
    /// Node feature matrix, `|nodes| × f_n`, local index order.
    pub features: Matrix,
    /// Directed edges in local indices.
    pub edges: Vec<SubEdge>,
    /// Optional edge features, one row per entry of `edges`.
    pub edge_features: Option<Matrix>,
}

impl Subgraph {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Global ids of the targets.
    pub fn target_ids(&self) -> Vec<NodeId> {
        self.target_locals.iter().map(|&l| self.node_ids[l as usize]).collect()
    }

    /// Build the destination-sorted in-edge CSR (`row v` = sources of `v`),
    /// the adjacency the vectorization phase feeds to the model (§3.3.1).
    pub fn in_csr(&self) -> Csr {
        let n = self.n_nodes();
        let mut coo = Coo::new(n, n);
        for e in &self.edges {
            coo.push(e.dst, e.src, e.weight);
        }
        coo.into_csr()
    }

    /// Structural sanity check: local indices in range, targets valid,
    /// feature rows aligned. Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_nodes() as u32;
        if self.features.rows() != self.n_nodes() {
            return Err(format!("feature rows {} != nodes {}", self.features.rows(), self.n_nodes()));
        }
        for &t in &self.target_locals {
            if t >= n {
                return Err(format!("target local {t} out of range {n}"));
            }
        }
        for e in &self.edges {
            if e.src >= n || e.dst >= n {
                return Err(format!("edge ({},{}) out of range {n}", e.src, e.dst));
            }
        }
        if let Some(ef) = &self.edge_features {
            if ef.rows() != self.edges.len() {
                return Err(format!("edge feature rows {} != edges {}", ef.rows(), self.edges.len()));
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(self.node_ids.len());
        for id in &self.node_ids {
            if !seen.insert(id) {
                return Err(format!("duplicate node id {id}"));
            }
        }
        Ok(())
    }

    /// Canonicalise for structural comparison: relabel locals by sorted
    /// global id, sort edges. Two subgraphs are isomorphic-as-labelled-graphs
    /// iff their canonical forms are equal. Used to verify the MapReduce
    /// GraphFlat output against the reference BFS extraction.
    pub fn canonicalize(&self) -> Subgraph {
        let mut order: Vec<u32> = (0..self.n_nodes() as u32).collect();
        order.sort_unstable_by_key(|&l| self.node_ids[l as usize]);
        // relabel[old_local] = new_local
        let mut relabel = vec![0u32; self.n_nodes()];
        for (new, &old) in order.iter().enumerate() {
            relabel[old as usize] = new as u32;
        }
        let node_ids: Vec<NodeId> = order.iter().map(|&l| self.node_ids[l as usize]).collect();
        let mut features = Matrix::zeros(self.n_nodes(), self.features.cols());
        for (new, &old) in order.iter().enumerate() {
            features.row_mut(new).copy_from_slice(self.features.row(old as usize));
        }
        let mut edge_order: Vec<usize> = (0..self.edges.len()).collect();
        let rekey = |e: &SubEdge| (relabel[e.dst as usize], relabel[e.src as usize]);
        edge_order.sort_unstable_by_key(|&i| rekey(&self.edges[i]));
        let edges: Vec<SubEdge> = edge_order
            .iter()
            .map(|&i| {
                let e = self.edges[i];
                SubEdge { src: relabel[e.src as usize], dst: relabel[e.dst as usize], weight: e.weight }
            })
            .collect();
        let edge_features = self.edge_features.as_ref().map(|ef| {
            let mut out = Matrix::zeros(ef.rows(), ef.cols());
            for (new, &old) in edge_order.iter().enumerate() {
                out.row_mut(new).copy_from_slice(ef.row(old));
            }
            out
        });
        let mut target_locals: Vec<u32> = self.target_locals.iter().map(|&t| relabel[t as usize]).collect();
        target_locals.sort_unstable();
        Subgraph { target_locals, node_ids, features, edges, edge_features }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Subgraph {
        Subgraph {
            target_locals: vec![0],
            node_ids: vec![NodeId(30), NodeId(10), NodeId(20)],
            features: Matrix::from_rows(&[&[3.0], &[1.0], &[2.0]]),
            edges: vec![SubEdge { src: 1, dst: 0, weight: 1.0 }, SubEdge { src: 2, dst: 0, weight: 0.5 }],
            edge_features: None,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut s = sample();
        s.edges.push(SubEdge { src: 9, dst: 0, weight: 1.0 });
        assert!(s.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let mut s = sample();
        s.node_ids[2] = NodeId(10);
        assert!(s.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn canonicalize_is_permutation_invariant() {
        let s = sample();
        let c1 = s.canonicalize();
        // Permute locals: swap 0 and 2.
        let permuted = Subgraph {
            target_locals: vec![2],
            node_ids: vec![NodeId(20), NodeId(10), NodeId(30)],
            features: Matrix::from_rows(&[&[2.0], &[1.0], &[3.0]]),
            edges: vec![SubEdge { src: 1, dst: 2, weight: 1.0 }, SubEdge { src: 0, dst: 2, weight: 0.5 }],
            edge_features: None,
        };
        let c2 = permuted.canonicalize();
        assert_eq!(c1, c2);
        // canonical node ids are sorted
        assert_eq!(c1.node_ids, vec![NodeId(10), NodeId(20), NodeId(30)]);
    }

    #[test]
    fn in_csr_sorted_by_destination() {
        let s = sample();
        let csr = s.in_csr();
        assert_eq!(csr.n_rows(), 3);
        let (srcs, ws) = csr.row(0);
        assert_eq!(srcs, &[1, 2]);
        assert_eq!(ws, &[1.0, 0.5]);
    }

    #[test]
    fn target_ids_resolve_globals() {
        assert_eq!(sample().target_ids(), vec![NodeId(30)]);
    }
}
