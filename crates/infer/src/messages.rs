//! Shuffle messages of the GraphInfer pipeline. Values carry *embeddings*
//! rather than subgraphs — that is the entire efficiency argument of §3.4:
//! what flows between rounds is one vector per node per edge, not a growing
//! neighborhood.

use agl_mapreduce::codec::{
    get_f32, get_f32s, get_u32, get_u64, get_u8, put_f32, put_f32s, put_u32, put_u64, put_u8, Codec, CodecError,
};

/// A value record of the GraphInfer pipeline. Keys are plain node ids
/// (little-endian `u64`).
#[derive(Debug, Clone, PartialEq)]
pub enum InferMsg {
    /// Raw node-table row (Map output, consumed by the join round).
    NodeRow { features: Vec<f32> },
    /// Raw edge-table row keyed by source (Map output, join round).
    EdgeBySrc { dst: u64, weight: f32 },
    /// The node's own layer-(k−1) embedding.
    SelfEmb { h: Vec<f32> },
    /// A neighbor's layer-(k−1) embedding arriving over the in-edge
    /// `(src → key)`.
    InEmb { src: u64, weight: f32, h: Vec<f32> },
    /// Out-edge info kept so each round can propagate.
    OutEdge { dst: u64, weight: f32 },
    /// Final-layer embedding heading into the prediction round.
    Emb { h: Vec<f32> },
    /// Predicted score(s) — the job output.
    Score { probs: Vec<f32> },
    /// A shuffle-combined partial aggregate of the [`InferMsg::InEmb`]
    /// messages one producer partition (`segment`) sent to this key: `n`
    /// in-edges folded, their `Σ w`, and the elementwise accumulator (see
    /// [`agl_nn::CombineKind`]). Only the streaming GAS pipeline emits and
    /// consumes these.
    Partial { segment: u32, n: u32, total_w: f32, acc: Vec<f32> },
}

impl InferMsg {
    const TAG_NODE: u8 = 0;
    const TAG_EDGE: u8 = 1;
    const TAG_SELF: u8 = 2;
    const TAG_IN: u8 = 3;
    const TAG_OUT: u8 = 4;
    const TAG_EMB: u8 = 5;
    const TAG_SCORE: u8 = 6;
    const TAG_PARTIAL: u8 = 7;
}

impl Codec for InferMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            InferMsg::NodeRow { features } => {
                put_u8(buf, Self::TAG_NODE);
                put_f32s(buf, features);
            }
            InferMsg::EdgeBySrc { dst, weight } => {
                put_u8(buf, Self::TAG_EDGE);
                put_u64(buf, *dst);
                put_f32(buf, *weight);
            }
            InferMsg::SelfEmb { h } => {
                put_u8(buf, Self::TAG_SELF);
                put_f32s(buf, h);
            }
            InferMsg::InEmb { src, weight, h } => {
                put_u8(buf, Self::TAG_IN);
                put_u64(buf, *src);
                put_f32(buf, *weight);
                put_f32s(buf, h);
            }
            InferMsg::OutEdge { dst, weight } => {
                put_u8(buf, Self::TAG_OUT);
                put_u64(buf, *dst);
                put_f32(buf, *weight);
            }
            InferMsg::Emb { h } => {
                put_u8(buf, Self::TAG_EMB);
                put_f32s(buf, h);
            }
            InferMsg::Score { probs } => {
                put_u8(buf, Self::TAG_SCORE);
                put_f32s(buf, probs);
            }
            InferMsg::Partial { segment, n, total_w, acc } => {
                put_u8(buf, Self::TAG_PARTIAL);
                put_u32(buf, *segment);
                put_u32(buf, *n);
                put_f32(buf, *total_w);
                put_f32s(buf, acc);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(match get_u8(input)? {
            Self::TAG_NODE => InferMsg::NodeRow { features: get_f32s(input)? },
            Self::TAG_EDGE => InferMsg::EdgeBySrc { dst: get_u64(input)?, weight: get_f32(input)? },
            Self::TAG_SELF => InferMsg::SelfEmb { h: get_f32s(input)? },
            Self::TAG_IN => InferMsg::InEmb { src: get_u64(input)?, weight: get_f32(input)?, h: get_f32s(input)? },
            Self::TAG_OUT => InferMsg::OutEdge { dst: get_u64(input)?, weight: get_f32(input)? },
            Self::TAG_EMB => InferMsg::Emb { h: get_f32s(input)? },
            Self::TAG_SCORE => InferMsg::Score { probs: get_f32s(input)? },
            Self::TAG_PARTIAL => InferMsg::Partial {
                segment: get_u32(input)?,
                n: get_u32(input)?,
                total_w: get_f32(input)?,
                acc: get_f32s(input)?,
            },
            t => return Err(CodecError(format!("unknown InferMsg tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            InferMsg::NodeRow { features: vec![1.0, 2.0] },
            InferMsg::EdgeBySrc { dst: 4, weight: 0.5 },
            InferMsg::SelfEmb { h: vec![0.1; 8] },
            InferMsg::InEmb { src: 2, weight: 1.0, h: vec![] },
            InferMsg::OutEdge { dst: 7, weight: 2.0 },
            InferMsg::Emb { h: vec![-1.0] },
            InferMsg::Score { probs: vec![0.25, 0.75] },
            InferMsg::Partial { segment: 3, n: 17, total_w: 4.5, acc: vec![1.0, -2.0] },
        ];
        for m in msgs {
            assert_eq!(InferMsg::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(InferMsg::from_bytes(&[77]).is_err());
        assert!(InferMsg::from_bytes(&[]).is_err());
    }
}
