//! Multi-process streaming inference: the worker-side factories and the
//! driver entry point that farm the GAS reduce rounds out to shuffle-worker
//! processes (`agl-cli dist-worker --infer`).
//!
//! The driver ships one [`InferWorkerSpec`] as the `DistJob` init spec —
//! the serialised model plus the handful of knobs the reducer derives its
//! behaviour from — and, for combining jobs, the *same* bytes again as the
//! `CombineSpec` payload. Workers rebuild the exact `InferReducer` /
//! [`InferCombiner`] pair the in-process engine would run, so the
//! distributed output is byte-identical to [`crate::stream::StreamInfer::run_materialized`]
//! (and therefore bit-identical to the streamed run — see the `combine`
//! module docs for why combining never moves a bit).

use crate::combine::InferCombiner;
use crate::pipeline::{InferConfig, InferReducer};
use agl_flat::SamplingStrategy;
use agl_mapreduce::codec::{get_u64, get_u8, put_u64, put_u8, Codec, CodecError};
use agl_mapreduce::{Counters, Reducer, ShuffleCombiner};
use agl_nn::{model_from_bytes, model_to_bytes, GnnModel};
use std::sync::Arc;

/// Everything a shuffle-worker process needs to rebuild this job's
/// `InferReducer` (and, when the driver sends a combine spec, its
/// [`InferCombiner`]): the trained model and the reducer knobs. The model
/// serialisation is canonical, so the spec bytes — and therefore the whole
/// distributed job — are deterministic for a given model and config.
#[derive(Debug, Clone, PartialEq)]
pub struct InferWorkerSpec {
    /// [`model_to_bytes`] image of the trained model.
    pub model: Vec<u8>,
    /// In-edge sampling (GAS requires `None`; the classic fold honours it).
    pub sampling: SamplingStrategy,
    /// Seed for the sampling framework.
    pub seed: u64,
    /// Whether reducers run the GAS two-level segment fold.
    pub gas: bool,
    /// Reduce partition count — the segment function of the GAS fold.
    pub r_parts: u32,
    /// Bucket-local combiner degree threshold.
    pub degree_threshold: u32,
}

const SAMP_NONE: u8 = 0;
const SAMP_UNIFORM: u8 = 1;
const SAMP_WEIGHTED: u8 = 2;
const SAMP_TOPK: u8 = 3;

impl Codec for InferWorkerSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.model.len() as u64);
        buf.extend_from_slice(&self.model);
        match self.sampling {
            SamplingStrategy::None => {
                put_u8(buf, SAMP_NONE);
                put_u64(buf, 0);
            }
            SamplingStrategy::Uniform { max_degree } => {
                put_u8(buf, SAMP_UNIFORM);
                put_u64(buf, max_degree as u64);
            }
            SamplingStrategy::Weighted { max_degree } => {
                put_u8(buf, SAMP_WEIGHTED);
                put_u64(buf, max_degree as u64);
            }
            SamplingStrategy::TopK { max_degree } => {
                put_u8(buf, SAMP_TOPK);
                put_u64(buf, max_degree as u64);
            }
        }
        put_u64(buf, self.seed);
        put_u8(buf, u8::from(self.gas));
        put_u64(buf, u64::from(self.r_parts));
        put_u64(buf, u64::from(self.degree_threshold));
    }

    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let n_model = get_u64(input)? as usize;
        if input.len() < n_model {
            return Err(CodecError(format!("model image truncated: {} of {n_model} bytes", input.len())));
        }
        let model = input[..n_model].to_vec();
        *input = &input[n_model..];
        let tag = get_u8(input)?;
        let max_degree = get_u64(input)? as usize;
        let sampling = match tag {
            SAMP_NONE => SamplingStrategy::None,
            SAMP_UNIFORM => SamplingStrategy::Uniform { max_degree },
            SAMP_WEIGHTED => SamplingStrategy::Weighted { max_degree },
            SAMP_TOPK => SamplingStrategy::TopK { max_degree },
            t => return Err(CodecError(format!("unknown sampling tag {t}"))),
        };
        let seed = get_u64(input)?;
        let gas = get_u8(input)? != 0;
        let r_parts = get_u64(input)? as u32;
        let degree_threshold = get_u64(input)? as u32;
        Ok(Self { model, sampling, seed, gas, r_parts, degree_threshold })
    }
}

impl InferWorkerSpec {
    /// The spec for a [`crate::stream::StreamInfer`]-shaped job (`crate::stream` decides
    /// `gas` from the model and config; threshold `0` means no combining).
    pub fn new(model: &GnnModel, cfg: &InferConfig, gas: bool, degree_threshold: u32) -> Self {
        Self {
            model: model_to_bytes(model),
            sampling: cfg.sampling,
            seed: cfg.engine.seed,
            gas,
            r_parts: cfg.engine.reduce_tasks as u32,
            degree_threshold,
        }
    }
}

/// Reducer factory for shuffle-worker processes: decodes an
/// [`InferWorkerSpec`] shipped by the driver and builds the identical
/// `InferReducer` the in-process engine would run. Pass to
/// `agl_mapreduce::serve_shuffle_combining` together with
/// [`infer_combiner_from_spec`].
pub fn infer_reducer_from_spec(spec: &[u8], counters: &Counters) -> Result<Box<dyn Reducer>, String> {
    let spec = InferWorkerSpec::from_bytes(spec).map_err(|e| format!("bad GraphInfer worker spec: {e}"))?;
    let model = model_from_bytes(&spec.model).map_err(|e| format!("bad model in worker spec: {e}"))?;
    if spec.r_parts == 0 {
        return Err("worker spec has r_parts = 0".into());
    }
    let k = model.n_layers();
    Ok(Box::new(InferReducer {
        slices: Arc::new(model.segment()),
        k,
        sampling: spec.sampling,
        seed: spec.seed,
        gas: spec.gas,
        r_parts: spec.r_parts as usize,
        counters: counters.clone(),
    }))
}

/// Combiner factory for shuffle-worker processes: decodes the same
/// [`InferWorkerSpec`] bytes (the driver sends them again as the combine
/// spec) and builds the identical [`InferCombiner`]. Errors if the spec's
/// model does not decompose or combining is disabled — a driver never sends
/// a combine spec for such jobs, so receiving one is a protocol breach.
pub fn infer_combiner_from_spec(spec: &[u8], _counters: &Counters) -> Result<Box<dyn ShuffleCombiner>, String> {
    let spec = InferWorkerSpec::from_bytes(spec).map_err(|e| format!("bad GraphInfer combine spec: {e}"))?;
    let model = model_from_bytes(&spec.model).map_err(|e| format!("bad model in combine spec: {e}"))?;
    if !spec.gas || spec.degree_threshold == 0 {
        return Err("combine spec for a non-combining job".into());
    }
    InferCombiner::for_slices(&model.segment(), spec.degree_threshold as usize, spec.r_parts as usize)
        .map(|c| Box::new(c) as Box<dyn ShuffleCombiner>)
        .ok_or_else(|| "combine spec model does not decompose".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_nn::{Loss, ModelConfig, ModelKind};

    fn model(kind: ModelKind) -> GnnModel {
        GnnModel::new(ModelConfig::new(kind, 4, 6, 2, 2, Loss::SoftmaxCrossEntropy).with_seed(7))
    }

    #[test]
    fn spec_round_trips() {
        let spec = InferWorkerSpec {
            model: model_to_bytes(&model(ModelKind::Gcn)),
            sampling: SamplingStrategy::Uniform { max_degree: 5 },
            seed: 42,
            gas: true,
            r_parts: 8,
            degree_threshold: 3,
        };
        assert_eq!(InferWorkerSpec::from_bytes(&spec.to_bytes()).unwrap(), spec);
    }

    #[test]
    fn factories_reject_corrupt_specs() {
        let good = InferWorkerSpec::new(&model(ModelKind::Gcn), &InferConfig::default(), true, 4).to_bytes();
        let c = Counters::new();
        assert!(infer_reducer_from_spec(&good, &c).is_ok());
        assert!(infer_combiner_from_spec(&good, &c).is_ok());
        assert!(infer_reducer_from_spec(&good[..good.len() / 2], &c).is_err());
        assert!(infer_combiner_from_spec(b"junk", &c).is_err());
    }

    #[test]
    fn combiner_factory_rejects_non_combining_jobs() {
        let c = Counters::new();
        let no_combine = InferWorkerSpec::new(&model(ModelKind::Gcn), &InferConfig::default(), true, 0).to_bytes();
        assert!(infer_combiner_from_spec(&no_combine, &c).is_err());
        let attention =
            InferWorkerSpec::new(&model(ModelKind::Gat { heads: 2 }), &InferConfig::default(), true, 4).to_bytes();
        assert!(infer_combiner_from_spec(&attention, &c).is_err());
    }
}
