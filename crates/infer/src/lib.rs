//! `agl-infer` — **GraphInfer**, the distributed inference framework
//! (paper §3.4).
//!
//! A trained K-layer model is split by **hierarchical model segmentation**
//! into K layer slices plus a prediction slice
//! ([`agl_nn::GnnModel::segment`]). Inference then runs as one MapReduce
//! job:
//!
//! * **Map** emits each node's self / in-edge / out-edge information,
//!   exactly as GraphFlat does (a join round attaches features to edges).
//! * **Reduce round k (1..=K)** loads slice `k`, merges the (k−1)-layer
//!   embeddings arriving from in-edge neighbors with the node's own, runs
//!   the layer's per-node forward, and propagates the k-layer embedding
//!   along out-edges.
//! * **Reduce round K+1** loads the prediction slice and emits the final
//!   score.
//!
//! Every node's layer-k embedding is computed **exactly once** — the paper's
//! key claim against the *original inference module* (running the trained
//! model over per-node GraphFeatures, where overlapping neighborhoods are
//! recomputed per target; implemented here as [`original::OriginalInference`]
//! for the Table 5 comparison). Both paths expose counters of embeddings
//! computed so the repetition factor is measurable, and both support the
//! GraphFlat sampling strategy for consistency (§3.4's unbiasedness note).

//!
//! Beyond the paper, the [`stream`] module adds **streaming GAS inference**
//! (the InferTurbo follow-up idea): the same rounds driven in bounded
//! memory, with a shuffle [`combine`]r that pre-folds the in-edge messages
//! of high-degree nodes into per-segment partials before they cross the
//! wire — bit-identical to the materialized run by construction.

pub mod combine;
pub mod dist;
pub mod messages;
pub mod original;
pub mod pipeline;
pub mod stream;

pub use combine::{combine_kinds, InferCombiner, PartialAgg};
pub use dist::{infer_combiner_from_spec, infer_reducer_from_spec, InferWorkerSpec};
pub use original::{OriginalInference, OriginalInferenceReport};
pub use pipeline::{GraphInfer, InferConfig, InferOutput, NodeEmbedding, NodeScore};
pub use stream::{StreamInfer, DEFAULT_DEGREE_THRESHOLD};
