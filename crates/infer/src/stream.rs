//! **Streaming full-graph inference** — the GAS (gather-apply-scatter)
//! pipeline of `agl-cli infer-stream`.
//!
//! [`StreamInfer`] runs the same round layout as [`crate::pipeline`]'s
//! GraphInfer, with two changes:
//!
//! * **GAS merge.** Reducers fold in-edge embeddings through the two-level
//!   segment fold of [`crate::combine`] and call the layer's
//!   `forward_node_combined`, which lets a shuffle combiner pre-fold the
//!   messages of high-degree nodes *before they cross the wire* — one
//!   [`crate::messages::InferMsg::Partial`] per producer segment instead of
//!   one `InEmb` per in-edge.
//! * **Bounded-memory execution.** [`StreamInfer::run`] drives the job on
//!   [`agl_mapreduce::StreamJob`], which keeps one shuffle partition
//!   resident at a time and parks the rest in the configured spill mode;
//!   the `stream.peak_resident_bytes` counter gauges the bound.
//!   [`StreamInfer::run_materialized`] drives the identical GAS job on the
//!   thread-pool engine — the baseline the streamed output is pinned
//!   bit-identical to.
//!
//! Both paths assert the paper's **exactly-once invariant** on the way out:
//! every node of the input table is scored exactly once, and the
//! `infer.embeddings_computed` counter equals `|V| · K`. Violations surface
//! as [`JobError::Corrupt`], never as silently wrong output.

use crate::combine::{combine_kinds, InferCombiner};
use crate::dist::InferWorkerSpec;
use crate::messages::InferMsg;
use crate::pipeline::{
    encode_edge_record, encode_node_record, key_id, InferConfig, InferMapper, InferOutput, InferReducer, NodeScore,
};
use agl_flat::SamplingStrategy;
use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_mapreduce::{
    Codec, Counters, DistJob, DistOptions, Endpoint, JobConfig, JobError, JobPlan, MapReduceJob, StreamJob, WireSig,
};
use agl_nn::GnnModel;
use std::sync::Arc;

/// How [`StreamInfer::run_inner`] drives the job.
enum Exec<'a> {
    /// Sequential bounded-memory [`StreamJob`].
    Streamed,
    /// Thread-pool [`MapReduceJob`] — the materialized baseline.
    Materialized,
    /// [`DistJob`] over shuffle-worker processes.
    Dist(&'a [Endpoint], &'a DistOptions),
}

/// Default bucket-local degree threshold: groups with at least this many
/// messages in one producer bucket are pre-folded by the combiner. Low
/// enough to fire on real hubs, high enough that tiny groups skip the
/// encode/decode round-trip.
pub const DEFAULT_DEGREE_THRESHOLD: usize = 8;

/// Driver for streaming (and materialized-baseline) GAS inference.
pub struct StreamInfer {
    cfg: InferConfig,
    degree_threshold: Option<usize>,
}

impl StreamInfer {
    /// A driver with the combiner enabled at [`DEFAULT_DEGREE_THRESHOLD`].
    pub fn new(cfg: InferConfig) -> Self {
        Self { cfg, degree_threshold: Some(DEFAULT_DEGREE_THRESHOLD) }
    }

    /// Override the combiner degree threshold; `None` disables combining
    /// entirely (the GAS fold still runs reducer-side, so the output is
    /// bit-identical either way — that equality is pinned by tests).
    pub fn with_degree_threshold(mut self, threshold: Option<usize>) -> Self {
        self.degree_threshold = threshold;
        self
    }

    pub fn config(&self) -> &InferConfig {
        &self.cfg
    }

    /// Whether this configuration runs the GAS merge: sampling must be off
    /// (partial aggregation folds *every* in-edge) and every layer's
    /// aggregation must decompose. Otherwise both entry points fall back to
    /// the classic per-neighbor fold — still streamed, just uncombinable.
    pub fn gas_eligible(&self, model: &GnnModel) -> bool {
        matches!(self.cfg.sampling, SamplingStrategy::None) && combine_kinds(&model.segment()).is_some()
    }

    /// Streaming run: sequential bounded-memory execution over
    /// [`StreamJob`]. Output is bit-identical to [`Self::run_materialized`].
    pub fn run(&self, model: &GnnModel, nodes: &NodeTable, edges: &EdgeTable) -> Result<InferOutput, JobError> {
        self.run_inner(model, nodes, edges, Exec::Streamed)
    }

    /// Materialized baseline: the identical GAS job on the thread-pool
    /// engine, every round's shuffle fully resident.
    pub fn run_materialized(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
    ) -> Result<InferOutput, JobError> {
        self.run_inner(model, nodes, edges, Exec::Materialized)
    }

    /// The *same* job with the reduce work farmed out to shuffle-worker
    /// processes at `endpoints` (each running
    /// `agl_mapreduce::serve_shuffle_combining` with
    /// [`crate::dist::infer_reducer_from_spec`] and
    /// [`crate::dist::infer_combiner_from_spec`]). Output is byte-identical
    /// to [`Self::run_materialized`] — and therefore bit-identical to
    /// [`Self::run`].
    pub fn run_distributed(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
        endpoints: &[Endpoint],
        opts: &DistOptions,
    ) -> Result<InferOutput, JobError> {
        self.run_inner(model, nodes, edges, Exec::Dist(endpoints, opts))
    }

    fn run_inner(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
        exec: Exec<'_>,
    ) -> Result<InferOutput, JobError> {
        let slices = Arc::new(model.segment());
        let k = model.n_layers();
        let rounds = k + 2; // join + K slices + prediction
        let gas = self.gas_eligible(model);
        let r_parts = self.cfg.engine.reduce_tasks;
        let combiner =
            if gas { self.degree_threshold.and_then(|t| InferCombiner::for_slices(&slices, t, r_parts)) } else { None };

        let span_name = match exec {
            Exec::Streamed => "infer.stream",
            Exec::Materialized => "infer.materialized",
            Exec::Dist(..) => "infer.dist",
        };
        let _span = self.cfg.engine.obs.span("driver", span_name);
        let counters = match self.cfg.engine.obs.metrics() {
            Some(m) => Counters::with_registry(m.clone()),
            None => Counters::new(),
        };

        let mut inputs = Vec::with_capacity(nodes.len() + edges.len());
        for (id, feat) in nodes.iter() {
            inputs.push(encode_node_record(id, feat));
        }
        for (row, _) in edges.iter() {
            inputs.push(encode_edge_record(row.src, row.dst, row.weight));
        }

        let reducer = InferReducer {
            slices,
            k,
            sampling: self.cfg.sampling,
            seed: self.cfg.engine.seed,
            gas,
            r_parts,
            counters: counters.clone(),
        };
        let job_cfg = JobConfig {
            map_tasks: self.cfg.engine.map_tasks,
            reduce_tasks: r_parts,
            reduce_rounds: rounds,
            parallelism: self.cfg.engine.parallelism,
            max_attempts: 4,
            fault_plan: self.cfg.fault_plan.clone(),
            spill: self.cfg.spill.clone(),
            plan: Some(JobPlan::homogeneous(WireSig("infer-key/infer-msg"), rounds)),
            verify_determinism: cfg!(debug_assertions),
            metrics_flush_every: 4,
            obs: self.cfg.engine.obs.clone(),
        };
        let result = match (&exec, &combiner) {
            (Exec::Streamed, Some(c)) => {
                StreamJob::new(job_cfg).run_with_shuffle_combiner(&inputs, &InferMapper, &reducer, c)
            }
            (Exec::Streamed, None) => StreamJob::new(job_cfg).run(&inputs, &InferMapper, &reducer),
            (Exec::Materialized, Some(c)) => {
                MapReduceJob::new(job_cfg).run_with_shuffle_combiner(&inputs, &InferMapper, &reducer, c)
            }
            (Exec::Materialized, None) => MapReduceJob::new(job_cfg).run(&inputs, &InferMapper, &reducer),
            (Exec::Dist(endpoints, opts), _) => {
                let threshold = if combiner.is_some() { self.degree_threshold.unwrap_or(0) as u32 } else { 0 };
                let spec = InferWorkerSpec::new(model, &self.cfg, gas, threshold).to_bytes();
                let job = DistJob::new(job_cfg, (*opts).clone());
                match &combiner {
                    Some(c) => job.run_with_combiner(endpoints, &spec, &spec, c, &inputs, &InferMapper),
                    None => job.run(endpoints, &spec, &inputs, &InferMapper),
                }
            }
        }?;
        if matches!(exec, Exec::Dist(..)) {
            // Worker-side pipeline counters ride back namespaced per worker
            // (`w3.infer.embeddings_computed`); fold them into the job-wide
            // names the invariant check and the CLI read.
            for (name, v) in result.counters.snapshot() {
                let Some(rest) = name.strip_prefix('w') else { continue };
                let Some((_, base)) = rest.split_once('.') else { continue };
                if base.starts_with("infer.") || base.starts_with("combine.") {
                    result.counters.add(base, v);
                }
            }
        }
        if !self.cfg.engine.obs.is_enabled() {
            for (name, v) in result.counters.snapshot() {
                counters.add(&name, v);
            }
        }

        let mut scores = Vec::with_capacity(result.output.len());
        for kv in &result.output {
            let msg = InferMsg::from_bytes(&kv.value).map_err(|e| JobError::Corrupt(format!("score record: {e}")))?;
            match msg {
                InferMsg::Score { probs } => scores.push(NodeScore { node: NodeId(key_id(&kv.key)), probs }),
                other => return Err(JobError::Corrupt(format!("unexpected output record {other:?}"))),
            }
        }
        scores.sort_by_key(|s| s.node);
        // Distributed retries (a worker died and its partitions re-ran on a
        // survivor) legally re-count side effects, like injected faults.
        let recounted = self.cfg.fault_plan.is_active() || counters.get("task_retries") > 0;
        check_exactly_once(&scores, nodes.len(), k, &counters, recounted)?;
        Ok(InferOutput { scores, counters })
    }
}

/// The exactly-once invariant: every input node scored once (no misses, no
/// duplicates), and `infer.embeddings_computed == |V| · K`. The counter leg
/// is skipped under fault injection, where re-executed attempts legally
/// re-count side effects (the scored-once legs still hold — re-executed
/// output is deduplicated by the deterministic shuffle, not by counting).
fn check_exactly_once(
    scores: &[NodeScore],
    n_nodes: usize,
    k: usize,
    counters: &Counters,
    faults_injected: bool,
) -> Result<(), JobError> {
    for pair in scores.windows(2) {
        if pair[0].node == pair[1].node {
            return Err(JobError::Corrupt(format!("node {} served more than once", pair[0].node.0)));
        }
    }
    if scores.len() != n_nodes {
        return Err(JobError::Corrupt(format!("served {} nodes, expected exactly {n_nodes}", scores.len())));
    }
    let computed = counters.get("infer.embeddings_computed");
    let expected = (n_nodes * k) as u64;
    if !faults_injected && computed != expected {
        return Err(JobError::Corrupt(format!(
            "embeddings computed {computed} ≠ |V|·K = {expected}: exactly-once violated"
        )));
    }
    Ok(())
}
