//! Shuffle-combiner support for streaming GAS inference.
//!
//! High-degree nodes are the scalability hazard of full-graph inference: a
//! hub with a million in-edges receives a million [`InferMsg::InEmb`]
//! messages per layer. Because GCN/SAGE/GIN aggregation decomposes into a
//! running `(n, Σw, Σw·h)` fold ([`agl_nn::CombineKind`]), those messages
//! can be *partially aggregated before crossing the wire* — the classic
//! MapReduce combiner, applied to graph learning (the InferTurbo idea).
//!
//! **Exactness.** Floating-point addition is not associative, so a naive
//! combiner would change result bits depending on which messages it
//! happened to fold. We make combining exact by construction:
//!
//! 1. Every in-edge message `src → dst` is assigned a **segment**
//!    `partition(src, r_parts)` — exactly the reduce partition of the
//!    *producer* that emitted it. All of a segment's messages for `dst`
//!    therefore sit in one producer out-bucket, which a combiner owns
//!    entirely: it can fold a whole segment or leave it alone, never half.
//! 2. Within a segment, messages are sorted canonically (by `src`, then
//!    weight bits, then embedding bits) before folding — see
//!    [`fold_in_embs`].
//! 3. The consuming reducer *always* computes this same two-level fold
//!    (segments folded canonically, partials merged in ascending segment
//!    order via [`finish`]), whether a segment arrives as raw messages or
//!    as a pre-folded [`InferMsg::Partial`].
//!
//! The degree threshold therefore only changes *where* a segment is folded,
//! never the folded bits: combiner-on, combiner-off, streamed, materialized
//! and distributed GAS runs are all bit-identical.

use crate::messages::InferMsg;
use agl_mapreduce::hash::partition;
use agl_mapreduce::{Codec, ShuffleCombiner};
use agl_nn::{CombineKind, ModelSlice, NeighborAggregate};

/// One segment's partial aggregate of in-edge messages: `n` edges folded,
/// their total weight, and the elementwise accumulator (`Σ w·h` for
/// sum/mean, elementwise `max(w·h)` for max).
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAgg {
    /// Producer reduce partition that owns the folded messages.
    pub segment: u32,
    /// Number of in-edges folded.
    pub n: u32,
    /// Sum of the folded edge weights.
    pub total_w: f32,
    /// Elementwise accumulator, length = embedding dim.
    pub acc: Vec<f32>,
}

impl PartialAgg {
    /// The wire form of this partial.
    pub fn into_msg(self) -> InferMsg {
        InferMsg::Partial { segment: self.segment, n: self.n, total_w: self.total_w, acc: self.acc }
    }
}

/// The segment an in-edge message from `src` belongs to: the reduce
/// partition of the producer that emitted it.
pub fn segment_of(src: u64, r_parts: usize) -> u32 {
    partition(&src.to_le_bytes(), r_parts) as u32
}

fn fold_step(kind: CombineKind, p: &mut PartialAgg, w: f32, h: &[f32]) {
    p.n += 1;
    p.total_w += w;
    match kind {
        CombineKind::Sum | CombineKind::Mean => {
            for (a, &x) in p.acc.iter_mut().zip(h) {
                *a += w * x;
            }
        }
        CombineKind::Max => {
            for (a, &x) in p.acc.iter_mut().zip(h) {
                *a = a.max(w * x);
            }
        }
    }
}

/// Fold raw in-edge messages `(src, weight, h)` into one [`PartialAgg`] per
/// segment, returned in ascending segment order.
///
/// The fold order is canonical — `(segment, src, weight bits, h bits)` — so
/// the result is invariant under any permutation of `items`. This is the
/// single fold every GAS path uses, which is what makes partial aggregation
/// exact.
pub fn fold_in_embs(kind: CombineKind, r_parts: usize, items: Vec<(u64, f32, Vec<f32>)>) -> Vec<PartialAgg> {
    let mut tagged: Vec<(u32, u64, f32, Vec<f32>)> =
        items.into_iter().map(|(src, w, h)| (segment_of(src, r_parts), src, w, h)).collect();
    tagged.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.total_cmp(&b.2))
            .then_with(|| a.3.iter().map(|f| f.to_bits()).cmp(b.3.iter().map(|f| f.to_bits())))
    });
    let mut out: Vec<PartialAgg> = Vec::new();
    for (seg, _src, w, h) in tagged {
        match out.last_mut() {
            Some(p) if p.segment == seg => fold_step(kind, p, w, &h),
            _ => {
                let mut p = PartialAgg { segment: seg, n: 0, total_w: 0.0, acc: vec![0.0; h.len()] };
                if kind == CombineKind::Max {
                    // max has no additive identity: seed with the first term.
                    p.n = 1;
                    p.total_w = w;
                    p.acc = h.iter().map(|&x| w * x).collect();
                } else {
                    fold_step(kind, &mut p, w, &h);
                }
                out.push(p);
            }
        }
    }
    out
}

fn merge_pair(kind: CombineKind, dst: &mut PartialAgg, src: &PartialAgg) {
    dst.n += src.n;
    dst.total_w += src.total_w;
    match kind {
        CombineKind::Sum | CombineKind::Mean => {
            for (a, &x) in dst.acc.iter_mut().zip(&src.acc) {
                *a += x;
            }
        }
        CombineKind::Max => {
            for (a, &x) in dst.acc.iter_mut().zip(&src.acc) {
                *a = a.max(x);
            }
        }
    }
}

/// Sort partials by ascending segment and merge duplicates (stable, so
/// callers that list locally-folded partials before received ones get a
/// deterministic merge even in the never-expected duplicate case).
pub fn merge_partials(kind: CombineKind, mut partials: Vec<PartialAgg>) -> Vec<PartialAgg> {
    partials.sort_by_key(|p| p.segment);
    let mut out: Vec<PartialAgg> = Vec::new();
    for p in partials {
        match out.last_mut() {
            Some(d) if d.segment == p.segment => merge_pair(kind, d, &p),
            _ => out.push(p),
        }
    }
    out
}

/// Merge partials in ascending segment order into the final
/// [`NeighborAggregate`] a layer's `forward_node_combined` consumes.
pub fn finish(kind: CombineKind, partials: Vec<PartialAgg>, dim: usize) -> NeighborAggregate {
    let mut agg = NeighborAggregate::empty(dim);
    let mut started = false;
    for p in merge_partials(kind, partials) {
        debug_assert_eq!(p.acc.len(), dim);
        agg.n += u64::from(p.n);
        agg.total_w += p.total_w;
        match kind {
            CombineKind::Sum | CombineKind::Mean => {
                for (a, &x) in agg.acc.iter_mut().zip(&p.acc) {
                    *a += x;
                }
            }
            CombineKind::Max if !started => agg.acc.copy_from_slice(&p.acc),
            CombineKind::Max => {
                for (a, &x) in agg.acc.iter_mut().zip(&p.acc) {
                    *a = a.max(x);
                }
            }
        }
        started = true;
    }
    agg
}

/// The per-layer combine kinds of a segmented model, or `None` if any layer
/// is attention-based (GAT / GeniePath keep raw neighbor embeddings, so
/// their aggregation does not decompose).
pub fn combine_kinds(slices: &[ModelSlice]) -> Option<Vec<CombineKind>> {
    let kinds: Vec<CombineKind> = slices
        .iter()
        .filter_map(|s| match s {
            ModelSlice::Gnn(layer) => Some(layer.combine_kind()),
            ModelSlice::Prediction(..) => None,
        })
        .collect::<Option<Vec<_>>>()?;
    if kinds.is_empty() {
        return None;
    }
    Some(kinds)
}

/// The shuffle combiner of the GAS inference pipeline: for reduce rounds
/// `1..=K` it folds each key's in-edge messages into one
/// [`InferMsg::Partial`] per segment, gated by a bucket-local degree
/// threshold. Other message kinds pass through untouched, in order.
pub struct InferCombiner {
    kinds: Vec<CombineKind>,
    degree_threshold: usize,
    r_parts: usize,
}

impl InferCombiner {
    /// Build from explicit per-layer kinds. `kinds.len()` is the number of
    /// GNN layers K; rounds outside `1..=K` are never combined.
    pub fn new(kinds: Vec<CombineKind>, degree_threshold: usize, r_parts: usize) -> Self {
        assert!(!kinds.is_empty(), "combiner needs at least one layer kind");
        assert!(r_parts > 0, "r_parts must be positive");
        Self { kinds, degree_threshold, r_parts }
    }

    /// Build from a segmented model, or `None` when the model's aggregation
    /// does not decompose (attention layers).
    pub fn for_slices(slices: &[ModelSlice], degree_threshold: usize, r_parts: usize) -> Option<Self> {
        combine_kinds(slices).map(|kinds| Self::new(kinds, degree_threshold, r_parts))
    }
}

impl ShuffleCombiner for InferCombiner {
    fn combines(&self, round: usize, _key: &[u8], n_values: usize) -> bool {
        round >= 1 && round <= self.kinds.len() && n_values >= self.degree_threshold
    }

    fn combine(&self, round: usize, _key: &[u8], values: &mut Vec<Vec<u8>>) {
        let kind = self.kinds[round - 1];
        let mut keep: Vec<Vec<u8>> = Vec::new();
        let mut raw: Vec<(u64, f32, Vec<f32>)> = Vec::new();
        let mut received: Vec<PartialAgg> = Vec::new();
        for v in values.drain(..) {
            match InferMsg::from_bytes(&v) {
                Ok(InferMsg::InEmb { src, weight, h }) => raw.push((src, weight, h)),
                Ok(InferMsg::Partial { segment, n, total_w, acc }) => {
                    received.push(PartialAgg { segment, n, total_w, acc });
                }
                // Non-aggregable (or undecodable — the reducer will report
                // it) messages pass through in their original order.
                _ => keep.push(v),
            }
        }
        let mut partials = fold_in_embs(kind, self.r_parts, raw);
        partials.extend(received);
        *values = keep;
        for p in merge_partials(kind, partials) {
            values.push(p.into_msg().to_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::rng::Rng;
    use agl_tensor::seeded_rng;

    fn items(n: u64, dim: usize, seed: u64) -> Vec<(u64, f32, Vec<f32>)> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|src| {
                let w = rng.gen_range(0.1..2.0f32);
                let h: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
                (src, w, h)
            })
            .collect()
    }

    fn shuffled(mut v: Vec<(u64, f32, Vec<f32>)>, seed: u64) -> Vec<(u64, f32, Vec<f32>)> {
        let mut rng = seeded_rng(seed);
        for i in (1..v.len()).rev() {
            v.swap(i, rng.gen_range(0..=i));
        }
        v
    }

    #[test]
    fn fold_is_invariant_under_seeded_permutations() {
        for kind in [CombineKind::Sum, CombineKind::Mean, CombineKind::Max] {
            let base = fold_in_embs(kind, 4, items(40, 3, 7));
            assert!(base.len() > 1, "multiple segments exercised");
            for seed in [1u64, 2, 3, 4, 5] {
                let permuted = fold_in_embs(kind, 4, shuffled(items(40, 3, 7), seed));
                assert_eq!(base, permuted, "{kind:?} fold must not depend on arrival order (seed {seed})");
            }
        }
    }

    #[test]
    fn segment_owned_splits_merge_to_the_direct_fold_bit_for_bit() {
        // The system invariant: a combiner only ever folds *whole* segments
        // (it owns its producer partition). Any split of the input that
        // respects segment ownership must merge back to the direct fold
        // exactly — this is the associativity the wire format relies on.
        for kind in [CombineKind::Sum, CombineKind::Mean, CombineKind::Max] {
            let all = items(60, 4, 21);
            let direct = finish(kind, fold_in_embs(kind, 4, all.clone()), 4);
            // Split by segment parity: segments {0,2} folded eagerly,
            // {1,3} left raw — then merged.
            let (eager, raw): (Vec<_>, Vec<_>) = all.into_iter().partition(|(s, _, _)| segment_of(*s, 4) % 2 == 0);
            let mut partials = fold_in_embs(kind, 4, eager);
            partials.extend(fold_in_embs(kind, 4, raw));
            let merged = finish(kind, partials, 4);
            assert_eq!(direct.n, merged.n);
            assert_eq!(direct.total_w.to_bits(), merged.total_w.to_bits(), "{kind:?}");
            for (a, b) in direct.acc.iter().zip(&merged.acc) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} accumulator must be bit-identical");
            }
        }
    }

    #[test]
    fn degree_threshold_boundaries() {
        let c = InferCombiner::new(vec![CombineKind::Mean, CombineKind::Mean], 5, 4);
        assert!(!c.combines(1, b"k", 4), "below threshold");
        assert!(c.combines(1, b"k", 5), "at threshold");
        assert!(c.combines(2, b"k", 9), "last layer round combines");
        assert!(!c.combines(0, b"k", 100), "join round never combines");
        assert!(!c.combines(3, b"k", 100), "prediction round never combines");
    }

    #[test]
    fn combine_replaces_in_embs_and_preserves_the_rest_in_order() {
        let c = InferCombiner::new(vec![CombineKind::Sum], 1, 4);
        let self_emb = InferMsg::SelfEmb { h: vec![9.0] }.to_bytes();
        let out_edge = InferMsg::OutEdge { dst: 3, weight: 0.5 }.to_bytes();
        let mut values = vec![
            InferMsg::InEmb { src: 10, weight: 1.0, h: vec![2.0] }.to_bytes(),
            self_emb.clone(),
            InferMsg::InEmb { src: 11, weight: 2.0, h: vec![3.0] }.to_bytes(),
            out_edge.clone(),
        ];
        c.combine(1, b"k", &mut values);
        assert_eq!(values[0], self_emb, "passthrough order preserved");
        assert_eq!(values[1], out_edge);
        let mut total_n = 0u32;
        for v in &values[2..] {
            match InferMsg::from_bytes(v).unwrap() {
                InferMsg::Partial { n, .. } => total_n += n,
                other => panic!("expected only partials after passthrough, got {other:?}"),
            }
        }
        assert_eq!(total_n, 2, "both in-embeddings folded");
    }

    #[test]
    fn combined_values_finish_to_the_raw_fold() {
        // Round-trip through the wire: raw values → combine() → decode →
        // finish must equal finish over the raw fold.
        for kind in [CombineKind::Sum, CombineKind::Mean] {
            let raw = items(32, 3, 33);
            let direct = finish(kind, fold_in_embs(kind, 4, raw.clone()), 3);
            let c = InferCombiner::new(vec![kind], 1, 4);
            let mut values: Vec<Vec<u8>> =
                raw.iter().map(|(s, w, h)| InferMsg::InEmb { src: *s, weight: *w, h: h.clone() }.to_bytes()).collect();
            c.combine(1, b"k", &mut values);
            assert!(values.len() < raw.len(), "combining must shrink the group");
            let partials: Vec<PartialAgg> = values
                .iter()
                .map(|v| match InferMsg::from_bytes(v).unwrap() {
                    InferMsg::Partial { segment, n, total_w, acc } => PartialAgg { segment, n, total_w, acc },
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            let via_wire = finish(kind, partials, 3);
            assert_eq!(direct.n, via_wire.n);
            for (a, b) in direct.acc.iter().zip(&via_wire.acc) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?}");
            }
        }
    }

    #[test]
    fn combine_kinds_rejects_attention_models() {
        use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
        let decomposable = GnnModel::new(ModelConfig::new(ModelKind::Gcn, 3, 4, 2, 2, Loss::SoftmaxCrossEntropy));
        assert_eq!(combine_kinds(&decomposable.segment()), Some(vec![CombineKind::Mean, CombineKind::Mean]));
        let attention =
            GnnModel::new(ModelConfig::new(ModelKind::Gat { heads: 2 }, 3, 4, 2, 2, Loss::SoftmaxCrossEntropy));
        assert_eq!(combine_kinds(&attention.segment()), None);
        assert!(InferCombiner::for_slices(&attention.segment(), 8, 4).is_none());
    }
}
