//! The **original inference module** — Table 5's comparison row.
//!
//! Before GraphInfer, inference ran the trained model over each node's
//! GraphFeature: GraphFlat for *all* nodes, then a per-target forward pass
//! over every stored neighborhood. Because neighborhoods overlap, the same
//! node's intermediate embedding is recomputed once per neighborhood it
//! appears in — the *"massive repetitions of embedding inference"* the
//! paper eliminates. The repetition factor is surfaced via counters so the
//! Table 5 bench can report it alongside wall-clock numbers.

use crate::pipeline::NodeScore;
use agl_flat::{FlatConfig, GraphFlat, TargetSpec, TrainingExample};
use agl_graph::NodeId;
use agl_graph::{EdgeTable, NodeTable};
use agl_mapreduce::{Counters, JobError};
use agl_nn::GnnModel;
use agl_obs::Clock;
use agl_tensor::seeded_rng;
use agl_trainer::pipeline::{prepare_batch_canonical, PrepSpec};
use std::time::Duration;

/// Timing/cost breakdown of an original-inference run (mirrors Table 5's
/// "GraphFlat" + "Forward propagation" rows).
#[derive(Debug, Clone)]
pub struct OriginalInferenceReport {
    pub scores: Vec<NodeScore>,
    pub graphflat_time: Duration,
    pub forward_time: Duration,
    /// Node-embedding computations performed across all neighborhoods —
    /// compare with GraphInfer's `infer.embeddings_computed`.
    pub embeddings_computed: u64,
    pub counters: Counters,
}

impl OriginalInferenceReport {
    pub fn total_time(&self) -> Duration {
        self.graphflat_time + self.forward_time
    }
}

/// Per-GraphFeature inference (the pre-GraphInfer deployment).
pub struct OriginalInference {
    pub flat: FlatConfig,
    /// Forward batch size over the stored GraphFeatures.
    pub batch_size: usize,
}

impl OriginalInference {
    pub fn new(flat: FlatConfig) -> Self {
        Self { flat, batch_size: 64 }
    }

    /// Score every node by generating its GraphFeature and running the full
    /// model forward over it.
    pub fn run(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
    ) -> Result<OriginalInferenceReport, JobError> {
        assert_eq!(self.flat.k_hops, model.n_layers(), "GraphFeatures must be as deep as the model (Theorem 1)");
        let clock = Clock::monotonic();
        let t0 = clock.now();
        let flat_out = GraphFlat::new(self.flat.clone()).run(nodes, edges, &TargetSpec::All)?;
        let graphflat_time = Duration::from_nanos(clock.since(t0));

        let t1 = clock.now();
        let spec = PrepSpec {
            n_layers: model.n_layers(),
            prep: model.layers()[0].adj_prep(),
            label_dim: model.config().out_dim,
            // The paper notes the pruning strategy also applies here.
            prune: true,
        };
        let ctx = agl_tensor::ExecCtx::sequential();
        let mut rng = seeded_rng(0);
        let mut embeddings_computed = 0u64;
        let mut scores = Vec::with_capacity(flat_out.examples.len());
        for chunk in flat_out.examples.chunks(self.batch_size) {
            let owned: Vec<TrainingExample> = chunk.to_vec();
            // Canonical (ascending global source-id) row order: the same
            // node's neighbor fold must not depend on which batch it landed
            // in, and must match the GraphInfer reducers' fold order — the
            // regression suite pins this path and the streaming path
            // against the same golden scores.
            let prepared = prepare_batch_canonical(&owned, &spec);
            // Every node of the merged neighborhoods gets its embedding
            // recomputed at every layer (pruning trims the upper layers).
            for adj in &prepared.adjs {
                embeddings_computed += count_active_rows(adj);
            }
            let pass =
                model.forward(&prepared.adjs, &prepared.batch.features, &prepared.batch.targets, false, &ctx, &mut rng);
            let probs = model.config().loss.probabilities(&pass.logits);
            for (i, ex) in chunk.iter().enumerate() {
                scores.push(NodeScore { node: ex.target, probs: probs.row(i).to_vec() });
            }
        }
        scores.sort_by_key(|s: &NodeScore| s.node);
        let forward_time = Duration::from_nanos(clock.since(t1));
        Ok(OriginalInferenceReport {
            scores,
            graphflat_time,
            forward_time,
            embeddings_computed,
            counters: flat_out.counters,
        })
    }
}

/// Rows with at least one in-edge entry — the embeddings a layer actually
/// computes (isolated rows are a copy/bias, counted too when they are
/// targets; we count non-empty rows as the dominant cost).
fn count_active_rows(adj: &agl_tensor::Csr) -> u64 {
    (0..adj.n_rows()).filter(|&r| adj.row_nnz(r) > 0).count() as u64
}

// NodeId imported for the sort key type inference above.
#[allow(unused)]
fn _t(_: NodeId) {}
