//! The GraphInfer MapReduce pipeline (§3.4).
//!
//! Engine round layout for a K-layer model:
//!
//! | engine round | role                                            |
//! |--------------|-------------------------------------------------|
//! | 0            | join: attach `h⁰ = x` to edges, emit infos       |
//! | 1..=K        | slice k: merge in-embeddings, per-node forward   |
//! | K+1          | prediction slice: final score                    |

use crate::combine::{finish, fold_in_embs, PartialAgg};
use crate::messages::InferMsg;
use agl_flat::SamplingStrategy;
use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_mapreduce::codec::{get_f32, get_f32s, get_u64, get_u8, put_f32, put_f32s, put_u64, put_u8, Codec};
use agl_mapreduce::hash::fnv1a;
use agl_mapreduce::{
    Counters, EngineConfig, FaultPlan, JobConfig, JobError, JobPlan, MapReduceJob, Mapper, Reducer, SpillMode, WireSig,
};
use agl_nn::layer::NeighborView;
use agl_nn::{GnnModel, ModelSlice};
use agl_tensor::rng::derive_seed;
use std::sync::Arc;

/// GraphInfer configuration (`-c infer_configs` of §3.5).
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// Sampling, kept consistent with the GraphFlat run that produced the
    /// training data ("unbiased inference", §3.4).
    pub sampling: SamplingStrategy,
    pub spill: SpillMode,
    pub fault_plan: FaultPlan,
    /// Shared engine knobs: task counts, parallelism, the sampling seed
    /// (same role as in GraphFlat), and the observability handle (spans +
    /// shared metrics registry; disabled by default).
    pub engine: EngineConfig,
}

impl Default for InferConfig {
    fn default() -> Self {
        Self {
            sampling: SamplingStrategy::None,
            spill: SpillMode::InMemory,
            fault_plan: FaultPlan::none(),
            engine: EngineConfig::default(),
        }
    }
}

impl InferConfig {
    /// Builder-style seed override (writes `engine.seed`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.engine.seed = seed;
        self
    }

    /// Builder-style obs-handle override (writes `engine.obs`).
    pub fn with_obs(mut self, obs: agl_obs::Obs) -> Self {
        self.engine.obs = obs;
        self
    }

    /// Builder-style engine-block override.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// One node's predicted scores.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeScore {
    pub node: NodeId,
    /// Probabilities under the model's loss (softmax rows / sigmoid).
    pub probs: Vec<f32>,
}

/// One node's final-layer embedding (the K-th slice's output, before the
/// prediction model) — what downstream systems consume when AGL is used as
/// an embedding producer rather than an end-to-end classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEmbedding {
    pub node: NodeId,
    pub embedding: Vec<f32>,
}

/// GraphInfer result.
#[derive(Debug)]
pub struct InferOutput {
    /// Scores sorted by node id — one per node of the input table.
    pub scores: Vec<NodeScore>,
    pub counters: Counters,
}

// ---- input records ----

const REC_NODE: u8 = 0;
const REC_EDGE: u8 = 1;

pub(crate) fn encode_node_record(id: NodeId, features: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(13 + 4 * features.len());
    put_u8(&mut buf, REC_NODE);
    put_u64(&mut buf, id.0);
    put_f32s(&mut buf, features);
    buf
}

pub(crate) fn encode_edge_record(src: NodeId, dst: NodeId, weight: f32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(21);
    put_u8(&mut buf, REC_EDGE);
    put_u64(&mut buf, src.0);
    put_u64(&mut buf, dst.0);
    put_f32(&mut buf, weight);
    buf
}

/// Decode a record this pipeline itself encoded. The [`Mapper`]/[`Reducer`]
/// contract has no error channel, and a decode failure of self-encoded
/// bytes means an engine invariant broke — aborting the task is the only
/// correct response, and the retry machinery reports it as a task failure.
fn must<T>(r: Result<T, agl_mapreduce::codec::CodecError>, what: &str) -> T {
    match r {
        Ok(v) => v,
        // agl-lint: allow(no-panic) — self-encoded record failed to decode: engine bug, and no error channel exists here.
        Err(e) => panic!("corrupt {what}: {e}"),
    }
}

/// Shuffle keys in this pipeline are always the 8-byte little-endian node
/// id (shorter keys decode as zero-padded — unreachable for records this
/// pipeline emitted).
pub(crate) fn key_id(key: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    for (d, s) in b.iter_mut().zip(key) {
        *d = *s;
    }
    u64::from_le_bytes(b)
}

pub(crate) struct InferMapper;

impl Mapper for InferMapper {
    fn map(&self, input: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>)) {
        let mut r = input;
        match must(get_u8(&mut r), "record tag") {
            REC_NODE => {
                let id = must(get_u64(&mut r), "node id");
                let features = must(get_f32s(&mut r), "features");
                emit(id.to_le_bytes().to_vec(), InferMsg::NodeRow { features }.to_bytes());
            }
            REC_EDGE => {
                let src = must(get_u64(&mut r), "src");
                let dst = must(get_u64(&mut r), "dst");
                let weight = must(get_f32(&mut r), "weight");
                emit(src.to_le_bytes().to_vec(), InferMsg::EdgeBySrc { dst, weight }.to_bytes());
            }
            // agl-lint: allow(no-panic) — inputs are produced by encode_node_record/encode_edge_record above.
            t => panic!("unknown input record tag {t}"),
        }
    }
}

pub(crate) struct InferReducer {
    pub(crate) slices: Arc<Vec<ModelSlice>>,
    /// K — number of GNN layers.
    pub(crate) k: usize,
    pub(crate) sampling: SamplingStrategy,
    pub(crate) seed: u64,
    /// GAS mode: fold in-embeddings with the two-level segment fold of
    /// [`crate::combine`] and run the layer's `forward_node_combined`, so
    /// shuffle combiners are exact. Requires `sampling == None` and a model
    /// whose every layer decomposes ([`crate::combine::combine_kinds`]).
    pub(crate) gas: bool,
    /// Reduce-partition count of the running job — the segment space of the
    /// two-level fold. Only read in GAS mode.
    pub(crate) r_parts: usize,
    pub(crate) counters: Counters,
}

impl Reducer for InferReducer {
    fn reduce(
        &self,
        round: usize,
        key: &[u8],
        values: &mut dyn Iterator<Item = &[u8]>,
        emit: &mut dyn FnMut(Vec<u8>, Vec<u8>),
    ) {
        let mut node_row: Option<Vec<f32>> = None;
        let mut edges_by_src: Vec<(u64, f32)> = Vec::new();
        let mut self_emb: Option<Vec<f32>> = None;
        let mut in_embs: Vec<(u64, f32, Vec<f32>)> = Vec::new();
        let mut out_edges: Vec<(u64, f32)> = Vec::new();
        let mut final_emb: Option<Vec<f32>> = None;
        let mut partials: Vec<PartialAgg> = Vec::new();
        for v in values {
            match must(InferMsg::from_bytes(v), "infer message") {
                InferMsg::NodeRow { features } => node_row = Some(features),
                InferMsg::EdgeBySrc { dst, weight } => edges_by_src.push((dst, weight)),
                InferMsg::SelfEmb { h } => self_emb = Some(h),
                InferMsg::InEmb { src, weight, h } => in_embs.push((src, weight, h)),
                InferMsg::OutEdge { dst, weight } => out_edges.push((dst, weight)),
                InferMsg::Emb { h } => final_emb = Some(h),
                // agl-lint: allow(no-panic) — Score is only emitted by the terminal prediction round.
                InferMsg::Score { .. } => panic!("Score re-entered the pipeline"),
                InferMsg::Partial { segment, n, total_w, acc } if self.gas => {
                    partials.push(PartialAgg { segment, n, total_w, acc });
                }
                // agl-lint: allow(no-panic) — only GAS jobs install the combiner that emits partials.
                InferMsg::Partial { .. } => panic!("Partial received by a non-GAS reducer"),
            }
        }

        if round == 0 {
            // ---- Join: h⁰ = x, fan the features out along out-edges ----
            let Some(x) = node_row else {
                self.counters.add("infer.dangling_edge_sources", edges_by_src.len() as u64);
                return;
            };
            emit(key.to_vec(), InferMsg::SelfEmb { h: x.clone() }.to_bytes());
            for (dst, weight) in edges_by_src {
                emit(dst.to_le_bytes().to_vec(), InferMsg::InEmb { src: key_id(key), weight, h: x.clone() }.to_bytes());
                emit(key.to_vec(), InferMsg::OutEdge { dst, weight }.to_bytes());
            }
            return;
        }

        if round <= self.k {
            // ---- Slice k: merge + per-node layer forward + propagate ----
            let Some(h_self) = self_emb else {
                let dangling = in_embs.len() as u64 + partials.iter().map(|p| u64::from(p.n)).sum::<u64>();
                self.counters.add("infer.dangling_edge_destinations", dangling);
                return;
            };
            let ModelSlice::Gnn(layer) = &self.slices[round - 1] else {
                // agl-lint: allow(no-panic) — GnnModel::segment() puts exactly one Gnn slice per layer round.
                panic!("slice {round} is not a GNN layer");
            };
            let h_next = if self.gas {
                // ---- GAS merge: the two-level segment fold (see the
                // crate::combine module docs). Raw in-embeddings fold to one
                // partial per producer segment with the exact code the
                // shuffle combiner runs, then locally-folded and received
                // partials merge in ascending segment order — so the result
                // bits never depend on whether, or where, combining
                // happened.
                let Some(kind) = layer.combine_kind() else {
                    // agl-lint: allow(no-panic) — GAS drivers validate combine_kinds() before launching the job.
                    panic!("GAS round {round} reached a non-decomposable layer");
                };
                let mut all = fold_in_embs(kind, self.r_parts, std::mem::take(&mut in_embs));
                all.append(&mut partials);
                let agg = finish(kind, all, h_self.len());
                layer.forward_node_combined(&h_self, &agg)
            } else {
                // Consistent sampling with GraphFlat: canonical candidate
                // order (sorted by source id, with weight/payload tie-breaks
                // so parallel edges order identically regardless of shuffle
                // delivery) + a seed derived from the node id only, so with
                // the same seed/strategy this reducer keeps exactly the
                // neighbor subset GraphFlat kept when building the training
                // data (§3.4's unbiasedness requirement).
                in_embs.sort_by(|a, b| {
                    a.0.cmp(&b.0)
                        .then_with(|| a.1.total_cmp(&b.1))
                        .then_with(|| a.2.iter().map(|f| f.to_bits()).cmp(b.2.iter().map(|f| f.to_bits())))
                });
                let weights: Vec<f32> = in_embs.iter().map(|(_, w, _)| *w).collect();
                let node_id = key_id(key);
                let sample_seed = derive_seed(self.seed, fnv1a(&node_id.to_le_bytes()));
                let kept = self.sampling.select(&weights, sample_seed);
                let neighbor_h: Vec<Vec<f32>> = kept.iter().map(|&i| in_embs[i].2.clone()).collect();
                let kept_w: Vec<f32> = kept.iter().map(|&i| in_embs[i].1).collect();
                let view = NeighborView { self_h: &h_self, neighbor_h: &neighbor_h, weights: &kept_w };
                layer.forward_node(&view)
            };
            self.counters.inc("infer.embeddings_computed");
            if round < self.k {
                emit(key.to_vec(), InferMsg::SelfEmb { h: h_next.clone() }.to_bytes());
                for (dst, weight) in out_edges {
                    emit(
                        dst.to_le_bytes().to_vec(),
                        InferMsg::InEmb { src: key_id(key), weight, h: h_next.clone() }.to_bytes(),
                    );
                    emit(key.to_vec(), InferMsg::OutEdge { dst, weight }.to_bytes());
                }
            } else {
                // "in the Kth round ... only need to output it rather than
                // all of the three information" (§3.4).
                emit(key.to_vec(), InferMsg::Emb { h: h_next }.to_bytes());
            }
            return;
        }

        // ---- Prediction round ----
        let Some(h) = final_emb else { return };
        let ModelSlice::Prediction(head, loss) = &self.slices[self.k] else {
            // agl-lint: allow(no-panic) — GnnModel::segment() always ends with the Prediction slice.
            panic!("last slice is not the prediction model");
        };
        let logits = head.forward_row(&h);
        let probs = loss.probabilities(&agl_tensor::Matrix::from_vec(1, logits.len(), logits)).into_vec();
        self.counters.inc("infer.scores");
        emit(key.to_vec(), InferMsg::Score { probs }.to_bytes());
    }
}

/// The GraphInfer driver.
pub struct GraphInfer {
    cfg: InferConfig,
}

impl GraphInfer {
    pub fn new(cfg: InferConfig) -> Self {
        Self { cfg }
    }

    pub fn config(&self) -> &InferConfig {
        &self.cfg
    }

    /// Run the pipeline but stop after the K-th slice, returning every
    /// node's final-layer **embedding** instead of a prediction — K+1
    /// reduce rounds instead of K+2 (the prediction slice never loads).
    pub fn run_embeddings(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
    ) -> Result<(Vec<NodeEmbedding>, Counters), JobError> {
        let (output, counters) = self.run_rounds(model, nodes, edges, model.n_layers() + 1)?;
        let mut embeddings = Vec::with_capacity(output.len());
        for kv in &output {
            let msg =
                InferMsg::from_bytes(&kv.value).map_err(|e| JobError::Corrupt(format!("embedding record: {e}")))?;
            match msg {
                InferMsg::Emb { h } => {
                    embeddings.push(NodeEmbedding { node: NodeId(key_id(&kv.key)), embedding: h });
                }
                other => return Err(JobError::Corrupt(format!("unexpected output record {other:?}"))),
            }
        }
        embeddings.sort_by_key(|e| e.node);
        Ok((embeddings, counters))
    }

    fn run_rounds(
        &self,
        model: &GnnModel,
        nodes: &NodeTable,
        edges: &EdgeTable,
        rounds: usize,
    ) -> Result<(Vec<agl_mapreduce::KeyValue>, Counters), JobError> {
        let slices = Arc::new(model.segment());
        let k = model.n_layers();
        let _infer_span = self.cfg.engine.obs.span("driver", "graphinfer");
        // With observability on, pipeline counters report into the run's
        // shared registry — the same one the engine writes to.
        let counters = match self.cfg.engine.obs.metrics() {
            Some(m) => Counters::with_registry(m.clone()),
            None => Counters::new(),
        };

        let mut inputs = Vec::with_capacity(nodes.len() + edges.len());
        for (id, feat) in nodes.iter() {
            inputs.push(encode_node_record(id, feat));
        }
        for (row, _) in edges.iter() {
            inputs.push(encode_edge_record(row.src, row.dst, row.weight));
        }

        let reducer = InferReducer {
            slices,
            k,
            sampling: self.cfg.sampling,
            seed: self.cfg.engine.seed,
            gas: false,
            r_parts: self.cfg.engine.reduce_tasks,
            counters: counters.clone(),
        };
        let job = MapReduceJob::new(JobConfig {
            map_tasks: self.cfg.engine.map_tasks,
            reduce_tasks: self.cfg.engine.reduce_tasks,
            reduce_rounds: rounds,
            parallelism: self.cfg.engine.parallelism,
            max_attempts: 4,
            fault_plan: self.cfg.fault_plan.clone(),
            spill: self.cfg.spill.clone(),
            // join + K slice rounds + prediction all speak InferMsg.
            plan: Some(JobPlan::homogeneous(WireSig("infer-key/infer-msg"), rounds)),
            verify_determinism: cfg!(debug_assertions),
            metrics_flush_every: 4,
            obs: self.cfg.engine.obs.clone(),
        });
        let result = job.run(&inputs, &InferMapper, &reducer)?;
        if !self.cfg.engine.obs.is_enabled() {
            // Shared-registry runs already see the engine counters; only
            // detached runs need the merge.
            for (name, v) in result.counters.snapshot() {
                counters.add(&name, v);
            }
        }
        Ok((result.output, counters))
    }

    /// Run inference for every node of the tables with a trained model.
    pub fn run(&self, model: &GnnModel, nodes: &NodeTable, edges: &EdgeTable) -> Result<InferOutput, JobError> {
        // join + K slices + prediction.
        let (output, counters) = self.run_rounds(model, nodes, edges, model.n_layers() + 2)?;
        let mut scores = Vec::with_capacity(output.len());
        for kv in &output {
            let msg = InferMsg::from_bytes(&kv.value).map_err(|e| JobError::Corrupt(format!("score record: {e}")))?;
            match msg {
                InferMsg::Score { probs } => scores.push(NodeScore { node: NodeId(key_id(&kv.key)), probs }),
                other => return Err(JobError::Corrupt(format!("unexpected output record {other:?}"))),
            }
        }
        scores.sort_by_key(|s| s.node);
        Ok(InferOutput { scores, counters })
    }
}
