//! End-to-end inference correctness: for every architecture, the three
//! inference paths must agree —
//!
//! 1. the **full-graph in-memory forward** (baseline engine, ground truth),
//! 2. **GraphInfer** (K+1-round MapReduce with model slices),
//! 3. the **original inference module** (per-node GraphFeature forward).
//!
//! Agreement of (1) and (2) validates hierarchical model segmentation + the
//! per-node layer forwards; agreement of (1) and (3) validates Theorem 1
//! end-to-end (a k-hop neighborhood suffices to reproduce the full-graph
//! embedding of its target).

use agl_baseline::FullGraphEngine;
use agl_flat::FlatConfig;
use agl_graph::{EdgeTable, Graph, NodeId, NodeTable};
use agl_infer::{GraphInfer, InferConfig, OriginalInference};
use agl_mapreduce::{FaultPlan, TaskId};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, Matrix};

fn random_tables(n: u64, avg_deg: usize, f_dim: usize, seed: u64) -> (NodeTable, EdgeTable) {
    let mut rng = seeded_rng(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats =
        Matrix::from_vec(n as usize, f_dim, (0..n as usize * f_dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
    let nodes = NodeTable::new(ids, feats, None);
    let mut pairs = Vec::new();
    for src in 0..n {
        for _ in 0..rng.gen_range(0..=2 * avg_deg) {
            let dst = rng.gen_range(0..n);
            if dst != src && !pairs.contains(&(src, dst)) {
                pairs.push((src, dst));
            }
        }
    }
    (nodes, EdgeTable::from_pairs(pairs))
}

fn trained_like(kind: ModelKind, in_dim: usize, n_layers: usize) -> GnnModel {
    // Init + a deterministic perturbation stands in for training; inference
    // correctness is architecture-level, not weight-level.
    let mut m = GnnModel::new(ModelConfig::new(kind, in_dim, 6, 2, n_layers, Loss::SoftmaxCrossEntropy).with_seed(99));
    let v: Vec<f32> = m.param_vector().iter().enumerate().map(|(i, x)| x + ((i % 13) as f32) * 0.01).collect();
    m.load_param_vector(&v);
    m
}

#[test]
fn graphinfer_matches_full_graph_forward() {
    for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat { heads: 2 }, ModelKind::Gin, ModelKind::GeniePath] {
        for n_layers in [1usize, 2, 3] {
            let (nodes, edges) = random_tables(30, 3, 4, 5);
            let graph = Graph::from_tables(&nodes, &edges);
            let model = trained_like(kind, 4, n_layers);
            let truth = model.config().loss.probabilities(&FullGraphEngine::default().infer_all(&model, &graph));
            let out = GraphInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
            assert_eq!(out.scores.len(), 30, "{kind:?} K={n_layers}");
            for s in &out.scores {
                let local = graph.local(s.node).unwrap() as usize;
                for (a, b) in s.probs.iter().zip(truth.row(local)) {
                    assert!((a - b).abs() < 1e-4, "{kind:?} K={n_layers} node {}: {a} vs {b}", s.node);
                }
            }
            assert_eq!(
                out.counters.get("infer.embeddings_computed"),
                (30 * n_layers) as u64,
                "{kind:?} K={n_layers}: each node's embedding computed exactly once per layer"
            );
        }
    }
}

#[test]
fn original_inference_matches_graphinfer() {
    let (nodes, edges) = random_tables(25, 3, 4, 11);
    let model = trained_like(ModelKind::Gcn, 4, 2);
    let fast = GraphInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
    // Bounded batches, as any at-scale deployment must use: repetition
    // shows up *across* batches (within a batch the merge deduplicates).
    let mut original = OriginalInference::new(FlatConfig { k_hops: 2, ..FlatConfig::default() });
    original.batch_size = 4;
    let orig = original.run(&model, &nodes, &edges).unwrap();
    assert_eq!(fast.scores.len(), orig.scores.len());
    for (a, b) in fast.scores.iter().zip(&orig.scores) {
        assert_eq!(a.node, b.node);
        for (x, y) in a.probs.iter().zip(&b.probs) {
            assert!((x - y).abs() < 1e-4, "node {}: {x} vs {y}", a.node);
        }
    }
    // The efficiency claim: overlapping neighborhoods make the original
    // module recompute embeddings; GraphInfer computes each exactly once.
    assert!(
        orig.embeddings_computed > fast.counters.get("infer.embeddings_computed"),
        "original {} vs graphinfer {}",
        orig.embeddings_computed,
        fast.counters.get("infer.embeddings_computed")
    );
}

#[test]
fn embedding_mode_matches_full_graph_embeddings() {
    // GraphInfer as an embedding producer: stop after slice K, and the
    // per-node embeddings must equal the full-graph forward's final-layer
    // embeddings.
    let (nodes, edges) = random_tables(20, 3, 4, 29);
    let graph = Graph::from_tables(&nodes, &edges);
    let model = trained_like(ModelKind::Gat { heads: 2 }, 4, 2);
    let (embeddings, counters) =
        GraphInfer::new(InferConfig::default()).run_embeddings(&model, &nodes, &edges).unwrap();
    assert_eq!(embeddings.len(), 20);
    assert_eq!(counters.get("infer.scores"), 0, "prediction slice never ran");

    let engine = FullGraphEngine::default();
    let batch = engine.prepare(&model, &graph);
    let targets: Vec<usize> = (0..graph.n_nodes()).collect();
    let pass = model.forward(
        &batch.adjs,
        &batch.features,
        &targets,
        false,
        &agl_tensor::ExecCtx::sequential(),
        &mut seeded_rng(0),
    );
    for e in &embeddings {
        let local = graph.local(e.node).unwrap() as usize;
        for (a, b) in e.embedding.iter().zip(pass.target_embeddings.row(local)) {
            assert!((a - b).abs() < 1e-4, "node {}: {a} vs {b}", e.node);
        }
    }
}

#[test]
fn inference_is_fault_tolerant() {
    let (nodes, edges) = random_tables(20, 2, 3, 13);
    let model = trained_like(ModelKind::Sage, 3, 2);
    let clean = GraphInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
    let cfg = InferConfig {
        fault_plan: FaultPlan::none()
            .fail_first(TaskId::map(2), 1)
            .fail_first(TaskId::reduce(1, 0), 2)
            .fail_first(TaskId::reduce(3, 2), 1),
        ..InferConfig::default()
    };
    let faulty = GraphInfer::new(cfg).run(&model, &nodes, &edges).unwrap();
    assert_eq!(clean.scores, faulty.scores);
}

#[test]
fn sampled_inference_is_deterministic_and_bounded() {
    use agl_flat::SamplingStrategy;
    let (nodes, edges) = random_tables(40, 8, 3, 17);
    let model = trained_like(ModelKind::Gcn, 3, 2);
    let cfg = || InferConfig { sampling: SamplingStrategy::Uniform { max_degree: 3 }, ..InferConfig::default() };
    let a = GraphInfer::new(cfg()).run(&model, &nodes, &edges).unwrap();
    let b = GraphInfer::new(cfg()).run(&model, &nodes, &edges).unwrap();
    assert_eq!(a.scores, b.scores, "same seed, same sampled scores");
    let full = GraphInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
    let differs = a.scores.iter().zip(&full.scores).any(|(x, y)| x.probs != y.probs);
    assert!(differs, "sampling must actually change some high-degree node's score");
}

#[test]
fn sampled_graphinfer_matches_sampled_original_inference() {
    // §3.4's unbiasedness claim, end to end: with the same sampling
    // strategy and seed, GraphInfer keeps exactly the neighbor subsets
    // GraphFlat kept — so per-GraphFeature inference over sampled
    // neighborhoods and sliced MapReduce inference agree score-for-score.
    use agl_flat::SamplingStrategy;
    let (nodes, edges) = random_tables(35, 8, 3, 23);
    let model = trained_like(ModelKind::Sage, 3, 2);
    let sampling = SamplingStrategy::Uniform { max_degree: 3 };
    let fast = GraphInfer::new(InferConfig { sampling, ..InferConfig::default() }.with_seed(42))
        .run(&model, &nodes, &edges)
        .unwrap();
    let mut original =
        OriginalInference::new(FlatConfig { k_hops: 2, sampling, ..FlatConfig::default() }.with_seed(42));
    original.batch_size = 1; // strictly per-GraphFeature, no cross-target merging
    let orig = original.run(&model, &nodes, &edges).unwrap();
    assert_eq!(fast.scores.len(), orig.scores.len());
    for (a, b) in fast.scores.iter().zip(&orig.scores) {
        assert_eq!(a.node, b.node);
        for (x, y) in a.probs.iter().zip(&b.probs) {
            assert!((x - y).abs() < 1e-4, "node {}: {x} vs {y}", a.node);
        }
    }
}

#[test]
fn isolated_nodes_still_get_scores() {
    let ids: Vec<NodeId> = (0..4).map(NodeId).collect();
    let nodes = NodeTable::new(ids, Matrix::from_vec(4, 2, vec![0.5; 8]), None);
    let edges = EdgeTable::from_pairs([(0, 1)]);
    let model = trained_like(ModelKind::Sage, 2, 2);
    let out = GraphInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
    assert_eq!(out.scores.len(), 4, "nodes 2 and 3 have no edges at all");
    // Probabilities are valid simplex rows.
    for s in &out.scores {
        let sum: f32 = s.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }
}
