//! Canonical in-edge ordering regression (the original-inference baseline
//! and the streaming GAS path must fold neighbors in the same order — the
//! sorting bug surfaced as batch-size-dependent sums), plus the 2-worker
//! distributed byte-identity suite for streaming inference.

use agl_flat::FlatConfig;
use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_infer::{infer_combiner_from_spec, infer_reducer_from_spec, InferConfig, OriginalInference, StreamInfer};
use agl_mapreduce::{serve_shuffle_combining, DistOptions, Endpoint, Listener};
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, Matrix};

fn random_tables(n: u64, avg_deg: usize, f_dim: usize, seed: u64) -> (NodeTable, EdgeTable) {
    let mut rng = seeded_rng(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats =
        Matrix::from_vec(n as usize, f_dim, (0..n as usize * f_dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
    let nodes = NodeTable::new(ids, feats, None);
    let mut pairs = Vec::new();
    for src in 0..n {
        for _ in 0..rng.gen_range(0..=2 * avg_deg) {
            let dst = rng.gen_range(0..n);
            if dst != src && !pairs.contains(&(src, dst)) {
                pairs.push((src, dst));
            }
        }
        // A hub destination, so batches overlap heavily on node 0.
        if src != 0 && !pairs.contains(&(src, 0)) {
            pairs.push((src, 0));
        }
    }
    (nodes, EdgeTable::from_pairs(pairs))
}

fn trained_like(kind: ModelKind, in_dim: usize, n_layers: usize) -> GnnModel {
    let mut m = GnnModel::new(ModelConfig::new(kind, in_dim, 6, 2, n_layers, Loss::SoftmaxCrossEntropy).with_seed(99));
    let v: Vec<f32> = m.param_vector().iter().enumerate().map(|(i, x)| x + ((i % 13) as f32) * 0.01).collect();
    m.load_param_vector(&v);
    m
}

/// The ordering regression: with canonical (ascending global source-id)
/// row folds, the original module's scores are **bit-identical** across
/// batch sizes — before the fix, local-index row order made the same
/// node's sum depend on which batch it merged into — and both pin against
/// the streaming path as the shared golden to float tolerance (the two
/// engines still differ in parenthesisation, not in order).
#[test]
fn original_inference_is_batch_invariant_and_pins_to_the_streaming_golden() {
    let (nodes, edges) = random_tables(30, 3, 4, 7);
    let model = trained_like(ModelKind::Gcn, 4, 2);
    let run_original = |batch_size: usize| {
        let mut o = OriginalInference::new(FlatConfig { k_hops: 2, ..FlatConfig::default() });
        o.batch_size = batch_size;
        o.run(&model, &nodes, &edges).unwrap()
    };
    let small = run_original(3);
    let medium = run_original(7);
    let whole = run_original(64);
    // NodeScore is PartialEq over f32 — equality is bit-identity.
    assert_eq!(small.scores, medium.scores, "batch size must not move a bit");
    assert_eq!(small.scores, whole.scores, "batch size must not move a bit");

    let golden = StreamInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
    assert_eq!(golden.scores.len(), whole.scores.len());
    for (a, b) in golden.scores.iter().zip(&whole.scores) {
        assert_eq!(a.node, b.node);
        for (x, y) in a.probs.iter().zip(&b.probs) {
            assert!((x - y).abs() < 1e-4, "node {}: streaming {x} vs original {y}", a.node);
        }
    }
}

/// Streaming inference across two real shuffle-worker servers (the same
/// `serve_shuffle_combining` loop `agl-cli dist-worker --role
/// infer-shuffle` runs) is **byte-identical** to the single-process runs,
/// combiner included, and the worker-side combiner counters ride back.
#[test]
fn two_worker_dist_run_is_byte_identical_to_the_engine() {
    let dir = std::env::temp_dir().join(format!("agl-infer-dist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (nodes, edges) = random_tables(40, 4, 4, 13);
    let model = trained_like(ModelKind::Gcn, 4, 2);
    let si = StreamInfer::new(InferConfig::default()).with_degree_threshold(Some(2));
    let materialized = si.run_materialized(&model, &nodes, &edges).unwrap();
    let streamed = si.run(&model, &nodes, &edges).unwrap();

    let eps: Vec<Endpoint> = (0..2).map(|i| Endpoint::Unix(dir.join(format!("w{i}.sock")))).collect();
    let listeners: Vec<Listener> = eps.iter().map(|e| Listener::bind(e).unwrap()).collect();
    let opts = DistOptions::default();
    let dist = std::thread::scope(|s| {
        for l in &listeners {
            s.spawn(move || {
                serve_shuffle_combining(l, 5_000_000_000, &infer_reducer_from_spec, &infer_combiner_from_spec).unwrap()
            });
        }
        si.run_distributed(&model, &nodes, &edges, &eps, &opts).unwrap()
    });
    assert_eq!(dist.scores, materialized.scores, "dist vs materialized: bit-identical");
    assert_eq!(dist.scores, streamed.scores, "dist vs streamed: bit-identical");
    assert!(
        dist.counters.get("combine.records_in") > dist.counters.get("combine.records_out"),
        "worker-side combining happened and its counters rode back: {:?}",
        dist.counters.snapshot()
    );
    assert_eq!(dist.counters.get("infer.embeddings_computed"), (40 * 2) as u64, "exactly-once across worker processes");
    drop(listeners);
    std::fs::remove_dir_all(&dir).ok();
}
