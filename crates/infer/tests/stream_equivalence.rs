//! Streaming GAS inference equivalence: the streamed, materialized,
//! combiner-on and combiner-off paths must be **bit-identical** to each
//! other (they all compute the same two-level segment fold — see the
//! `combine` module docs), and must agree with classic GraphInfer to
//! floating-point tolerance (the classic path folds neighbors in global
//! source order, the GAS path in segment-major order).

use agl_graph::{EdgeTable, NodeId, NodeTable};
use agl_infer::{GraphInfer, InferConfig, StreamInfer};
use agl_mapreduce::SpillMode;
use agl_nn::{GnnModel, Loss, ModelConfig, ModelKind};
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, Matrix};

fn random_tables(n: u64, avg_deg: usize, f_dim: usize, seed: u64) -> (NodeTable, EdgeTable) {
    let mut rng = seeded_rng(seed);
    let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
    let feats =
        Matrix::from_vec(n as usize, f_dim, (0..n as usize * f_dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
    let nodes = NodeTable::new(ids, feats, None);
    let mut pairs = Vec::new();
    for src in 0..n {
        for _ in 0..rng.gen_range(0..=2 * avg_deg) {
            let dst = rng.gen_range(0..n);
            if dst != src && !pairs.contains(&(src, dst)) {
                pairs.push((src, dst));
            }
        }
        // A hub: every node also feeds node 0, so the combiner has a
        // high-degree destination to fold.
        if src != 0 && !pairs.contains(&(src, 0)) {
            pairs.push((src, 0));
        }
    }
    (nodes, EdgeTable::from_pairs(pairs))
}

fn trained_like(kind: ModelKind, in_dim: usize, n_layers: usize) -> GnnModel {
    let mut m = GnnModel::new(ModelConfig::new(kind, in_dim, 6, 2, n_layers, Loss::SoftmaxCrossEntropy).with_seed(99));
    let v: Vec<f32> = m.param_vector().iter().enumerate().map(|(i, x)| x + ((i % 13) as f32) * 0.01).collect();
    m.load_param_vector(&v);
    m
}

#[test]
fn streamed_matches_materialized_and_combining_is_exact() {
    for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gin] {
        for n_layers in [1usize, 2] {
            let (nodes, edges) = random_tables(30, 3, 4, 5);
            let model = trained_like(kind, 4, n_layers);
            let si = || StreamInfer::new(InferConfig::default());
            assert!(si().gas_eligible(&model), "{kind:?} decomposes");
            let streamed = si().run(&model, &nodes, &edges).unwrap();
            let materialized = si().run_materialized(&model, &nodes, &edges).unwrap();
            let uncombined = si().with_degree_threshold(None).run(&model, &nodes, &edges).unwrap();
            let eager = si().with_degree_threshold(Some(1)).run(&model, &nodes, &edges).unwrap();
            // NodeScore is PartialEq over f32 — equality here is bit-identity.
            assert_eq!(streamed.scores, materialized.scores, "{kind:?} K={n_layers}: streamed vs materialized");
            assert_eq!(streamed.scores, uncombined.scores, "{kind:?} K={n_layers}: combiner must not change bits");
            assert_eq!(streamed.scores, eager.scores, "{kind:?} K={n_layers}: threshold must not change bits");
            assert_eq!(
                streamed.counters.get("infer.embeddings_computed"),
                (30 * n_layers) as u64,
                "{kind:?} K={n_layers}: exactly once"
            );
            assert!(
                streamed.counters.get("stream.peak_resident_bytes") > 0,
                "{kind:?}: streamed run gauges its memory bound"
            );
        }
    }
}

#[test]
fn gas_matches_classic_graphinfer_within_tolerance() {
    for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gin] {
        let (nodes, edges) = random_tables(25, 3, 4, 11);
        let model = trained_like(kind, 4, 2);
        let classic = GraphInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
        let gas = StreamInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
        assert_eq!(classic.scores.len(), gas.scores.len());
        for (a, b) in classic.scores.iter().zip(&gas.scores) {
            assert_eq!(a.node, b.node);
            for (x, y) in a.probs.iter().zip(&b.probs) {
                assert!((x - y).abs() < 1e-4, "{kind:?} node {}: {x} vs {y}", a.node);
            }
        }
    }
}

#[test]
fn combiner_shrinks_the_shuffle() {
    let (nodes, edges) = random_tables(60, 4, 4, 17);
    let model = trained_like(ModelKind::Gcn, 4, 2);
    let combined =
        StreamInfer::new(InferConfig::default()).with_degree_threshold(Some(2)).run(&model, &nodes, &edges).unwrap();
    let records_in = combined.counters.get("combine.records_in");
    let records_out = combined.counters.get("combine.records_out");
    assert!(records_in > records_out, "combiner folded messages: {records_in} in, {records_out} out");
    assert!(combined.counters.get("combine.bytes_saved") > 0, "partials are smaller than the raw messages");
    let plain =
        StreamInfer::new(InferConfig::default()).with_degree_threshold(None).run(&model, &nodes, &edges).unwrap();
    assert_eq!(combined.scores, plain.scores, "savings must be free: identical bits");
    assert_eq!(plain.counters.get("combine.records_in"), 0, "no combiner installed");
}

#[test]
fn attention_models_fall_back_to_the_classic_fold() {
    let (nodes, edges) = random_tables(20, 3, 4, 29);
    let model = trained_like(ModelKind::Gat { heads: 2 }, 4, 2);
    let si = StreamInfer::new(InferConfig::default());
    assert!(!si.gas_eligible(&model), "attention does not decompose");
    let streamed = si.run(&model, &nodes, &edges).unwrap();
    // Non-GAS streaming runs the exact classic reducer sequentially, so it
    // is bit-identical to the engine-driven GraphInfer.
    let classic = GraphInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
    assert_eq!(streamed.scores, classic.scores);
    assert_eq!(streamed.counters.get("combine.records_in"), 0, "no combiner for attention models");
}

#[test]
fn sampling_disables_gas_but_not_streaming() {
    use agl_flat::SamplingStrategy;
    let (nodes, edges) = random_tables(40, 8, 3, 23);
    let model = trained_like(ModelKind::Gcn, 3, 2);
    let cfg = || InferConfig { sampling: SamplingStrategy::Uniform { max_degree: 3 }, ..InferConfig::default() };
    let si = StreamInfer::new(cfg());
    assert!(!si.gas_eligible(&model), "partial aggregation must fold every in-edge");
    let streamed = si.run(&model, &nodes, &edges).unwrap();
    let classic = GraphInfer::new(cfg()).run(&model, &nodes, &edges).unwrap();
    assert_eq!(streamed.scores, classic.scores, "sampled streaming equals sampled classic, bit for bit");
}

#[test]
fn disk_spill_streaming_is_identical_and_cleans_up() {
    let dir = std::env::temp_dir().join(format!("agl-infer-stream-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (nodes, edges) = random_tables(30, 3, 4, 41);
    let model = trained_like(ModelKind::Sage, 4, 2);
    let in_mem = StreamInfer::new(InferConfig::default()).run(&model, &nodes, &edges).unwrap();
    let spilled = StreamInfer::new(InferConfig { spill: SpillMode::Disk(dir.clone()), ..InferConfig::default() })
        .run(&model, &nodes, &edges)
        .unwrap();
    assert_eq!(in_mem.scores, spilled.scores, "spill mode must not change bits");
    let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(leftovers.is_empty(), "all pending partitions consumed: {leftovers:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
