//! UUG-shaped industrial social graph: power-law (hub-heavy) degree
//! distribution, binary labels, dense features.
//!
//! The paper's User-User Graph has 6.23×10⁹ nodes, 3.38×10¹¹ edges and
//! 656-dimensional features — far beyond one machine, which is the entire
//! premise of AGL. The generator reproduces the graph's *character* (degree
//! skew that exercises re-indexing/sampling, homophilous binary classes, a
//! limited labeled subset) at a configurable scale; `agl-cluster-sim`
//! extrapolates measured per-record costs to the paper's scale.

use crate::popularity::PowerLaw;
use crate::{Dataset, Split};
use agl_graph::{EdgeTable, Graph, NodeId, NodeTable};
use agl_tensor::rng::Rng;
use agl_tensor::rng::SliceRandom;
use agl_tensor::{seeded_rng, Matrix};

/// Paper-scale reference constants (simulation targets, never generated).
pub const UUG_PAPER_NODES: f64 = 6.23e9;
pub const UUG_PAPER_EDGES: f64 = 3.38e11;
pub const UUG_PAPER_FEATURES: usize = 656;
pub const UUG_PAPER_TRAIN: f64 = 1.2e8;
pub const UUG_PAPER_VAL: f64 = 5e6;
pub const UUG_PAPER_TEST: f64 = 1.5e7;

/// Generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct UugConfig {
    pub seed: u64,
    pub n_nodes: usize,
    /// Mean directed out-degree (the paper's graph has ≈54).
    pub avg_degree: f64,
    /// Power-law exponent of the degree distribution (γ ≈ 2.1 is typical
    /// of social graphs).
    pub gamma: f64,
    pub feature_dim: usize,
    /// Strength of the class signal planted in the leading feature dims
    /// (1.0 = trivially separable, 0.2 = needs neighborhood aggregation).
    pub signal: f32,
    /// Fractions of nodes labeled into train/val/test (the rest unlabeled —
    /// "labeled data are very limited in practice", §3.1).
    pub train_frac: f64,
    pub val_frac: f64,
    pub test_frac: f64,
}

impl Default for UugConfig {
    fn default() -> Self {
        Self {
            seed: 23,
            n_nodes: 10_000,
            avg_degree: 8.0,
            gamma: 2.1,
            feature_dim: 32,
            signal: 0.8,
            // Paper ratios: 1.2e8/6.23e9 ≈ 1.9%, 5e6 ≈ 0.08%, 1.5e7 ≈ 0.24%.
            train_frac: 0.02,
            val_frac: 0.004,
            test_frac: 0.008,
        }
    }
}

/// Generate a UUG-like dataset (Chung–Lu style power-law digraph with two
/// homophilous classes).
pub fn uug_like(cfg: UugConfig) -> Dataset {
    assert!(cfg.n_nodes >= 16);
    let mut rng = seeded_rng(cfg.seed);
    let n = cfg.n_nodes;

    // Chung–Lu popularity: shared with the serving load generator, which
    // replays the same hub-heavy skew as request traffic.
    let popularity = PowerLaw::new(n, cfg.gamma);
    let sample_node = |rng: &mut agl_tensor::rng::SmallRng| -> usize { popularity.sample(rng) };

    // Two communities; class = community; edges 80% intra-community.
    let class: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    let target_edges = (n as f64 * cfg.avg_degree) as usize;
    let mut pairs = std::collections::HashSet::with_capacity(target_edges);
    let mut guard = 0usize;
    while pairs.len() < target_edges && guard < target_edges * 30 {
        guard += 1;
        let mut a = sample_node(&mut rng);
        let mut b = sample_node(&mut rng);
        if rng.gen::<f32>() < 0.8 && class[a] != class[b] {
            // Nudge into the same community, preserving the degree skew.
            if b + 1 < n {
                b += 1;
            } else if a + 1 < n {
                a += 1;
            }
        }
        if a != b {
            pairs.insert((a as u64, b as u64));
        }
    }

    // Features: class-signal direction ± noise in a few leading dims. The
    // noise grows as the signal shrinks, so low-signal graphs genuinely
    // need neighborhood aggregation to classify.
    let noise_scale = 1.4 - cfg.signal;
    let mut features = Matrix::zeros(n, cfg.feature_dim);
    for i in 0..n {
        let sign = if class[i] == 0 { 1.0 } else { -1.0 };
        for d in 0..cfg.feature_dim {
            let noise = rng.gen_range(-1.0..1.0f32);
            features[(i, d)] = if d < 4 { sign * cfg.signal + noise_scale * noise } else { noise };
        }
    }
    let mut labels = Matrix::zeros(n, 1);
    for i in 0..n {
        labels[(i, 0)] = class[i] as f32;
    }

    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let nodes = NodeTable::new(ids.clone(), features, Some(labels));
    let mut sorted: Vec<(u64, u64)> = pairs.into_iter().collect();
    sorted.sort_unstable();
    let graph = Graph::from_tables(&nodes, &EdgeTable::from_pairs(sorted));

    // Labeled splits (disjoint, small fractions like production).
    let mut shuffled = ids;
    shuffled.shuffle(&mut rng);
    let n_train = ((n as f64) * cfg.train_frac).round().max(8.0) as usize;
    let n_val = ((n as f64) * cfg.val_frac).round().max(4.0) as usize;
    let n_test = ((n as f64) * cfg.test_frac).round().max(4.0) as usize;
    let train = shuffled[..n_train].to_vec();
    let val = shuffled[n_train..n_train + n_val].to_vec();
    let test = shuffled[n_train + n_val..n_train + n_val + n_test].to_vec();

    Dataset {
        name: "UUG-like".into(),
        graphs: vec![graph],
        label_dim: 1,
        multilabel: false,
        train: Split::Nodes(train),
        val: Split::Nodes(val),
        test: Split::Nodes(test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_graph::stats::{hub_nodes, in_degree_stats};

    fn small() -> Dataset {
        uug_like(UugConfig { n_nodes: 2000, avg_degree: 6.0, ..UugConfig::default() })
    }

    #[test]
    fn basic_shape() {
        let d = small();
        assert_eq!(d.n_nodes(), 2000);
        assert!(d.n_edges() > 8_000, "edges {}", d.n_edges());
        assert_eq!(d.label_dim, 1);
        assert!(d.train.len() >= 8 && d.val.len() >= 4 && d.test.len() >= 4);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let d = small();
        let s = in_degree_stats(d.graph()).unwrap();
        // Power law: max degree far above the median.
        assert!(s.max as f64 > 10.0 * (s.p50.max(1) as f64), "max {} p50 {}", s.max, s.p50);
        assert!(!hub_nodes(d.graph(), s.p99.max(10)).is_empty(), "hubs exist");
    }

    #[test]
    fn classes_are_homophilous_and_balanced() {
        let d = small();
        let g = d.graph();
        let labels = g.labels().unwrap();
        let pos = labels.as_slice().iter().filter(|&&x| x > 0.5).count();
        let frac = pos as f64 / g.n_nodes() as f64;
        assert!((0.4..0.6).contains(&frac), "class balance {frac}");
        let mut intra = 0usize;
        let mut total = 0usize;
        for (dst, src, _) in g.in_adj().iter_entries() {
            total += 1;
            if labels[(dst as usize, 0)] == labels[(src as usize, 0)] {
                intra += 1;
            }
        }
        assert!(intra as f64 / total as f64 > 0.6, "homophily {}", intra as f64 / total as f64);
    }

    #[test]
    fn splits_disjoint_and_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.train.node_ids(), b.train.node_ids());
        let t: std::collections::HashSet<_> = a.train.node_ids().iter().collect();
        let v: std::collections::HashSet<_> = a.val.node_ids().iter().collect();
        assert!(t.is_disjoint(&v));
    }

    #[test]
    fn no_self_loops() {
        let d = small();
        for (dst, src, _) in d.graph().in_adj().iter_entries() {
            assert_ne!(dst, src);
        }
    }
}
