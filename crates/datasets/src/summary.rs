//! Table-2 style dataset summaries.

use std::fmt;

/// One row of the dataset summary table (paper Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSummary {
    pub name: String,
    pub n_nodes: usize,
    pub n_edges: usize,
    pub n_graphs: usize,
    pub feature_dim: usize,
    pub label_dim: usize,
    pub multilabel: bool,
    pub train: usize,
    pub val: usize,
    pub test: usize,
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let classes =
            if self.multilabel { format!("{}(multilabel)", self.label_dim) } else { self.label_dim.to_string() };
        let nodes = if self.n_graphs > 1 {
            format!("{} ({} graphs)", self.n_nodes, self.n_graphs)
        } else {
            self.n_nodes.to_string()
        };
        write!(
            f,
            "{:<10} | nodes {:>14} | edges {:>10} | feat {:>5} | classes {:>15} | train {:>7} | val {:>6} | test {:>6}",
            self.name, nodes, self.n_edges, self.feature_dim, classes, self.train, self.val, self.test
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_all_fields() {
        let s = DatasetSummary {
            name: "X".into(),
            n_nodes: 10,
            n_edges: 20,
            n_graphs: 2,
            feature_dim: 5,
            label_dim: 3,
            multilabel: true,
            train: 4,
            val: 2,
            test: 2,
        };
        let line = s.to_string();
        assert!(line.contains("10 (2 graphs)"));
        assert!(line.contains("3(multilabel)"));
        assert!(line.contains("train"));
    }
}
