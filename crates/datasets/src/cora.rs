//! Cora-shaped citation network: 2708 nodes, 5429 undirected citations,
//! 1433-dimensional bag-of-words features, 7 classes, 140/500/1000 split
//! (paper Table 2).

use crate::{Dataset, Split};
use agl_graph::{EdgeTable, Graph, NodeId, NodeTable};
use agl_tensor::rng::Rng;
use agl_tensor::rng::SliceRandom;
use agl_tensor::{seeded_rng, Matrix};

pub const CORA_NODES: usize = 2708;
pub const CORA_EDGES: usize = 5429;
pub const CORA_FEATURES: usize = 1433;
pub const CORA_CLASSES: usize = 7;

/// Generate a Cora-like dataset. Deterministic in `seed`.
///
/// Signal: each class owns a block of "topic words"; a node activates words
/// mostly from its class block (bag-of-words homophily), and citations are
/// predominantly intra-class — the two properties GCN-style models exploit
/// on the real Cora.
pub fn cora_like(seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let n = CORA_NODES;
    let classes: Vec<usize> = (0..n).map(|i| i % CORA_CLASSES).collect();

    // Features: ~20 active words per node, 75% from the class's topic block.
    let words_per_class = CORA_FEATURES / CORA_CLASSES; // 204
    let mut features = Matrix::zeros(n, CORA_FEATURES);
    for i in 0..n {
        let block = classes[i] * words_per_class;
        for _ in 0..20 {
            let w = if rng.gen::<f32>() < 0.75 {
                block + rng.gen_range(0..words_per_class)
            } else {
                rng.gen_range(0..CORA_FEATURES)
            };
            features[(i, w)] = 1.0;
        }
    }

    let mut labels = Matrix::zeros(n, CORA_CLASSES);
    for i in 0..n {
        labels[(i, classes[i])] = 1.0;
    }

    // Citations: 5429 undirected edges, ~81% intra-class homophily.
    let mut pairs = std::collections::HashSet::with_capacity(CORA_EDGES);
    while pairs.len() < CORA_EDGES {
        let a = rng.gen_range(0..n);
        let b = if rng.gen::<f32>() < 0.81 {
            // Same-class partner.
            let mut b = rng.gen_range(0..n / CORA_CLASSES) * CORA_CLASSES + classes[a];
            if b >= n {
                b -= CORA_CLASSES;
            }
            b
        } else {
            rng.gen_range(0..n)
        };
        if a != b {
            let (lo, hi) = (a.min(b), a.max(b));
            pairs.insert((lo as u64, hi as u64));
        }
    }

    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    let nodes = NodeTable::new(ids.clone(), features, Some(labels));
    let mut sorted: Vec<(u64, u64)> = pairs.into_iter().collect();
    sorted.sort_unstable();
    let edges = EdgeTable::from_undirected_pairs(sorted);
    let graph = Graph::from_tables(&nodes, &edges);

    // Split: 20 per class train (140), then 500 val, 1000 test.
    let mut train = Vec::with_capacity(140);
    for c in 0..CORA_CLASSES {
        let mut members: Vec<NodeId> = (0..n).filter(|&i| classes[i] == c).map(|i| ids[i]).collect();
        members.shuffle(&mut rng);
        train.extend(members.into_iter().take(20));
    }
    let train_set: std::collections::HashSet<NodeId> = train.iter().copied().collect();
    let mut rest: Vec<NodeId> = ids.iter().copied().filter(|id| !train_set.contains(id)).collect();
    rest.shuffle(&mut rng);
    let val = rest[..500].to_vec();
    let test = rest[500..1500].to_vec();

    Dataset {
        name: "Cora-like".into(),
        graphs: vec![graph],
        label_dim: CORA_CLASSES,
        multilabel: false,
        train: Split::Nodes(train),
        val: Split::Nodes(val),
        test: Split::Nodes(test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table_2() {
        let d = cora_like(1);
        assert_eq!(d.n_nodes(), 2708);
        assert_eq!(d.n_edges(), 2 * 5429, "undirected -> two directed edges");
        assert_eq!(d.feature_dim(), 1433);
        assert_eq!(d.label_dim, 7);
        assert_eq!((d.train.len(), d.val.len(), d.test.len()), (140, 500, 1000));
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = cora_like(3);
        let b = cora_like(3);
        assert_eq!(a.graph().features(), b.graph().features());
        assert_eq!(a.train.node_ids(), b.train.node_ids());
        let c = cora_like(4);
        assert_ne!(a.graph().features(), c.graph().features());
    }

    #[test]
    fn splits_are_disjoint() {
        let d = cora_like(5);
        let t: std::collections::HashSet<_> = d.train.node_ids().iter().collect();
        let v: std::collections::HashSet<_> = d.val.node_ids().iter().collect();
        let s: std::collections::HashSet<_> = d.test.node_ids().iter().collect();
        assert!(t.is_disjoint(&v) && t.is_disjoint(&s) && v.is_disjoint(&s));
    }

    #[test]
    fn train_split_is_class_balanced() {
        let d = cora_like(6);
        let g = d.graph();
        let labels = g.labels().unwrap();
        let mut per_class = [0usize; 7];
        for id in d.train.node_ids() {
            let local = g.local(*id).unwrap() as usize;
            let c = labels.row(local).iter().position(|&x| x > 0.0).unwrap();
            per_class[c] += 1;
        }
        assert_eq!(per_class, [20; 7]);
    }

    #[test]
    fn homophily_is_planted() {
        let d = cora_like(7);
        let g = d.graph();
        let labels = g.labels().unwrap();
        let class_of = |v: u32| labels.row(v as usize).iter().position(|&x| x > 0.0).unwrap();
        let mut intra = 0usize;
        let mut total = 0usize;
        for (dst, src, _) in g.in_adj().iter_entries() {
            total += 1;
            if class_of(dst) == class_of(src) {
                intra += 1;
            }
        }
        let ratio = intra as f64 / total as f64;
        assert!(ratio > 0.7, "homophily ratio {ratio}");
    }
}
