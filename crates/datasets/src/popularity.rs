//! Power-law popularity sampling — the heavy-tailed skew shared by the
//! UUG-like generator (degree distribution) and the serving load generator
//! (request popularity).
//!
//! Industrial request streams follow the same shape as the graphs they
//! read: a few hub users absorb most of the traffic. Factoring the
//! Chung–Lu weight machinery out of `uug.rs` lets `agl-serve`'s load
//! generator draw node popularity from the identical distribution the
//! graph was grown with, seeded and deterministic.

use agl_tensor::rng::{Rng, SmallRng};

/// A discrete power-law distribution over `0..n`: item `i` has weight
/// `(i+1)^(-1/(γ-1))`, so index 0 is the hottest item (the biggest hub).
///
/// Sampling is an O(log n) binary search over the cumulative weights; the
/// float evaluation order is fixed (sequential accumulation) so a given
/// `(n, gamma)` pair always yields bit-identical draws for a given rng
/// stream.
#[derive(Debug, Clone)]
pub struct PowerLaw {
    cumulative: Vec<f64>,
    w_sum: f64,
}

impl PowerLaw {
    /// Build the distribution over `0..n` with exponent `gamma` (> 1).
    pub fn new(n: usize, gamma: f64) -> Self {
        assert!(n > 0, "empty distribution");
        assert!(gamma > 1.0, "power-law exponent must exceed 1, got {gamma}");
        // Chung–Lu weights: w_i ∝ (i+1)^(-1/(γ-1)), normalised to the
        // target edge count by the caller. Index 0 becomes the biggest hub.
        let alpha = 1.0 / (gamma - 1.0);
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
        // `w_sum` is summed independently of the running accumulation —
        // both orders predate this type and seeded draws pin them.
        let w_sum: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        Self { cumulative, w_sum }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one index, consuming one `f64` from the rng stream.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let x = rng.gen_range(0.0..self.w_sum);
        self.cumulative.partition_point(|&c| c < x).min(self.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_tensor::seeded_rng;

    #[test]
    fn deterministic_given_seed() {
        let p = PowerLaw::new(1000, 2.1);
        let draw = |seed| {
            let mut rng = seeded_rng(seed);
            (0..64).map(|_| p.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn head_is_heavy() {
        let p = PowerLaw::new(10_000, 2.1);
        let mut rng = seeded_rng(3);
        let draws = 20_000;
        let hot = (0..draws).filter(|_| p.sample(&mut rng) < 100).count();
        // 1% of the items should absorb far more than 1% of the draws.
        assert!(hot as f64 / draws as f64 > 0.2, "head share {}", hot as f64 / draws as f64);
    }

    #[test]
    fn all_indices_in_range() {
        let p = PowerLaw::new(17, 3.0);
        let mut rng = seeded_rng(11);
        for _ in 0..500 {
            assert!(p.sample(&mut rng) < 17);
        }
    }
}
