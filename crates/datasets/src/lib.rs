//! `agl-datasets` — synthetic stand-ins for the paper's evaluation datasets
//! (§4.1.1, Table 2).
//!
//! The reproduction has no network access and no Alipay data, so each
//! dataset is generated with the *published shape* (node/edge/feature/class
//! counts, splits) and a planted signal (class-conditional features +
//! homophilous edges) strong enough that the relative model ordering and
//! all efficiency numbers reproduce; DESIGN.md documents the substitution.
//!
//! * [`cora_like`] — citation-network shape: 2708 nodes, 5429 undirected
//!   edges, 1433 binary features, 7 classes, 140/500/1000 split.
//! * [`ppi_like`] — protein-interaction shape: 24 graphs, ~57k nodes, ~819k
//!   directed edges, 50 features, 121 labels (multi-label), 20/2/2 graph
//!   split. Scalable via a factor for test-speed.
//! * [`uug_like`] — the industrial User-User-Graph shape: power-law degree
//!   distribution (hubs!), 2 classes, dense features; node/edge counts are
//!   parameters so benches can sweep scale, with the paper's 6.23e9 nodes /
//!   3.38e11 edges as the (simulated-only) reference point.

pub mod cora;
pub mod popularity;
pub mod ppi;
pub mod summary;
pub mod uug;

pub use cora::cora_like;
pub use popularity::PowerLaw;
pub use ppi::{ppi_like, PpiConfig};
pub use summary::DatasetSummary;
pub use uug::{uug_like, UugConfig};

use agl_graph::{Graph, NodeId};

/// Which units a split is expressed in.
#[derive(Debug, Clone)]
pub enum Split {
    /// Node ids within `graphs[0]` (transductive datasets).
    Nodes(Vec<NodeId>),
    /// Indices into `Dataset::graphs` (inductive datasets).
    Graphs(Vec<usize>),
}

impl Split {
    pub fn len(&self) -> usize {
        match self {
            Split::Nodes(v) => v.len(),
            Split::Graphs(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node ids, panicking for graph-level splits.
    pub fn node_ids(&self) -> &[NodeId] {
        match self {
            Split::Nodes(v) => v,
            Split::Graphs(_) => panic!("graph-level split has no node ids"),
        }
    }

    /// Graph indices, panicking for node-level splits.
    pub fn graph_indices(&self) -> &[usize] {
        match self {
            Split::Graphs(v) => v,
            Split::Nodes(_) => panic!("node-level split has no graph indices"),
        }
    }
}

/// A generated dataset with its evaluation protocol.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    pub graphs: Vec<Graph>,
    /// Output width: #classes (one-hot), #labels (multi-hot), or 1 (binary).
    pub label_dim: usize,
    pub multilabel: bool,
    pub train: Split,
    pub val: Split,
    pub test: Split,
}

impl Dataset {
    /// The single graph of a transductive dataset.
    pub fn graph(&self) -> &Graph {
        assert_eq!(self.graphs.len(), 1, "{} is multi-graph", self.name);
        &self.graphs[0]
    }

    pub fn n_nodes(&self) -> usize {
        self.graphs.iter().map(Graph::n_nodes).sum()
    }

    pub fn n_edges(&self) -> usize {
        self.graphs.iter().map(Graph::n_edges).sum()
    }

    pub fn feature_dim(&self) -> usize {
        self.graphs[0].features().cols()
    }

    /// Table 2 row.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary {
            name: self.name.clone(),
            n_nodes: self.n_nodes(),
            n_edges: self.n_edges(),
            n_graphs: self.graphs.len(),
            feature_dim: self.feature_dim(),
            label_dim: self.label_dim,
            multilabel: self.multilabel,
            train: self.train.len(),
            val: self.val.len(),
            test: self.test.len(),
        }
    }
}
