//! PPI-shaped multi-graph, multi-label dataset: 24 independent graphs,
//! ~56944 nodes and ~818716 directed edges in total, 50 features, 121
//! labels, split 20/2/2 graphs (paper Table 2).

use crate::{Dataset, Split};
use agl_graph::{EdgeTable, Graph, NodeId, NodeTable};
use agl_tensor::rng::derive_seed;
use agl_tensor::rng::Rng;
use agl_tensor::{seeded_rng, Matrix};

/// Generation knobs. `scale` shrinks every graph (nodes and edges alike) so
/// unit tests stay fast while benches run the paper-sized dataset.
#[derive(Debug, Clone, Copy)]
pub struct PpiConfig {
    pub seed: u64,
    /// 1.0 = paper size (24 graphs × ~2373 nodes); 0.05 = test size.
    pub scale: f64,
}

impl Default for PpiConfig {
    fn default() -> Self {
        Self { seed: 17, scale: 1.0 }
    }
}

pub const PPI_GRAPHS: usize = 24;
pub const PPI_FEATURES: usize = 50;
pub const PPI_LABELS: usize = 121;
const NODES_PER_GRAPH: f64 = 56944.0 / 24.0;
const AVG_OUT_DEGREE: f64 = 818716.0 / 56944.0; // ≈ 14.4 directed edges per node

/// Generate a PPI-like dataset.
///
/// Signal: node features are Gaussian; label ℓ fires when a fixed random
/// projection of (own features + mean in-neighbor features) exceeds a
/// threshold — so labels genuinely depend on the neighborhood, which is
/// what separates GNNs from an MLP on this dataset.
pub fn ppi_like(cfg: PpiConfig) -> Dataset {
    let per_graph = ((NODES_PER_GRAPH * cfg.scale).round() as usize).max(8);
    // Fixed projection matrix shared across graphs (one draw per dataset).
    let mut wrng = seeded_rng(derive_seed(cfg.seed, 0xBEEF));
    let w = Matrix::from_vec(
        PPI_FEATURES,
        PPI_LABELS,
        (0..PPI_FEATURES * PPI_LABELS).map(|_| wrng.gen_range(-1.0..1.0f32)).collect(),
    );

    let mut graphs = Vec::with_capacity(PPI_GRAPHS);
    let mut id_base = 0u64;
    for gi in 0..PPI_GRAPHS {
        let mut rng = seeded_rng(derive_seed(cfg.seed, gi as u64 + 1));
        let n = per_graph;
        let ids: Vec<NodeId> = (0..n as u64).map(|i| NodeId(id_base + i)).collect();
        id_base += n as u64;
        let features =
            Matrix::from_vec(n, PPI_FEATURES, (0..n * PPI_FEATURES).map(|_| rng.gen_range(-1.0..1.0f32)).collect());
        // Edges: preferential-ish random graph with the paper's density.
        let target_edges = ((n as f64) * AVG_OUT_DEGREE) as usize;
        let mut pairs = std::collections::HashSet::with_capacity(target_edges);
        let mut guard = 0;
        while pairs.len() < target_edges && guard < target_edges * 20 {
            guard += 1;
            let a = rng.gen_range(0..n as u64);
            let b = rng.gen_range(0..n as u64);
            if a != b {
                pairs.insert((ids[a as usize % n].0, ids[b as usize % n].0));
            }
        }
        let mut sorted: Vec<(u64, u64)> = pairs.into_iter().collect();
        sorted.sort_unstable();
        let edges = EdgeTable::from_pairs(sorted);

        // Labels from the mean over {v} ∪ N+(v) through `w` — the
        // self-inclusive mean every aggregator here can represent, so the
        // generator does not structurally favour one architecture.
        let tmp_nodes = NodeTable::new(ids.clone(), features.clone(), None);
        let g0 = Graph::from_tables(&tmp_nodes, &edges);
        let signal = g0.in_adj().with_self_loops(1.0).row_normalized().spmm(&features);
        let scores = signal.matmul(&w);
        let mut labels = Matrix::zeros(n, PPI_LABELS);
        for i in 0..n {
            for l in 0..PPI_LABELS {
                // Threshold tuned for roughly a third positive — the real
                // PPI averages ~37 of 121 labels per node.
                if scores[(i, l)] > 0.3 {
                    labels[(i, l)] = 1.0;
                }
            }
        }
        let nodes = NodeTable::new(ids, features, Some(labels));
        graphs.push(Graph::from_tables(&nodes, &edges));
    }

    Dataset {
        name: "PPI-like".into(),
        graphs,
        label_dim: PPI_LABELS,
        multilabel: true,
        train: Split::Graphs((0..20).collect()),
        val: Split::Graphs(vec![20, 21]),
        test: Split::Graphs(vec![22, 23]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        ppi_like(PpiConfig { seed: 3, scale: 0.02 })
    }

    #[test]
    fn shape_matches_protocol() {
        let d = small();
        assert_eq!(d.graphs.len(), 24);
        assert_eq!(d.feature_dim(), 50);
        assert_eq!(d.label_dim, 121);
        assert!(d.multilabel);
        assert_eq!(d.train.graph_indices().len(), 20);
        assert_eq!(d.val.graph_indices().len(), 2);
        assert_eq!(d.test.graph_indices().len(), 2);
    }

    #[test]
    fn full_scale_counts_are_close_to_paper() {
        // Only check the arithmetic, not a full generation (slow in tests):
        let per_graph = (NODES_PER_GRAPH.round() as usize) * 24;
        assert!((per_graph as i64 - 56944).abs() < 24);
    }

    #[test]
    fn labels_are_multi_hot_and_nontrivial() {
        let d = small();
        let g = &d.graphs[0];
        let labels = g.labels().unwrap();
        let positives = labels.as_slice().iter().filter(|&&x| x > 0.0).count();
        let frac = positives as f64 / labels.len() as f64;
        assert!(frac > 0.05 && frac < 0.7, "positive fraction {frac}");
        // At least one node has more than one label (multi-label).
        let multi = (0..g.n_nodes()).any(|i| labels.row(i).iter().filter(|&&x| x > 0.0).count() > 1);
        assert!(multi);
    }

    #[test]
    fn graphs_have_disjoint_node_ids() {
        let d = small();
        let mut seen = std::collections::HashSet::new();
        for g in &d.graphs {
            for id in g.node_ids() {
                assert!(seen.insert(*id), "duplicate id {id}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.graphs[5].features(), b.graphs[5].features());
        assert_eq!(a.graphs[5].n_edges(), b.graphs[5].n_edges());
    }
}
