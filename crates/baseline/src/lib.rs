//! `agl-baseline` — the single-machine, full-graph, in-memory GNN engine.
//!
//! This is the reproduction's stand-in for the systems AGL is compared
//! against in §4 (DGL and PyTorch Geometric): the whole graph lives in
//! memory as one sparse matrix, and every epoch runs a full-batch forward
//! and backward over *all* nodes — no GraphFlat, no per-batch neighborhood
//! assembly, no disk in the loop. It shares the exact layer implementations
//! of `agl-nn`, so Table 3 (effectiveness) isolates the *system* difference
//! and Table 4 (efficiency) compares the execution strategies rather than
//! different numerics.
//!
//! Both training styles in the paper's evaluation are supported:
//!
//! * **Transductive** ([`FullGraphEngine::train_transductive`]) — one graph,
//!   labeled subset of nodes (Cora).
//! * **Inductive** ([`FullGraphEngine::train_inductive`]) — a list of
//!   graphs, full-batch per graph per epoch (PPI's 20 training graphs).

use agl_graph::{Graph, NodeId};
use agl_nn::{Adam, GnnModel, Optimizer};
use agl_obs::Clock;
use agl_tensor::{seeded_rng, Csr, ExecCtx, Matrix};
use agl_trainer::metrics::Metrics;
use std::time::Duration;

/// Per-epoch record (mirrors `agl_trainer::EpochStats`).
#[derive(Debug, Clone)]
pub struct BaselineEpoch {
    pub epoch: usize,
    pub loss: f64,
    pub duration: Duration,
}

/// Full-graph training/inference engine.
#[derive(Debug, Clone)]
pub struct FullGraphEngine {
    pub lr: f32,
    pub epochs: usize,
    /// Aggregation threads (the baseline systems are multithreaded too).
    pub partitions: usize,
    pub seed: u64,
}

impl Default for FullGraphEngine {
    fn default() -> Self {
        Self { lr: 0.01, epochs: 100, partitions: 1, seed: 7 }
    }
}

/// A graph pre-vectorized for full-batch work: per-layer prepared
/// adjacencies + features + labels.
pub struct FullBatch {
    pub adjs: Vec<Csr>,
    pub features: Matrix,
    pub labels: Matrix,
}

impl FullGraphEngine {
    fn ctx(&self) -> ExecCtx {
        if self.partitions > 1 {
            ExecCtx::parallel(self.partitions)
        } else {
            ExecCtx::sequential()
        }
    }

    /// Prepare a graph once for repeated full-batch passes.
    pub fn prepare(&self, model: &GnnModel, graph: &Graph) -> FullBatch {
        let labels = graph.labels().cloned().unwrap_or_else(|| Matrix::zeros(graph.n_nodes(), model.config().out_dim));
        FullBatch { adjs: model.prepare_adjs(graph.in_adj(), None), features: graph.features().clone(), labels }
    }

    fn locals(graph: &Graph, ids: &[NodeId]) -> Vec<usize> {
        ids.iter().map(|&id| graph.local(id).unwrap_or_else(|| panic!("unknown node {id}")) as usize).collect()
    }

    /// Transductive full-batch training on the labeled subset of one graph.
    pub fn train_transductive(&self, model: &mut GnnModel, graph: &Graph, train_ids: &[NodeId]) -> Vec<BaselineEpoch> {
        let batch = self.prepare(model, graph);
        let targets = Self::locals(graph, train_ids);
        let labels = batch.labels.gather_rows(&targets);
        let ctx = self.ctx();
        let mut opt = Adam::new(self.lr);
        let mut rng = seeded_rng(self.seed);
        let clock = Clock::monotonic();
        let mut history = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            let t = clock.now();
            model.zero_grads();
            let pass = model.forward(&batch.adjs, &batch.features, &targets, true, &ctx, &mut rng);
            let (loss, grad) = model.loss(&pass.logits, &labels);
            model.backward(&batch.adjs, &pass, &grad, &ctx);
            let mut p = model.param_vector();
            opt.step(&mut p, &model.grad_vector());
            model.load_param_vector(&p);
            history.push(BaselineEpoch { epoch, loss: loss as f64, duration: Duration::from_nanos(clock.since(t)) });
        }
        history
    }

    /// Inductive full-batch training: every epoch sweeps all graphs, one
    /// full-batch step per graph with all of its nodes as targets (the PPI
    /// protocol).
    pub fn train_inductive(&self, model: &mut GnnModel, graphs: &[Graph]) -> Vec<BaselineEpoch> {
        let batches: Vec<FullBatch> = graphs.iter().map(|g| self.prepare(model, g)).collect();
        let all_targets: Vec<Vec<usize>> = graphs.iter().map(|g| (0..g.n_nodes()).collect()).collect();
        let ctx = self.ctx();
        let mut opt = Adam::new(self.lr);
        let mut rng = seeded_rng(self.seed);
        let clock = Clock::monotonic();
        let mut history = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            let t = clock.now();
            let mut loss_sum = 0.0f64;
            for (batch, targets) in batches.iter().zip(&all_targets) {
                model.zero_grads();
                let pass = model.forward(&batch.adjs, &batch.features, targets, true, &ctx, &mut rng);
                let (loss, grad) = model.loss(&pass.logits, &batch.labels);
                model.backward(&batch.adjs, &pass, &grad, &ctx);
                let mut p = model.param_vector();
                opt.step(&mut p, &model.grad_vector());
                model.load_param_vector(&p);
                loss_sum += loss as f64;
            }
            history.push(BaselineEpoch {
                epoch,
                loss: loss_sum / graphs.len() as f64,
                duration: Duration::from_nanos(clock.since(t)),
            });
        }
        history
    }

    /// Logits for every node of a graph (one full forward).
    pub fn infer_all(&self, model: &GnnModel, graph: &Graph) -> Matrix {
        let batch = self.prepare(model, graph);
        let targets: Vec<usize> = (0..graph.n_nodes()).collect();
        let mut rng = seeded_rng(0);
        model.forward(&batch.adjs, &batch.features, &targets, false, &self.ctx(), &mut rng).logits
    }

    /// Evaluate on a node subset of one graph.
    pub fn evaluate(&self, model: &GnnModel, graph: &Graph, ids: &[NodeId]) -> Metrics {
        let batch = self.prepare(model, graph);
        let targets = Self::locals(graph, ids);
        let mut rng = seeded_rng(0);
        let pass = model.forward(&batch.adjs, &batch.features, &targets, false, &self.ctx(), &mut rng);
        let labels = batch.labels.gather_rows(&targets);
        Metrics::compute(model.config().loss, &pass.logits, &labels)
    }

    /// Evaluate over several graphs (inductive test protocol), pooling all
    /// node predictions.
    pub fn evaluate_graphs(&self, model: &GnnModel, graphs: &[Graph]) -> Metrics {
        let out_dim = model.config().out_dim;
        let total: usize = graphs.iter().map(Graph::n_nodes).sum();
        let mut logits = Matrix::zeros(total, out_dim);
        let mut labels = Matrix::zeros(total, out_dim);
        let mut row = 0;
        let mut rng = seeded_rng(0);
        for g in graphs {
            let batch = self.prepare(model, g);
            let targets: Vec<usize> = (0..g.n_nodes()).collect();
            let pass = model.forward(&batch.adjs, &batch.features, &targets, false, &self.ctx(), &mut rng);
            for i in 0..g.n_nodes() {
                logits.row_mut(row).copy_from_slice(pass.logits.row(i));
                labels.row_mut(row).copy_from_slice(batch.labels.row(i));
                row += 1;
            }
        }
        Metrics::compute(model.config().loss, &logits, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agl_graph::{EdgeTable, NodeTable};
    use agl_nn::{Loss, ModelConfig, ModelKind};

    /// Two homophilous clusters with class-correlated features.
    fn toy_graph(seed_shift: u64) -> Graph {
        let n: u64 = 24;
        let ids: Vec<NodeId> = (0..n).map(|i| NodeId(i + seed_shift)).collect();
        let mut feats = Matrix::zeros(n as usize, 4);
        let mut labels = Matrix::zeros(n as usize, 2);
        for i in 0..n as usize {
            let c = i % 2;
            labels[(i, c)] = 1.0;
            let sign = if c == 0 { 1.0 } else { -1.0 };
            feats[(i, 0)] = sign;
            feats[(i, 1)] = sign * 0.5;
            feats[(i, 2)] = ((i / 2) as f32) * 0.01;
        }
        let nodes = NodeTable::new(ids.clone(), feats, Some(labels));
        let mut pairs = Vec::new();
        for i in (0..n).step_by(2) {
            let j = (i + 2) % n;
            pairs.push((ids[i as usize].0, ids[j as usize].0)); // class-0 ring
            pairs.push((ids[i as usize + 1].0, ids[(j + 1) as usize % n as usize].0));
            // class-1 ring
        }
        Graph::from_tables(&nodes, &EdgeTable::from_undirected_pairs(pairs))
    }

    fn model(kind: ModelKind) -> GnnModel {
        GnnModel::new(ModelConfig::new(kind, 4, 8, 2, 2, Loss::SoftmaxCrossEntropy))
    }

    #[test]
    fn transductive_training_learns() {
        let g = toy_graph(0);
        // First half trains, second half tests — both halves contain both
        // classes (class alternates with index parity).
        let train: Vec<NodeId> = g.node_ids()[..12].to_vec();
        let test: Vec<NodeId> = g.node_ids()[12..].to_vec();
        for kind in [ModelKind::Gcn, ModelKind::Sage, ModelKind::Gat { heads: 2 }] {
            let mut m = model(kind);
            let engine = FullGraphEngine { epochs: 40, lr: 0.05, ..Default::default() };
            let hist = engine.train_transductive(&mut m, &g, &train);
            assert!(hist.last().unwrap().loss < hist[0].loss, "{kind:?} loss decreased");
            let metrics = engine.evaluate(&m, &g, &test);
            assert!(metrics.accuracy.unwrap() > 0.9, "{kind:?} acc {:?}", metrics.accuracy);
        }
    }

    #[test]
    fn inductive_training_generalises_to_held_out_graph() {
        let train_graphs = vec![toy_graph(0), toy_graph(1000)];
        let test_graphs = vec![toy_graph(2000)];
        let mut m = model(ModelKind::Sage);
        let engine = FullGraphEngine { epochs: 30, lr: 0.05, ..Default::default() };
        engine.train_inductive(&mut m, &train_graphs);
        let metrics = engine.evaluate_graphs(&m, &test_graphs);
        assert!(metrics.accuracy.unwrap() > 0.9, "acc {:?}", metrics.accuracy);
    }

    #[test]
    fn infer_all_shapes() {
        let g = toy_graph(0);
        let m = model(ModelKind::Gcn);
        let engine = FullGraphEngine::default();
        let logits = engine.infer_all(&m, &g);
        assert_eq!(logits.shape(), (24, 2));
    }

    #[test]
    fn partitioned_training_matches_sequential() {
        let g = toy_graph(0);
        let train: Vec<NodeId> = g.node_ids().to_vec();
        let run = |partitions: usize| {
            let mut m = model(ModelKind::Gcn);
            let engine = FullGraphEngine { epochs: 3, partitions, ..Default::default() };
            engine.train_transductive(&mut m, &g, &train);
            m.param_vector()
        };
        let a = run(1);
        let b = run(4);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
