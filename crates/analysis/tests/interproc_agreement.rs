//! Regression gate: the per-function lock pass and the interprocedural
//! engine must agree on intra-function chains.
//!
//! The interprocedural pass has an *intra mode* (`interproc(files, true)`)
//! that pushes every recorded acquisition and blocking site through the
//! same `judge` core as single-frame chains. On fixtures where every chain
//! is lexically inside one function, that mode must reproduce exactly the
//! per-function findings — same kinds on the same lines, nothing extra,
//! nothing missing. This pins the two passes to one semantics: a future
//! edit that changes what one pass sees without the other fails here.
//!
//! `UntrackedLock` is excluded from the comparison: a raw `.lock()` is a
//! property of a single token, not of a chain, so it is reported by the
//! per-function pass only and has no interprocedural counterpart.

use agl_analysis::scanner::{scan, test_regions};
use agl_analysis::{interproc, FileLocks, LockFindingKind};

/// Single-function fixtures covering every chain-related finding kind plus
/// the clean shapes that must stay clean.
const SINGLE_FN_FIXTURES: &[(&str, &str)] = &[
    (
        "inversion",
        "fn bad(&self) {\n    let a = self.lock_shard(1);\n    let b = self.lock_shard(0);\n}\n",
    ),
    (
        "shard_before_versions",
        "fn bad(&self) {\n    let sh = self.lock_shard(2);\n    let vt = self.lock_versions();\n}\n",
    ),
    (
        "double_lock",
        "fn bad(&self) {\n    let a = self.lock_barrier();\n    let b = self.lock_barrier();\n}\n",
    ),
    (
        "unordered_shards",
        "fn bad(&self) {\n    let a = self.lock_shard(i);\n    let b = self.lock_shard(j);\n}\n",
    ),
    (
        "send_while_holding",
        "fn bad(&self, tx: &Sender<u8>) {\n    let g = self.lock_versions();\n    tx.send(1);\n}\n",
    ),
    (
        "wait_holding_other_guard",
        "fn bad(&self) {\n    let b = self.lock_barrier();\n    let v = self.lock_versions();\n    v.wait_while(&self.cv, |s| s.busy);\n}\n",
    ),
    (
        "clean_canonical",
        "fn ok(&self) {\n    let b = self.lock_barrier();\n    let v = self.lock_versions();\n    let s = self.lock_shard(0);\n}\n",
    ),
    (
        "clean_condvar_own_guard",
        "fn ok(&self) {\n    let mut v = self.lock_versions();\n    v = v.wait_while(&self.cv, |s| s.busy);\n    let s = self.lock_shard(0);\n}\n",
    ),
    (
        "clean_drop_then_lower",
        "fn ok(&self) {\n    let a = self.lock_shard(3);\n    drop(a);\n    let b = self.lock_shard(0);\n}\n",
    ),
    (
        "multiple_findings_one_fn",
        "fn bad(&self) {\n    let s = self.lock_shard(2);\n    let v = self.lock_versions();\n    let b = self.lock_barrier();\n}\n",
    ),
];

/// The per-function findings of `src`, as a sorted `(kind, line)` multiset,
/// minus `UntrackedLock`.
fn per_function(src: &str) -> Vec<(LockFindingKind, usize)> {
    let scanned = scan(src);
    let mut out: Vec<_> = agl_analysis::lockgraph::analyze(&scanned, &[])
        .lock_findings
        .into_iter()
        .filter(|f| f.kind != LockFindingKind::UntrackedLock)
        .map(|f| (f.kind, f.line))
        .collect();
    out.sort_by_key(|(k, l)| (format!("{k:?}"), *l));
    out
}

/// The interprocedural pass in intra mode on the same source, as the same
/// sorted `(kind, line)` multiset.
fn intra_mode(src: &str) -> Vec<(LockFindingKind, usize)> {
    let scanned = scan(src);
    let analysis = agl_analysis::lockgraph::analyze(&scanned, &[]);
    let in_test = test_regions(&scanned);
    let files = [FileLocks { path: "fixture.rs", analysis: &analysis, in_test: &in_test }];
    let mut out: Vec<_> = interproc(&files, true).into_iter().map(|f| (f.kind, f.line)).collect();
    out.sort_by_key(|(k, l)| (format!("{k:?}"), *l));
    out
}

#[test]
fn passes_agree_on_every_single_function_fixture() {
    for (name, src) in SINGLE_FN_FIXTURES {
        let per_fn = per_function(src);
        let intra = intra_mode(src);
        assert_eq!(
            per_fn, intra,
            "fixture {name:?}: per-function pass found {per_fn:?} but the interprocedural \
             engine (intra mode) found {intra:?}"
        );
    }
}

#[test]
fn intra_chains_never_leak_into_the_lint_rule() {
    // The shipped `lock-order/interproc` rule filters to chains of ≥ 2
    // frames; on single-function fixtures, intra mode produces exactly the
    // single-frame chains, so the filtered set must be empty — i.e. the two
    // rules partition the findings with no overlap.
    for (name, src) in SINGLE_FN_FIXTURES {
        let scanned = scan(src);
        let analysis = agl_analysis::lockgraph::analyze(&scanned, &[]);
        let in_test = test_regions(&scanned);
        let files = [FileLocks { path: "fixture.rs", analysis: &analysis, in_test: &in_test }];
        let multi: Vec<_> = interproc(&files, false).into_iter().filter(|f| f.chain.len() >= 2).collect();
        assert!(multi.is_empty(), "fixture {name:?} produced multi-frame chains: {multi:?}");
    }
}

#[test]
fn chains_render_site_by_site() {
    // Library-level check of the witness format the binary prints: a split
    // inversion must render every hop as `fn (file:line: what)`.
    let src = "impl Ps {\n    fn push(&self) {\n        let v = self.lock_versions();\n        self.rebalance();\n        drop(v);\n    }\n    fn rebalance(&self) {\n        let b = self.lock_barrier();\n    }\n}\n";
    let scanned = scan(src);
    let analysis = agl_analysis::lockgraph::analyze(&scanned, &[]);
    let in_test = test_regions(&scanned);
    let files = [FileLocks { path: "ps.rs", analysis: &analysis, in_test: &in_test }];
    let findings = interproc(&files, false);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let rendered = agl_analysis::render_chain(&findings[0].chain);
    assert_eq!(rendered, "push (ps.rs:4: calls Ps::rebalance) → rebalance (ps.rs:8: acquires barrier)");
}
