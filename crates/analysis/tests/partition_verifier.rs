//! The ConflictFreedomVerifier against the real splitter: every partition
//! `EdgePartition::new` produces — across a property corpus of random
//! matrices and the ISSUE's named edge cases — must verify, and
//! hand-constructed invalid partitions must be rejected.

use agl_analysis::ConflictFreedomVerifier;
use agl_tensor::{seeded_rng, Coo, Csr, EdgePartition, PartitionViolation, Rng};

fn random_csr(rng: &mut agl_tensor::SmallRng, n_rows: usize, n_cols: usize, n_entries: usize) -> Csr {
    let mut coo = Coo::new(n_rows, n_cols);
    for _ in 0..n_entries {
        let r = rng.gen_range(0..n_rows.max(1)) as u32;
        let c = rng.gen_range(0..n_cols.max(1)) as u32;
        coo.push(r, c, 1.0);
    }
    coo.into_csr()
}

#[test]
fn prop_constructed_partitions_always_verify() {
    let mut rng = seeded_rng(0xCF_0001);
    let verifier = ConflictFreedomVerifier::new();
    for case in 0..128 {
        let n_rows = rng.gen_range(1..64usize);
        let n_cols = rng.gen_range(1..64usize);
        let n_entries = rng.gen_range(0..256usize);
        let csr = random_csr(&mut rng, n_rows, n_cols, n_entries);
        for t in 1..=9 {
            let part = EdgePartition::new(&csr, t);
            let v = verifier.verify(&part, &csr);
            assert!(v.is_ok(), "case {case}, t={t}, n_rows={n_rows}, nnz={}: {v:?}", csr.nnz());
        }
    }
}

#[test]
fn more_threads_than_rows() {
    // t > n_rows: the splitter must still produce a disjoint cover (some
    // threads simply get nothing to do).
    let mut coo = Coo::new(3, 3);
    for i in 0..3 {
        coo.push(i, i, 1.0);
    }
    let csr = coo.into_csr();
    for t in [4, 8, 100] {
        let part = EdgePartition::new(&csr, t);
        assert!(ConflictFreedomVerifier::new().verify(&part, &csr).is_ok(), "t={t}");
        assert!(part.len() <= 3, "t={t} produced {} parts for 3 rows", part.len());
    }
}

#[test]
fn single_mega_row_hub() {
    // One hub row holds every edge — the §3.2.2 skew case. Balance is
    // impossible, but the default bound (ideal + max_row_nnz) provably
    // admits what the greedy splitter returns.
    let mut coo = Coo::new(16, 16);
    for c in 0..16 {
        coo.push(7, c, 1.0);
    }
    let csr = coo.into_csr();
    for t in 1..=6 {
        let part = EdgePartition::new(&csr, t);
        assert!(ConflictFreedomVerifier::new().verify(&part, &csr).is_ok(), "t={t}");
    }
}

#[test]
fn empty_matrix() {
    let csr = Coo::new(0, 0).into_csr();
    let part = EdgePartition::new(&csr, 4);
    assert!(ConflictFreedomVerifier::new().verify(&part, &csr).is_ok());

    // Rows but no edges.
    let csr = Coo::new(8, 8).into_csr();
    let part = EdgePartition::new(&csr, 4);
    assert!(ConflictFreedomVerifier::new().verify(&part, &csr).is_ok());
}

#[test]
fn hand_constructed_overlap_rejected() {
    let mut coo = Coo::new(10, 10);
    for i in 0..10 {
        coo.push(i, i, 1.0);
    }
    let csr = coo.into_csr();
    let bad = EdgePartition::from_bounds(vec![0, 7, 3, 10]);
    assert!(matches!(ConflictFreedomVerifier::new().verify(&bad, &csr), Err(PartitionViolation::Overlap { .. })));
}
