//! Tier-1 gate: the whole repository must be lint-clean.
//!
//! This is the test the ISSUE asks for — running `agl-lint` over the
//! entire workspace from the test suite, so any violation anywhere in the
//! repo fails `cargo test` without a separate CI step.

use agl_analysis::{find_workspace_root, lint_workspace};
use std::path::Path;

#[test]
fn repository_is_lint_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("enclosing cargo workspace");
    let diags = lint_workspace(&root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "agl-lint found {} violation(s):\n{}",
        diags.len(),
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn workspace_walk_covers_every_crate() {
    // Guard against the walker silently skipping directories: every member
    // crate under crates/ must contribute at least one scanned file.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("enclosing cargo workspace");
    let files = agl_analysis::collect_rs_files(&root).expect("workspace walk");
    for krate in ["tensor", "mapreduce", "flat", "trainer", "infer", "ps", "obs", "analysis"] {
        let prefix = root.join("crates").join(krate);
        assert!(files.iter().any(|f| f.starts_with(&prefix)), "no .rs files collected under crates/{krate}");
    }
}
