//! End-to-end tests of the atomics/happens-before rule through the
//! `agl-lint` binary: seeded fixtures with cross-thread `Relaxed` traffic
//! or mixed orderings must fail with a `file:line` diagnostic, while the
//! sanctioned shapes (lock-protected counters, non-escaping locals, and
//! annotated sites) must lint clean.

use std::path::PathBuf;
use std::process::Command;

/// A scratch workspace under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str, files: &[(&str, &str)]) -> Self {
        let root = std::env::temp_dir().join(format!("agl-lint-atomics-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        for (rel, contents) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("fixture file has parent")).expect("create dirs");
            std::fs::write(path, contents).expect("write fixture file");
        }
        Self { root }
    }

    fn lint(&self) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_agl-lint"))
            .args(["--workspace"])
            .arg(&self.root)
            .output()
            .expect("run agl-lint")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn cross_thread_relaxed_publication_is_flagged() {
    let fx = Fixture::new(
        "publication",
        &[(
            "crates/flat/src/bad.rs",
            "impl Publisher {\n\
             \x20   pub fn publish(&self) {\n\
             \x20       self.ready.store(true, Ordering::Relaxed);\n\
             \x20   }\n\
             }\n\
             struct Publisher {\n\
             \x20   ready: Arc<AtomicBool>,\n\
             }\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/flat/src/bad.rs:3: [atomics]"), "missing diagnostic in: {stdout}");
    assert!(stdout.contains("Relaxed store"), "{stdout}");
    assert!(stdout.contains("Publisher::ready"), "{stdout}");
}

#[test]
fn mixed_ordering_pair_is_flagged() {
    let fx = Fixture::new(
        "mixedpair",
        &[(
            "crates/flat/src/bad.rs",
            "impl Seq {\n\
             \x20   pub fn bump(&self) {\n\
             \x20       let g = self.state.lock();\n\
             \x20       self.seq.store(1, Ordering::Relaxed);\n\
             \x20       drop(g);\n\
             \x20   }\n\
             \x20   pub fn read(&self) -> u64 {\n\
             \x20       self.seq.load(Ordering::Acquire)\n\
             \x20   }\n\
             }\n\
             struct Seq {\n\
             \x20   seq: Arc<AtomicU64>,\n\
             }\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[atomics]"), "{stdout}");
    assert!(stdout.contains("mixed memory orderings"), "{stdout}");
}

#[test]
fn lock_protected_relaxed_counter_is_clean() {
    let fx = Fixture::new(
        "lockedcounter",
        &[(
            "crates/flat/src/ok.rs",
            "impl Stats {\n\
             \x20   pub fn hit(&self) {\n\
             \x20       let g = self.state.lock();\n\
             \x20       self.hits.fetch_add(1, Ordering::Relaxed);\n\
             \x20       drop(g);\n\
             \x20   }\n\
             \x20   pub fn total(&self) -> u64 {\n\
             \x20       let g = self.state.lock();\n\
             \x20       self.hits.load(Ordering::Relaxed)\n\
             \x20   }\n\
             }\n\
             struct Stats {\n\
             \x20   hits: Arc<AtomicU64>,\n\
             }\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn allow_comment_suppresses_atomics_finding() {
    let fx = Fixture::new(
        "allowed",
        &[(
            "crates/flat/src/ok.rs",
            "impl Publisher {\n\
             \x20   pub fn publish(&self) {\n\
             \x20       // agl-lint: allow(atomics) — fixture: ordering carried elsewhere\n\
             \x20       self.ready.store(true, Ordering::Relaxed);\n\
             \x20   }\n\
             }\n\
             struct Publisher {\n\
             \x20   ready: Arc<AtomicBool>,\n\
             }\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn non_escaping_local_atomic_is_clean() {
    let fx = Fixture::new(
        "localatomic",
        &[(
            "crates/flat/src/ok.rs",
            "pub fn count_evens(rows: &[u64]) -> u64 {\n\
             \x20   let n = AtomicU64::new(0);\n\
             \x20   for r in rows {\n\
             \x20       if r % 2 == 0 {\n\
             \x20           n.fetch_add(1, Ordering::Relaxed);\n\
             \x20       }\n\
             \x20   }\n\
             \x20   n.load(Ordering::Relaxed)\n\
             }\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn spawn_captured_write_read_outside_is_flagged() {
    let fx = Fixture::new(
        "spawnwrite",
        &[(
            "crates/flat/src/bad.rs",
            "pub fn run() -> u64 {\n\
             \x20   let mut done = 0u64;\n\
             \x20   std::thread::scope(|s| {\n\
             \x20       s.spawn(|| {\n\
             \x20           done = 1;\n\
             \x20       });\n\
             \x20       if done == 1 {\n\
             \x20           done += 1;\n\
             \x20       }\n\
             \x20   });\n\
             \x20   done\n\
             }\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[atomics]"), "{stdout}");
    assert!(stdout.contains("non-atomic `done`"), "{stdout}");
}
