//! End-to-end tests of the `agl-lint` binary: seeded-violation fixtures
//! must fail with a `file:line` diagnostic; clean fixtures must exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch workspace under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str, files: &[(&str, &str)]) -> Self {
        let root = std::env::temp_dir().join(format!("agl-lint-fixture-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        for (rel, contents) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("fixture file has parent")).expect("create dirs");
            std::fs::write(path, contents).expect("write fixture file");
        }
        Self { root }
    }

    fn lint(&self) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_agl-lint"))
            .args(["--workspace"])
            .arg(&self.root)
            .output()
            .expect("run agl-lint")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_unwrap_violation_fails_with_file_line() {
    let fx = Fixture::new(
        "unwrap",
        &[("crates/mapreduce/src/bad.rs", "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/mapreduce/src/bad.rs:2: [no-panic]"), "missing file:line diagnostic in: {stdout}");
}

#[test]
fn clean_fixture_exits_zero() {
    let fx = Fixture::new(
        "clean",
        &[("crates/mapreduce/src/good.rs", "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn allow_comment_suppresses_in_binary_run() {
    let fx = Fixture::new(
        "allowed",
        &[(
            "crates/flat/src/ok.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    // agl-lint: allow(no-panic) — fixture\n    x.unwrap()\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn missing_safety_comment_reported_everywhere() {
    // safety-comment applies to all crates, not just pipeline libs.
    let fx = Fixture::new(
        "unsafe",
        &[("crates/util/src/lib.rs", "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[safety-comment]"), "{stdout}");
}

#[test]
fn tests_are_exempt_from_no_panic() {
    let fx =
        Fixture::new("exempt", &[("crates/mapreduce/tests/it.rs", "#[test]\nfn t() {\n    Some(1u32).unwrap();\n}\n")]);
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn seeded_lock_order_inversion_fails_with_file_line() {
    let fx = Fixture::new(
        "lockorder",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn sweep(&self) {\n        let a = self.lock_shard(1);\n        let b = self.lock_shard(0);\n        drop(b);\n        drop(a);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order]"), "missing diagnostic in: {stdout}");
    assert!(stdout.contains("inversion"), "{stdout}");
    assert!(stdout.contains("shard(0)") && stdout.contains("shard(1)"), "{stdout}");
}

#[test]
fn seeded_lock_across_send_fails() {
    let fx = Fixture::new(
        "lockacrosssend",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn notify(&self, tx: &std::sync::mpsc::Sender<u64>) {\n        let v = self.lock_versions();\n        let _ = tx.send(v.global_step);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order]"), "{stdout}");
    assert!(stdout.contains(".send("), "{stdout}");
}

#[test]
fn seeded_hot_loop_allocation_fails_with_file_line() {
    let fx = Fixture::new(
        "hotalloc",
        &[(
            "crates/tensor/src/partition.rs",
            "impl ExecCtx {\n    pub fn spmm(&self, rows: &[Vec<f32>]) -> Vec<f32> {\n        let mut out = Vec::new();\n        for r in rows {\n            let copy = r.clone();\n            out.extend(copy);\n        }\n        out\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/tensor/src/partition.rs:5: [no-hot-alloc]"), "missing diagnostic in: {stdout}");
    assert!(stdout.contains("hot fn spmm"), "{stdout}");
    // The pre-loop Vec::new on line 3 is fine: allocation outside the loop.
    assert!(!stdout.contains("partition.rs:3:"), "{stdout}");
}

#[test]
fn rules_flag_lists_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_agl-lint")).arg("--rules").output().expect("run agl-lint --rules");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["no-panic", "safety-comment", "no-wallclock", "no-raw-spawn", "lock-order", "no-hot-alloc"] {
        assert!(stdout.contains(rule), "rule {rule} missing from: {stdout}");
    }
}

#[test]
fn file_mode_lints_explicit_paths() {
    // Paths are taken as workspace-relative for rule dispatch, so lint a
    // real file from this repo: the analysis crate's own lib.rs is clean.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let lib = manifest.join("src/lib.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_agl-lint")).arg(&lib).output().expect("run agl-lint <file>");
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}
