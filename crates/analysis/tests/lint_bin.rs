//! End-to-end tests of the `agl-lint` binary: seeded-violation fixtures
//! must fail with a `file:line` diagnostic; clean fixtures must exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch workspace under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str, files: &[(&str, &str)]) -> Self {
        let root = std::env::temp_dir().join(format!("agl-lint-fixture-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        for (rel, contents) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("fixture file has parent")).expect("create dirs");
            std::fs::write(path, contents).expect("write fixture file");
        }
        Self { root }
    }

    fn lint(&self) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_agl-lint"))
            .args(["--workspace"])
            .arg(&self.root)
            .output()
            .expect("run agl-lint")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_unwrap_violation_fails_with_file_line() {
    let fx = Fixture::new(
        "unwrap",
        &[("crates/mapreduce/src/bad.rs", "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/mapreduce/src/bad.rs:2: [no-panic]"), "missing file:line diagnostic in: {stdout}");
}

#[test]
fn clean_fixture_exits_zero() {
    let fx = Fixture::new(
        "clean",
        &[("crates/mapreduce/src/good.rs", "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn allow_comment_suppresses_in_binary_run() {
    let fx = Fixture::new(
        "allowed",
        &[(
            "crates/flat/src/ok.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    // agl-lint: allow(no-panic) — fixture\n    x.unwrap()\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn missing_safety_comment_reported_everywhere() {
    // safety-comment applies to all crates, not just pipeline libs.
    let fx = Fixture::new(
        "unsafe",
        &[("crates/util/src/lib.rs", "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[safety-comment]"), "{stdout}");
}

#[test]
fn tests_are_exempt_from_no_panic() {
    let fx =
        Fixture::new("exempt", &[("crates/mapreduce/tests/it.rs", "#[test]\nfn t() {\n    Some(1u32).unwrap();\n}\n")]);
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn seeded_lock_order_inversion_fails_with_file_line() {
    let fx = Fixture::new(
        "lockorder",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn sweep(&self) {\n        let a = self.lock_shard(1);\n        let b = self.lock_shard(0);\n        drop(b);\n        drop(a);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order]"), "missing diagnostic in: {stdout}");
    assert!(stdout.contains("inversion"), "{stdout}");
    assert!(stdout.contains("shard(0)") && stdout.contains("shard(1)"), "{stdout}");
}

#[test]
fn seeded_lock_across_send_fails() {
    let fx = Fixture::new(
        "lockacrosssend",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn notify(&self, tx: &std::sync::mpsc::Sender<u64>) {\n        let v = self.lock_versions();\n        let _ = tx.send(v.global_step);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order]"), "{stdout}");
    assert!(stdout.contains(".send("), "{stdout}");
}

#[test]
fn condvar_wait_on_own_guard_is_clean() {
    // The SSP gate pattern in agl-ps: block on a condvar *through* the
    // guard. The wait releases and reacquires the receiver's lock, so this
    // must lint clean — it is not a guard-held-across-block violation.
    let fx = Fixture::new(
        "condvarclean",
        &[(
            "crates/ps/src/gate.rs",
            "impl ParameterServer {\n    pub fn push_gate(&self, worker: usize, slack: u64) {\n        let mut v = self.lock_versions();\n        v.wait_while(&self.ssp_cv, |vt| vt.ssp_apply_blocked(worker, slack));\n        v.global_step += 1;\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(
        out.status.code(),
        Some(0),
        "condvar wait should be exempt; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn condvar_wait_exempt_but_send_on_same_guard_still_flagged() {
    // The exemption is for the wait only: the same guard held across a
    // `.send(…)` two lines later must still fail with file:line.
    let fx = Fixture::new(
        "condvarsend",
        &[(
            "crates/ps/src/gate.rs",
            "impl ParameterServer {\n    pub fn push_gate(&self, tx: &std::sync::mpsc::Sender<u64>) {\n        let mut v = self.lock_versions();\n        v.wait_while(&self.ssp_cv, |vt| vt.blocked());\n        let _ = tx.send(v.global_step);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/gate.rs:5: [lock-order]"), "{stdout}");
    assert!(stdout.contains(".send("), "{stdout}");
    // Exactly one finding: the wait on line 4 is not reported.
    assert!(!stdout.contains("gate.rs:4:"), "{stdout}");
}

#[test]
fn condvar_wait_holding_second_guard_fails() {
    let fx = Fixture::new(
        "condvarheld",
        &[(
            "crates/ps/src/gate.rs",
            "impl ParameterServer {\n    pub fn bad(&self) {\n        let b = self.lock_barrier();\n        let v = self.lock_versions();\n        v.wait_while(&self.cv, |s| s.busy);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/gate.rs:5: [lock-order]"), "{stdout}");
    assert!(stdout.contains("barrier"), "{stdout}");
}

#[test]
fn seeded_hot_loop_allocation_fails_with_file_line() {
    let fx = Fixture::new(
        "hotalloc",
        &[(
            "crates/tensor/src/partition.rs",
            "impl ExecCtx {\n    pub fn spmm(&self, rows: &[Vec<f32>]) -> Vec<f32> {\n        let mut out = Vec::new();\n        for r in rows {\n            let copy = r.clone();\n            out.extend(copy);\n        }\n        out\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/tensor/src/partition.rs:5: [no-hot-alloc]"), "missing diagnostic in: {stdout}");
    assert!(stdout.contains("hot fn spmm"), "{stdout}");
    // The pre-loop Vec::new on line 3 is fine: allocation outside the loop.
    assert!(!stdout.contains("partition.rs:3:"), "{stdout}");
}

// ---------------------------------------------------------------------------
// Interprocedural lock-order fixtures. Each of the "bad" shapes below passes
// the per-function pass (no single function misorders anything lexically)
// and would only be caught at runtime by `LockOrderTracker` — the static
// `lock-order/interproc` rule must prove them from the call graph alone.
// ---------------------------------------------------------------------------

#[test]
fn split_function_inversion_reports_interproc_with_full_chain() {
    // `push` holds the version lock while `rebalance` (a different function)
    // takes the barrier: versions → barrier inverts the canonical order, but
    // neither function alone shows a bad pair.
    let fx = Fixture::new(
        "interprocsplit",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn push(&self) {\n        let v = self.lock_versions();\n        self.rebalance();\n        drop(v);\n    }\n    fn rebalance(&self) {\n        let b = self.lock_barrier();\n        let _ = b;\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Anchored at the call site in the outermost caller, under the new rule.
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order/interproc]"), "{stdout}");
    assert!(stdout.contains("inversion"), "{stdout}");
    // The witness chain names every hop site by site.
    assert!(stdout.contains("calls ParameterServer::rebalance"), "{stdout}");
    assert!(stdout.contains("rebalance (crates/ps/src/bad.rs:8: acquires barrier)"), "{stdout}");
    // Not double-reported by the per-function rule.
    assert!(!stdout.contains(" [lock-order] "), "{stdout}");
}

#[test]
fn unsplit_equivalent_still_reports_under_per_function_rule() {
    // The same inversion written inside one function must keep reporting
    // under the per-function rule — and only there.
    let fx = Fixture::new(
        "interprocunsplit",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn push(&self) {\n        let v = self.lock_versions();\n        let b = self.lock_barrier();\n        drop(b);\n        drop(v);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order]"), "{stdout}");
    assert!(!stdout.contains("[lock-order/interproc]"), "{stdout}");
}

#[test]
fn three_hop_chain_is_proven_and_named_site_by_site() {
    // sweep → mid → low: the middle function touches no lock at all, yet
    // the chain shard(1) … shard(0) is an inversion.
    let fx = Fixture::new(
        "interprocthreehop",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn sweep(&self) {\n        let hi = self.lock_shard(1);\n        self.mid();\n        drop(hi);\n    }\n    fn mid(&self) {\n        self.low();\n    }\n    fn low(&self) {\n        let lo = self.lock_shard(0);\n        let _ = lo;\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order/interproc]"), "{stdout}");
    for hop in [
        "sweep (crates/ps/src/bad.rs:4: calls ParameterServer::mid)",
        "mid (crates/ps/src/bad.rs:8: calls ParameterServer::low)",
        "low (crates/ps/src/bad.rs:11: acquires shard(0))",
    ] {
        assert!(stdout.contains(hop), "missing hop {hop:?} in: {stdout}");
    }
}

#[test]
fn cross_file_double_lock_is_proven() {
    // The caller and callee live in different files of the crate; the
    // callee re-acquires the version lock the caller already holds.
    let fx = Fixture::new(
        "interproccrossfile",
        &[
            (
                "crates/ps/src/server.rs",
                "impl ParameterServer {\n    pub fn push(&self) {\n        let v = self.lock_versions();\n        self.audit();\n        drop(v);\n    }\n}\n",
            ),
            (
                "crates/ps/src/audit.rs",
                "impl ParameterServer {\n    pub fn audit(&self) {\n        let v = self.lock_versions();\n        let _ = v;\n    }\n}\n",
            ),
        ],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/server.rs:4: [lock-order/interproc]"), "{stdout}");
    assert!(stdout.contains("re-acquiring versions"), "{stdout}");
    assert!(stdout.contains("audit (crates/ps/src/audit.rs:3: acquires versions)"), "{stdout}");
}

#[test]
fn guard_held_across_callee_condvar_wait_is_proven() {
    // The callee's wait releases only its own receiver; the caller's
    // barrier guard stays held while the thread is parked.
    let fx = Fixture::new(
        "interprocwait",
        &[(
            "crates/ps/src/gate.rs",
            "impl ParameterServer {\n    pub fn drain(&self) {\n        let b = self.lock_barrier();\n        self.gate();\n        drop(b);\n    }\n    fn gate(&self) {\n        let v = self.lock_versions();\n        let v = v.wait_while(&self.cv, |s| s.busy);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/gate.rs:4: [lock-order/interproc]"), "{stdout}");
    assert!(stdout.contains("holding barrier"), "{stdout}");
    assert!(stdout.contains("may block at .wait_while"), "{stdout}");
}

#[test]
fn canonical_order_split_across_functions_is_clean() {
    // The real agl-ps shape: push holds the barrier and calls apply, which
    // takes versions then shards ascending — canonical, so the whole
    // workspace-shaped fixture must exit 0 (zero false positives).
    let fx = Fixture::new(
        "interproccanonical",
        &[(
            "crates/ps/src/server.rs",
            "impl ParameterServer {\n    pub fn push(&self) {\n        let st = self.lock_barrier();\n        self.apply(&st.accum);\n    }\n    fn apply(&self, grads: &[f32]) {\n        let mut v = self.lock_versions();\n        for i in 0..self.n {\n            let s = self.lock_shard(i);\n        }\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(
        out.status.code(),
        Some(0),
        "canonical split chain must be clean; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn method_calls_on_unknown_receivers_do_not_resolve() {
    // `v.push(…)` on a Vec must not resolve to `ParameterServer::push` by
    // name: resolution is conservative, so this fixture is clean even
    // though a misresolution would claim a versions → versions double-lock.
    let fx = Fixture::new(
        "interprocnoresolve",
        &[(
            "crates/ps/src/server.rs",
            "impl ParameterServer {\n    pub fn push(&self) {\n        let v = self.lock_versions();\n        let _ = v;\n    }\n    pub fn record(&self, mut log: Vec<u64>) {\n        let v = self.lock_versions();\n        log.push(v.global_step);\n        drop(v);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(
        out.status.code(),
        Some(0),
        "unknown receivers must stay unresolved; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn interproc_finding_suppressable_at_the_call_site() {
    // The allow escape hatch applies against the anchoring call site's file
    // and line, like any other diagnostic.
    let fx = Fixture::new(
        "interprocallow",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn push(&self) {\n        let v = self.lock_versions();\n        // agl-lint: allow(lock-order/interproc) — fixture\n        self.rebalance();\n        drop(v);\n    }\n    fn rebalance(&self) {\n        let b = self.lock_barrier();\n        let _ = b;\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn rules_flag_lists_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_agl-lint")).arg("--rules").output().expect("run agl-lint --rules");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-panic",
        "safety-comment",
        "no-wallclock",
        "no-raw-spawn",
        "lock-order",
        "no-hot-alloc",
        "lock-order/interproc",
    ] {
        assert!(stdout.contains(rule), "rule {rule} missing from: {stdout}");
    }
}

#[test]
fn file_mode_lints_explicit_paths() {
    // Paths are taken as workspace-relative for rule dispatch, so lint a
    // real file from this repo: the analysis crate's own lib.rs is clean.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let lib = manifest.join("src/lib.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_agl-lint")).arg(&lib).output().expect("run agl-lint <file>");
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}
