//! End-to-end tests of the `agl-lint` binary: seeded-violation fixtures
//! must fail with a `file:line` diagnostic; clean fixtures must exit 0.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A scratch workspace under the system temp dir, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str, files: &[(&str, &str)]) -> Self {
        let root = std::env::temp_dir().join(format!("agl-lint-fixture-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
        for (rel, contents) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("fixture file has parent")).expect("create dirs");
            std::fs::write(path, contents).expect("write fixture file");
        }
        Self { root }
    }

    fn lint(&self) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_agl-lint"))
            .args(["--workspace"])
            .arg(&self.root)
            .output()
            .expect("run agl-lint")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_unwrap_violation_fails_with_file_line() {
    let fx = Fixture::new(
        "unwrap",
        &[("crates/mapreduce/src/bad.rs", "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/mapreduce/src/bad.rs:2: [no-panic]"), "missing file:line diagnostic in: {stdout}");
}

#[test]
fn clean_fixture_exits_zero() {
    let fx = Fixture::new(
        "clean",
        &[("crates/mapreduce/src/good.rs", "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn allow_comment_suppresses_in_binary_run() {
    let fx = Fixture::new(
        "allowed",
        &[(
            "crates/flat/src/ok.rs",
            "pub fn f(x: Option<u32>) -> u32 {\n    // agl-lint: allow(no-panic) — fixture\n    x.unwrap()\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn missing_safety_comment_reported_everywhere() {
    // safety-comment applies to all crates, not just pipeline libs.
    let fx = Fixture::new(
        "unsafe",
        &[("crates/util/src/lib.rs", "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n")],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[safety-comment]"), "{stdout}");
}

#[test]
fn tests_are_exempt_from_no_panic() {
    let fx =
        Fixture::new("exempt", &[("crates/mapreduce/tests/it.rs", "#[test]\nfn t() {\n    Some(1u32).unwrap();\n}\n")]);
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn seeded_lock_order_inversion_fails_with_file_line() {
    let fx = Fixture::new(
        "lockorder",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn sweep(&self) {\n        let a = self.lock_shard(1);\n        let b = self.lock_shard(0);\n        drop(b);\n        drop(a);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order]"), "missing diagnostic in: {stdout}");
    assert!(stdout.contains("inversion"), "{stdout}");
    assert!(stdout.contains("shard(0)") && stdout.contains("shard(1)"), "{stdout}");
}

#[test]
fn seeded_lock_across_send_fails() {
    let fx = Fixture::new(
        "lockacrosssend",
        &[(
            "crates/ps/src/bad.rs",
            "impl ParameterServer {\n    pub fn notify(&self, tx: &std::sync::mpsc::Sender<u64>) {\n        let v = self.lock_versions();\n        let _ = tx.send(v.global_step);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/bad.rs:4: [lock-order]"), "{stdout}");
    assert!(stdout.contains(".send("), "{stdout}");
}

#[test]
fn condvar_wait_on_own_guard_is_clean() {
    // The SSP gate pattern in agl-ps: block on a condvar *through* the
    // guard. The wait releases and reacquires the receiver's lock, so this
    // must lint clean — it is not a guard-held-across-block violation.
    let fx = Fixture::new(
        "condvarclean",
        &[(
            "crates/ps/src/gate.rs",
            "impl ParameterServer {\n    pub fn push_gate(&self, worker: usize, slack: u64) {\n        let mut v = self.lock_versions();\n        v.wait_while(&self.ssp_cv, |vt| vt.ssp_apply_blocked(worker, slack));\n        v.global_step += 1;\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(
        out.status.code(),
        Some(0),
        "condvar wait should be exempt; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn condvar_wait_exempt_but_send_on_same_guard_still_flagged() {
    // The exemption is for the wait only: the same guard held across a
    // `.send(…)` two lines later must still fail with file:line.
    let fx = Fixture::new(
        "condvarsend",
        &[(
            "crates/ps/src/gate.rs",
            "impl ParameterServer {\n    pub fn push_gate(&self, tx: &std::sync::mpsc::Sender<u64>) {\n        let mut v = self.lock_versions();\n        v.wait_while(&self.ssp_cv, |vt| vt.blocked());\n        let _ = tx.send(v.global_step);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/gate.rs:5: [lock-order]"), "{stdout}");
    assert!(stdout.contains(".send("), "{stdout}");
    // Exactly one finding: the wait on line 4 is not reported.
    assert!(!stdout.contains("gate.rs:4:"), "{stdout}");
}

#[test]
fn condvar_wait_holding_second_guard_fails() {
    let fx = Fixture::new(
        "condvarheld",
        &[(
            "crates/ps/src/gate.rs",
            "impl ParameterServer {\n    pub fn bad(&self) {\n        let b = self.lock_barrier();\n        let v = self.lock_versions();\n        v.wait_while(&self.cv, |s| s.busy);\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/ps/src/gate.rs:5: [lock-order]"), "{stdout}");
    assert!(stdout.contains("barrier"), "{stdout}");
}

#[test]
fn seeded_hot_loop_allocation_fails_with_file_line() {
    let fx = Fixture::new(
        "hotalloc",
        &[(
            "crates/tensor/src/partition.rs",
            "impl ExecCtx {\n    pub fn spmm(&self, rows: &[Vec<f32>]) -> Vec<f32> {\n        let mut out = Vec::new();\n        for r in rows {\n            let copy = r.clone();\n            out.extend(copy);\n        }\n        out\n    }\n}\n",
        )],
    );
    let out = fx.lint();
    assert_eq!(out.status.code(), Some(1), "expected exit 1, got {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/tensor/src/partition.rs:5: [no-hot-alloc]"), "missing diagnostic in: {stdout}");
    assert!(stdout.contains("hot fn spmm"), "{stdout}");
    // The pre-loop Vec::new on line 3 is fine: allocation outside the loop.
    assert!(!stdout.contains("partition.rs:3:"), "{stdout}");
}

#[test]
fn rules_flag_lists_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_agl-lint")).arg("--rules").output().expect("run agl-lint --rules");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["no-panic", "safety-comment", "no-wallclock", "no-raw-spawn", "lock-order", "no-hot-alloc"] {
        assert!(stdout.contains(rule), "rule {rule} missing from: {stdout}");
    }
}

#[test]
fn file_mode_lints_explicit_paths() {
    // Paths are taken as workspace-relative for rule dispatch, so lint a
    // real file from this repo: the analysis crate's own lib.rs is clean.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let lib = manifest.join("src/lib.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_agl-lint")).arg(&lib).output().expect("run agl-lint <file>");
    assert_eq!(out.status.code(), Some(0), "stdout: {}", String::from_utf8_lossy(&out.stdout));
}
