//! `agl-lint` — the workspace lint driver.
//!
//! ```text
//! agl-lint --workspace            # lint the enclosing cargo workspace
//! agl-lint --workspace <root>     # lint an explicit workspace root
//! agl-lint <file.rs> …            # lint specific files as one set (paths
//!                                 # taken as workspace-relative for rule
//!                                 # dispatch; crate-scope rules see the
//!                                 # whole set)
//! agl-lint --rules                # list registered rules (file and crate)
//! agl-lint --explain <rule>       # print a rule's catalog entry + example
//! ```
//!
//! Exits 0 when clean, 1 when any diagnostic fires, 2 on usage/IO errors.
//! Diagnostics print as `path:line: [rule] message`, followed by a
//! per-rule count summary on stderr so a newly nonzero rule is visible at
//! a glance.

use agl_analysis::{
    crate_registry, crate_rule_by_name, find_workspace_root, lint_sources, lint_workspace, registry, rule_by_name,
    Diagnostic,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in registry() {
            println!("{:<22} {}", rule.name, rule.description);
        }
        for rule in crate_registry() {
            println!("{:<22} {}", rule.name, rule.description);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(pos) = args.iter().position(|a| a == "--explain") {
        let Some(name) = args.get(pos + 1) else {
            eprintln!("agl-lint: --explain needs a rule name (see --rules)");
            return ExitCode::from(2);
        };
        let entry = rule_by_name(name)
            .map(|r| (r.name, r.description, r.example))
            .or_else(|| crate_rule_by_name(name).map(|r| (r.name, r.description, r.example)));
        let Some((rule, description, example)) = entry else {
            eprintln!("agl-lint: no rule named `{name}` (see --rules)");
            return ExitCode::from(2);
        };
        println!("{rule}");
        println!();
        println!("{description}");
        println!();
        println!("Example:");
        for line in example.lines() {
            println!("    {line}");
        }
        return ExitCode::SUCCESS;
    }

    let result = if let Some(pos) = args.iter().position(|a| a == "--workspace") {
        let root = match args.get(pos + 1) {
            Some(p) => PathBuf::from(p),
            None => {
                let cwd = match std::env::current_dir() {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("agl-lint: cannot determine working directory: {e}");
                        return ExitCode::from(2);
                    }
                };
                match find_workspace_root(&cwd) {
                    Some(r) => r,
                    None => {
                        eprintln!("agl-lint: no enclosing cargo workspace found from {}", cwd.display());
                        return ExitCode::from(2);
                    }
                }
            }
        };
        lint_workspace(&root)
    } else if args.is_empty() {
        print_usage();
        return ExitCode::from(2);
    } else {
        lint_files(&args)
    };

    match result {
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            print_rule_counts(&diags);
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!("agl-lint: {} violation(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("agl-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// One line per registered rule with its finding count — zeros included, so
/// tier-1 logs show every rule ran and a newly nonzero one stands out.
fn print_rule_counts(diags: &[Diagnostic]) {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in registry() {
        counts.insert(rule.name, 0);
    }
    for rule in crate_registry() {
        counts.insert(rule.name, 0);
    }
    for d in diags {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    let summary: Vec<String> = counts.iter().map(|(name, n)| format!("{name}={n}")).collect();
    eprintln!("agl-lint: per-rule findings: {}", summary.join(" "));
}

fn lint_files(paths: &[String]) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for p in paths {
        let src = std::fs::read_to_string(p)?;
        let rel = p.trim_start_matches("./").replace('\\', "/");
        files.push((rel, src));
    }
    Ok(lint_sources(&files))
}

fn print_usage() {
    eprintln!("usage: agl-lint --workspace [root] | --rules | --explain <rule> | <file.rs>…");
}
