//! The lint rule registry.
//!
//! Rules come in two scopes. A **file rule** ([`Rule`], registered in
//! [`registry`]) is a pure function from one scanned file (plus its
//! workspace-relative path) to diagnostics. A **crate rule**
//! ([`CrateRule`], registered in [`crate_registry`]) sees every scanned
//! file of the lint run at once — that is what lets the interprocedural
//! lock-order pass resolve a call in one file to a definition in another.
//! Adding a rule is adding an entry to the right registry — the driver,
//! escape hatch, and binary need no changes.
//!
//! ## Rule catalog
//!
//! Each rule below is shown with a minimal fragment that triggers it.
//!
//! **`no-panic`** — no `.unwrap()`/`.expect(…)`/`panic!` in library code of
//! the pipeline crates:
//! ```text
//! // crates/flat/src/pipeline.rs
//! let shard = shards.get(i).unwrap();          // <-- no-panic
//! ```
//!
//! **`safety-comment`** — every `unsafe` needs a `// SAFETY:` comment on
//! the same line or directly above:
//! ```text
//! let x = unsafe { *ptr };                      // <-- safety-comment
//! ```
//!
//! **`no-wallclock`** — no `Instant::now`/`SystemTime::now` outside the
//! `agl-obs` clock implementation:
//! ```text
//! let t0 = std::time::Instant::now();           // <-- no-wallclock
//! ```
//!
//! **`no-raw-spawn`** — no raw `std::thread::spawn` outside sanctioned
//! executor modules (scoped threads are fine):
//! ```text
//! std::thread::spawn(move || pump(rx));         // <-- no-raw-spawn
//! ```
//!
//! **`lock-order`** — per-function lock discipline in `agl-ps`: canonical
//! acquisition order, no double-locks, no guard held across a blocking op:
//! ```text
//! let s = self.lock_shard(0);
//! let v = self.lock_versions();                 // <-- lock-order (inversion)
//! ```
//!
//! **`lock-order/interproc`** — the same discipline proven across function
//! boundaries via the workspace call graph (crate scope):
//! ```text
//! fn push(&self) {
//!     let v = self.lock_versions();
//!     self.rebalance();                         // <-- lock-order/interproc
//! }
//! fn rebalance(&self) {
//!     let b = self.lock_barrier();              // versions → barrier inverts
//! }
//! ```
//!
//! **`no-hot-alloc`** — no allocation tokens inside loop bodies of the
//! registered hot functions:
//! ```text
//! fn spmm(&self) {
//!     for row in rows {
//!         let copy = row.to_vec();              // <-- no-hot-alloc
//!     }
//! }
//! ```
//!
//! **`atomics`** — happens-before discipline for atomics (crate scope):
//! every atomic classified as cross-thread (captured by a spawn closure,
//! declared `static`, or reachable through an `Arc`) must not be accessed
//! `Relaxed` without a lock, `SeqCst` fence, or acquire/release pairing;
//! mixed orderings on one atomic and non-atomic spawn-write/outside-read
//! pairs are flagged too. `TrackedAtomic<…>` declarations are exempt — the
//! dynamic vector-clock tracker (`agl_ps::hb`) owns those at runtime:
//! ```text
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         self.ready.store(1, Ordering::Relaxed);   // <-- atomics
//!     });
//! });
//! ```
//!
//! ## Escape hatch
//!
//! Any diagnostic can be suppressed with an inline comment on the same
//! line or the line directly above:
//!
//! ```text
//! // agl-lint: allow(no-panic) — justification here
//! ```
//!
//! The justification is not parsed, but reviewers expect one.

use crate::atomics;
use crate::lockgraph;
use crate::scanner::{test_regions, ScannedFile};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired ([`Rule::name`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A scanned file plus the path-derived facts rules dispatch on.
pub struct FileView<'a> {
    /// Workspace-relative path, `/`-separated (e.g. `crates/flat/src/pipeline.rs`).
    pub path: &'a str,
    /// The file's code/comment channels (see [`crate::scanner::scan`]).
    pub scanned: &'a ScannedFile,
    /// Per-line: inside a `#[cfg(test)] mod … { }` region.
    pub in_test_region: Vec<bool>,
}

impl<'a> FileView<'a> {
    /// Build a view over a scanned file, computing its test-region mask.
    pub fn new(path: &'a str, scanned: &'a ScannedFile) -> Self {
        let in_test_region = test_regions(scanned);
        Self { path, scanned, in_test_region }
    }

    /// Integration tests, benches, examples, and build scripts are exempt
    /// from code-hygiene rules.
    pub fn is_exempt_target(&self) -> bool {
        self.path.contains("/tests/")
            || self.path.contains("/benches/")
            || self.path.contains("/examples/")
            || self.path.starts_with("examples/")
            || self.path.starts_with("tests/")
            || self.path.ends_with("build.rs")
    }

    /// Library code of the AGL pipeline crates — where a stray panic kills
    /// a whole distributed task instead of surfacing an error the retry
    /// machinery can act on.
    pub fn is_pipeline_lib(&self) -> bool {
        const PIPELINE: &[&str] = &[
            "crates/mapreduce/src/",
            "crates/flat/src/",
            "crates/trainer/src/",
            "crates/infer/src/",
            "crates/ps/src/",
            "crates/tensor/src/",
        ];
        PIPELINE.iter().any(|p| self.path.starts_with(p)) && !self.is_exempt_target()
    }
}

/// A registered file-scope lint rule.
pub struct Rule {
    /// Stable rule id — what `agl-lint: allow(<name>)` names.
    pub name: &'static str,
    /// One-paragraph description, shown by `agl-lint --rules`.
    pub description: &'static str,
    /// A minimal triggering fragment, shown by `agl-lint --explain <name>`.
    pub example: &'static str,
    /// The check: one file in, diagnostics out.
    pub check: fn(&FileView) -> Vec<Diagnostic>,
}

/// A registered crate-scope lint rule: sees every file of the lint run at
/// once, so it can resolve cross-file facts (the call graph) that no
/// single-file rule can.
pub struct CrateRule {
    /// Stable rule id — what `agl-lint: allow(<name>)` names.
    pub name: &'static str,
    /// One-paragraph description, shown by `agl-lint --rules`.
    pub description: &'static str,
    /// A minimal triggering fragment, shown by `agl-lint --explain <name>`.
    pub example: &'static str,
    /// The check: the whole file set in, diagnostics out.
    pub check: fn(&[FileView]) -> Vec<Diagnostic>,
}

/// All rules, in the order they run.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            name: "no-panic",
            description: "no .unwrap()/.expect(…)/panic! in library code of pipeline crates \
                          (a panic in a task is an unreportable failure; return an error the \
                          retry machinery can see)",
            example: "let shard = shards.get(i).unwrap();          // <-- no-panic",
            check: check_no_panic,
        },
        Rule {
            name: "safety-comment",
            description: "every `unsafe` must be preceded by a `// SAFETY:` comment stating \
                          the invariant that makes it sound",
            example: "let x = unsafe { *ptr };                      // <-- safety-comment",
            check: check_safety_comment,
        },
        Rule {
            name: "no-wallclock",
            description: "no Instant::now/SystemTime::now anywhere outside the agl-obs clock \
                          module — all timing routes through agl_obs::Clock, so a \
                          logical-clock run is bit-reproducible end to end (retried tasks, \
                          recorded traces)",
            example: "let t0 = std::time::Instant::now();           // <-- no-wallclock",
            check: check_no_wallclock,
        },
        Rule {
            name: "no-raw-spawn",
            description: "no raw std::thread::spawn outside sanctioned executor modules; use \
                          std::thread::scope so panics propagate and joins are guaranteed",
            example: "std::thread::spawn(move || pump(rx));         // <-- no-raw-spawn",
            check: check_no_raw_spawn,
        },
        Rule {
            name: "lock-order",
            description: "agl-ps lock acquisitions must follow the canonical order barrier → \
                          versions → shard(i) ascending, through the tracked wrappers, and \
                          never hold a guard across .send(…)/.recv(…)/spawn(…) or across a \
                          condvar wait on a different guard (the wait's own receiver is \
                          release+reacquire, not a violation)",
            example: "let s = self.lock_shard(0);\nlet v = self.lock_versions();                 // <-- lock-order (inversion)",
            check: check_lock_order,
        },
        Rule {
            name: "no-hot-alloc",
            description: "no allocation (Vec::new/vec!/.to_vec/.clone/format!/.collect) inside \
                          loop bodies of the aggregation kernels and reducer hot functions",
            example: "fn spmm(&self) {\n    for row in rows {\n        let copy = row.to_vec();              // <-- no-hot-alloc\n    }\n}",
            check: check_no_hot_alloc,
        },
    ]
}

/// All crate-scope rules, in the order they run (after the file rules).
pub fn crate_registry() -> &'static [CrateRule] {
    &[
        CrateRule {
            name: "lock-order/interproc",
            description: "the lock-order discipline proven across function boundaries: a \
                          workspace call graph over agl-ps resolves `self.f(…)`, `Type::f(…)` \
                          and bare calls, lock summaries propagate bottom-up over its SCCs, \
                          and every call site's held guards are judged against what the callee \
                          acquires or blocks on transitively; findings name the full call \
                          chain site by site",
            example: "fn push(&self) {\n    let v = self.lock_versions();\n    self.rebalance();                         // <-- lock-order/interproc\n}\nfn rebalance(&self) {\n    let b = self.lock_barrier();              // versions → barrier inverts\n}",
            check: check_lock_order_interproc,
        },
        CrateRule {
            name: "atomics",
            description: "happens-before discipline for atomics: each atomic is classified as \
                          thread-local or cross-thread (captured by a spawn closure, declared \
                          static, or reachable through an Arc — spawn-reachability propagates \
                          over the workspace call graph); a cross-thread Relaxed access with \
                          no lock, SeqCst fence, or acquire/release pairing is flagged, as \
                          are mixed orderings on one atomic and non-atomic variables written \
                          in a spawn closure but read outside it with no join on the path; \
                          TrackedAtomic<…> declarations are exempt (the agl_ps::hb \
                          vector-clock tracker checks those at runtime)",
            example: "std::thread::scope(|s| {\n    s.spawn(|| {\n        self.ready.store(1, Ordering::Relaxed);   // <-- atomics\n    });\n});",
            check: check_atomics,
        },
    ]
}

/// Look up a file-scope rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    registry().iter().find(|r| r.name == name)
}

/// Look up a crate-scope rule by name.
pub fn crate_rule_by_name(name: &str) -> Option<&'static CrateRule> {
    crate_registry().iter().find(|r| r.name == name)
}

fn diag(view: &FileView, rule: &'static str, line: usize, message: String) -> Diagnostic {
    Diagnostic { rule, path: view.path.to_string(), line: line + 1, message }
}

fn check_no_panic(view: &FileView) -> Vec<Diagnostic> {
    if !view.is_pipeline_lib() {
        return Vec::new();
    }
    const PATTERNS: &[(&str, &str)] =
        &[(".unwrap()", "call to .unwrap()"), (".expect(", "call to .expect(…)"), ("panic!", "explicit panic!")];
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if view.in_test_region[i] {
            continue;
        }
        for (pat, what) in PATTERNS {
            if code.contains(pat) {
                out.push(diag(view, "no-panic", i, format!("{what} in pipeline library code")));
            }
        }
    }
    out
}

fn check_safety_comment(view: &FileView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if !has_token(code, "unsafe") {
            continue;
        }
        // Accept SAFETY: on the same line or on the nearest non-blank line
        // above (comment channel), skipping attribute lines.
        let mut justified = view.scanned.comments[i].contains("SAFETY:");
        let mut j = i;
        while !justified && j > 0 {
            j -= 1;
            if view.scanned.comments[j].contains("SAFETY:") {
                justified = true;
                break;
            }
            let code_above = view.scanned.code[j].trim();
            if !code_above.is_empty() && !code_above.starts_with("#[") {
                break; // real code intervenes — the comment doesn't cover us
            }
        }
        if !justified {
            out.push(diag(view, "safety-comment", i, "`unsafe` without a preceding // SAFETY: comment".to_string()));
        }
    }
    out
}

/// The one module sanctioned to read the OS clock: `agl-obs` wraps it
/// behind [`agl_obs::Clock`], which a logical-clock run swaps out
/// wholesale. Everything else — pipeline crates, binaries, the bench
/// drivers' measured sections — must take time through a `Clock` so the
/// whole workspace stays bit-reproducible under `Clock::logical()`.
fn is_clock_impl(view: &FileView) -> bool {
    view.path.starts_with("crates/obs/")
}

fn check_no_wallclock(view: &FileView) -> Vec<Diagnostic> {
    if view.is_exempt_target() || is_clock_impl(view) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if view.in_test_region[i] {
            continue;
        }
        for pat in ["Instant::now", "SystemTime::now"] {
            if code.contains(pat) {
                out.push(diag(view, "no-wallclock", i, format!("{pat} outside agl-obs; take time via agl_obs::Clock")));
            }
        }
    }
    out
}

/// Modules allowed to call `std::thread::spawn` directly (long-lived
/// executor/prefetcher threads whose lifecycle is managed explicitly).
const SANCTIONED_SPAWNERS: &[&str] = &["crates/trainer/src/pipeline.rs"];

fn check_no_raw_spawn(view: &FileView) -> Vec<Diagnostic> {
    if view.is_exempt_target() || SANCTIONED_SPAWNERS.contains(&view.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if view.in_test_region[i] {
            continue;
        }
        if code.contains("thread::spawn") {
            out.push(diag(
                view,
                "no-raw-spawn",
                i,
                "raw thread::spawn outside a sanctioned executor module".to_string(),
            ));
        }
    }
    out
}

/// The dynamic trackers themselves are the modules allowed to touch raw
/// locks (they *implement* the tracked wrappers): the lock-order tracker
/// and the vector-clock happens-before tracker.
const LOCK_IMPL: &[&str] = &["crates/ps/src/locks.rs", "crates/ps/src/hb.rs"];

/// Is this file in scope for the lock-order rules? (`agl-ps` library
/// sources, minus the tracker implementations, which *are* the wrappers.)
fn in_lock_scope(view: &FileView) -> bool {
    view.path.starts_with("crates/ps/src/") && !LOCK_IMPL.contains(&view.path) && !view.is_exempt_target()
}

fn check_lock_order(view: &FileView) -> Vec<Diagnostic> {
    if !in_lock_scope(view) {
        return Vec::new();
    }
    lockgraph::analyze(view.scanned, &[])
        .lock_findings
        .into_iter()
        .filter(|f| !view.in_test_region[f.line])
        .map(|f| diag(view, "lock-order", f.line, format!("in fn {}: {}", f.func, f.message)))
        .collect()
}

/// The interprocedural lock-order pass: analyze every in-scope `agl-ps`
/// file, assemble the records into a call graph, and report only chains
/// spanning ≥ 2 functions — intra-function chains are the per-function
/// [`check_lock_order`]'s job, so nothing double-reports.
fn check_lock_order_interproc(views: &[FileView]) -> Vec<Diagnostic> {
    let in_scope: Vec<&FileView> = views.iter().filter(|v| in_lock_scope(v)).collect();
    if in_scope.is_empty() {
        return Vec::new();
    }
    let analyses: Vec<lockgraph::Analysis> = in_scope.iter().map(|v| lockgraph::analyze(v.scanned, &[])).collect();
    let files: Vec<lockgraph::FileLocks> = in_scope
        .iter()
        .zip(&analyses)
        .map(|(v, a)| lockgraph::FileLocks { path: v.path, analysis: a, in_test: &v.in_test_region })
        .collect();
    lockgraph::interproc(&files, false)
        .into_iter()
        .filter(|f| f.chain.len() >= 2)
        .map(|f| Diagnostic {
            rule: "lock-order/interproc",
            path: f.file.clone(),
            line: f.line + 1,
            message: format!("in fn {}: {}", f.func, f.message),
        })
        .collect()
}

/// Is this file in scope for the atomics pass? All library sources — the
/// audited atomic sites span ps, obs, tensor, and mapreduce — except the
/// vector-clock tracker itself, which implements `TrackedAtomic` and
/// manipulates raw atomics and orderings by design.
fn in_atomics_scope(view: &FileView) -> bool {
    view.path != "crates/ps/src/hb.rs" && !view.is_exempt_target()
}

/// The happens-before atomics pass: walk every in-scope file, then run the
/// crate-scope classification (receiver resolution, Arc/static/spawn escape
/// analysis, spawn-reachability over the call graph) and judge the sites.
fn check_atomics(views: &[FileView]) -> Vec<Diagnostic> {
    let in_scope: Vec<&FileView> = views.iter().filter(|v| in_atomics_scope(v)).collect();
    if in_scope.is_empty() {
        return Vec::new();
    }
    let analyses: Vec<atomics::Analysis> = in_scope.iter().map(|v| atomics::analyze(v.scanned)).collect();
    let files: Vec<atomics::FileAtomics> = in_scope
        .iter()
        .zip(&analyses)
        .map(|(v, a)| atomics::FileAtomics { path: v.path, analysis: a, in_test: &v.in_test_region })
        .collect();
    atomics::interproc(&files)
        .into_iter()
        .map(|f| Diagnostic {
            rule: "atomics",
            path: f.file.clone(),
            line: f.line + 1,
            message: format!("in fn {}: {}", f.func, f.message),
        })
        .collect()
}

/// The hot functions of the §3.3.2 aggregation path and the per-group
/// reducer bodies: allocation inside their loops multiplies with nnz or
/// group size, which is exactly the skew the paper optimises against.
const HOT_FUNCTIONS: &[(&str, &[&str])] = &[
    ("crates/tensor/src/partition.rs", &["spmm", "for_each_row"]),
    ("crates/tensor/src/csr.rs", &["spmm", "spmm_rows_into", "t_spmm"]),
    ("crates/flat/src/pipeline.rs", &["reduce"]),
    ("crates/ps/src/server.rs", &["apply", "apply_locked"]),
];

fn check_no_hot_alloc(view: &FileView) -> Vec<Diagnostic> {
    let Some((_, fns)) = HOT_FUNCTIONS.iter().find(|(p, _)| *p == view.path) else {
        return Vec::new();
    };
    lockgraph::analyze(view.scanned, fns)
        .alloc_sites
        .into_iter()
        .filter(|s| !view.in_test_region[s.line])
        .map(|s| {
            diag(
                view,
                "no-hot-alloc",
                s.line,
                format!("allocation `{}` inside a loop of hot fn {}", s.pattern.trim_end_matches('('), s.func),
            )
        })
        .collect()
}

/// `needle` occurs in `hay` as a whole word (not an identifier substring).
fn has_token(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok = end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        let scanned = scan(src);
        let view = FileView::new(path, &scanned);
        registry().iter().flat_map(|r| (r.check)(&view)).collect()
    }

    #[test]
    fn unwrap_flagged_in_pipeline_lib_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_one("crates/flat/src/foo.rs", src).len(), 1);
        assert!(lint_one("crates/datasets/src/foo.rs", src).is_empty());
        assert!(lint_one("crates/flat/tests/foo.rs", src).is_empty());
        assert!(lint_one("crates/flat/examples/foo.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_region_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint_one("crates/flat/src/foo.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n";
        // (On a non-ps path: inside crates/ps/src a raw .lock() would be a
        // lock-order finding in its own right.)
        assert!(lint_one("crates/mapreduce/src/foo.rs", src).is_empty());
    }

    #[test]
    fn expect_and_panic_flagged() {
        let d = lint_one("crates/mapreduce/src/foo.rs", "fn f(x: Option<u8>) { x.expect(\"x\"); panic!(\"no\"); }\n");
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert_eq!(lint_one("crates/datasets/src/x.rs", bad).len(), 1);
        assert!(lint_one("crates/datasets/src/x.rs", good).is_empty());
    }

    #[test]
    fn wallclock_flagged_workspace_wide_outside_obs() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        let d = lint_one("crates/foo/src/engine.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-wallclock");
        // Binaries are library code for this rule: src/bin is not exempt.
        let sys = "fn f() { let t = std::time::SystemTime::now(); let _ = t; }\n";
        assert_eq!(lint_one("crates/bench/src/bin/headline.rs", sys).len(), 1);
        // The clock implementation is the one sanctioned caller.
        assert!(lint_one("crates/obs/src/clock.rs", src).is_empty());
        // Benches, tests, and examples read clocks legitimately.
        assert!(lint_one("crates/bench/benches/micro.rs", src).is_empty());
        assert!(lint_one("crates/flat/tests/foo.rs", src).is_empty());
        // ... as do #[cfg(test)] regions inside library files.
        let test_only = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(lint_one("crates/foo/src/engine.rs", test_only).is_empty());
        // A mention in a comment or string is not a call.
        let comment_only = "// upstream uses Instant::now for this\nfn f() {}\n";
        assert!(lint_one("crates/foo/src/engine.rs", comment_only).is_empty());
    }

    #[test]
    fn lock_order_rule_scoped_to_ps_sources() {
        let src = "fn bad(&self) {\n    let a = self.lock_shard(1);\n    let b = self.lock_shard(0);\n}\n";
        let d = lint_one("crates/ps/src/server.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "lock-order");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("fn bad"), "{}", d[0].message);
        // Out of scope: other crates, the tracker implementation, tests.
        assert!(lint_one("crates/trainer/src/dist.rs", src).is_empty());
        assert!(lint_one("crates/ps/src/locks.rs", src).is_empty());
        assert!(lint_one("crates/ps/tests/lock_order.rs", src).is_empty());
    }

    #[test]
    fn untracked_raw_lock_flagged_in_ps_only() {
        let src = "fn f(&self) {\n    let g = lock_ignoring_poison(&self.state);\n    let _ = g;\n}\n";
        let d = lint_one("crates/ps/src/server.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lock-order");
        assert!(lint_one("crates/mapreduce/src/engine.rs", src).is_empty());
    }

    #[test]
    fn hot_alloc_rule_scoped_to_hot_functions() {
        let src = "fn spmm(&self) {\n    for r in rows {\n        let v = x.to_vec();\n    }\n}\nfn helper(&self) {\n    for r in rows {\n        let v = x.to_vec();\n    }\n}\n";
        let d = lint_one("crates/tensor/src/partition.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "no-hot-alloc");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("hot fn spmm"), "{}", d[0].message);
        // Same code in a file with no registered hot functions: clean.
        assert!(lint_one("crates/tensor/src/matrix.rs", src).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_outside_sanctioned() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint_one("crates/ps/src/foo.rs", src).len(), 1);
        assert!(lint_one("crates/trainer/src/pipeline.rs", src).is_empty());
        // Scoped spawns are fine.
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(lint_one("crates/ps/src/foo.rs", scoped).is_empty());
    }

    #[test]
    fn patterns_in_strings_and_comments_ignored() {
        let src = "fn f() -> &'static str { \"call .unwrap() and panic!\" } // .expect( here\n";
        assert!(lint_one("crates/flat/src/foo.rs", src).is_empty());
    }
}
