//! The lint rule registry.
//!
//! Each rule is a pure function from a scanned file (plus its
//! workspace-relative path) to diagnostics. Rules are registered in
//! [`registry`]; adding a rule is adding an entry there — the driver,
//! escape hatch, and binary need no changes.
//!
//! ## Escape hatch
//!
//! Any diagnostic can be suppressed with an inline comment on the same
//! line or the line directly above:
//!
//! ```text
//! // agl-lint: allow(no-panic) — justification here
//! ```
//!
//! The justification is not parsed, but reviewers expect one.

use crate::scanner::{test_regions, ScannedFile};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired ([`Rule::name`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A scanned file plus the path-derived facts rules dispatch on.
pub struct FileView<'a> {
    /// Workspace-relative path, `/`-separated (e.g. `crates/flat/src/pipeline.rs`).
    pub path: &'a str,
    pub scanned: &'a ScannedFile,
    /// Per-line: inside a `#[cfg(test)] mod … { }` region.
    pub in_test_region: Vec<bool>,
}

impl<'a> FileView<'a> {
    pub fn new(path: &'a str, scanned: &'a ScannedFile) -> Self {
        let in_test_region = test_regions(scanned);
        Self { path, scanned, in_test_region }
    }

    /// Integration tests, benches, examples, and build scripts are exempt
    /// from code-hygiene rules.
    pub fn is_exempt_target(&self) -> bool {
        self.path.contains("/tests/")
            || self.path.contains("/benches/")
            || self.path.contains("/examples/")
            || self.path.starts_with("examples/")
            || self.path.starts_with("tests/")
            || self.path.ends_with("build.rs")
    }

    /// Library code of the AGL pipeline crates — where a stray panic kills
    /// a whole distributed task instead of surfacing an error the retry
    /// machinery can act on.
    pub fn is_pipeline_lib(&self) -> bool {
        const PIPELINE: &[&str] = &[
            "crates/mapreduce/src/",
            "crates/flat/src/",
            "crates/trainer/src/",
            "crates/infer/src/",
            "crates/ps/src/",
            "crates/tensor/src/",
        ];
        PIPELINE.iter().any(|p| self.path.starts_with(p)) && !self.is_exempt_target()
    }
}

/// A registered lint rule.
pub struct Rule {
    /// Stable rule id — what `agl-lint: allow(<name>)` names.
    pub name: &'static str,
    pub description: &'static str,
    pub check: fn(&FileView) -> Vec<Diagnostic>,
}

/// All rules, in the order they run.
pub fn registry() -> &'static [Rule] {
    &[
        Rule {
            name: "no-panic",
            description: "no .unwrap()/.expect(…)/panic! in library code of pipeline crates \
                          (a panic in a task is an unreportable failure; return an error the \
                          retry machinery can see)",
            check: check_no_panic,
        },
        Rule {
            name: "safety-comment",
            description: "every `unsafe` must be preceded by a `// SAFETY:` comment stating \
                          the invariant that makes it sound",
            check: check_safety_comment,
        },
        Rule {
            name: "no-wallclock",
            description: "no Instant::now/SystemTime::now in determinism-critical modules \
                          (mapreduce::engine, flat::pipeline, infer::pipeline) — retried \
                          tasks must be bit-reproducible",
            check: check_no_wallclock,
        },
        Rule {
            name: "no-raw-spawn",
            description: "no raw std::thread::spawn outside sanctioned executor modules; use \
                          std::thread::scope so panics propagate and joins are guaranteed",
            check: check_no_raw_spawn,
        },
    ]
}

/// Look up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    registry().iter().find(|r| r.name == name)
}

fn diag(view: &FileView, rule: &'static str, line: usize, message: String) -> Diagnostic {
    Diagnostic { rule, path: view.path.to_string(), line: line + 1, message }
}

fn check_no_panic(view: &FileView) -> Vec<Diagnostic> {
    if !view.is_pipeline_lib() {
        return Vec::new();
    }
    const PATTERNS: &[(&str, &str)] =
        &[(".unwrap()", "call to .unwrap()"), (".expect(", "call to .expect(…)"), ("panic!", "explicit panic!")];
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if view.in_test_region[i] {
            continue;
        }
        for (pat, what) in PATTERNS {
            if code.contains(pat) {
                out.push(diag(view, "no-panic", i, format!("{what} in pipeline library code")));
            }
        }
    }
    out
}

fn check_safety_comment(view: &FileView) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if !has_token(code, "unsafe") {
            continue;
        }
        // Accept SAFETY: on the same line or on the nearest non-blank line
        // above (comment channel), skipping attribute lines.
        let mut justified = view.scanned.comments[i].contains("SAFETY:");
        let mut j = i;
        while !justified && j > 0 {
            j -= 1;
            if view.scanned.comments[j].contains("SAFETY:") {
                justified = true;
                break;
            }
            let code_above = view.scanned.code[j].trim();
            if !code_above.is_empty() && !code_above.starts_with("#[") {
                break; // real code intervenes — the comment doesn't cover us
            }
        }
        if !justified {
            out.push(diag(view, "safety-comment", i, "`unsafe` without a preceding // SAFETY: comment".to_string()));
        }
    }
    out
}

/// Modules where wall-clock reads would break the determinism that the
/// MapReduce retry story and the train/infer equivalence tests rely on.
const DETERMINISM_CRITICAL: &[&str] =
    &["crates/mapreduce/src/engine.rs", "crates/flat/src/pipeline.rs", "crates/infer/src/pipeline.rs"];

fn check_no_wallclock(view: &FileView) -> Vec<Diagnostic> {
    if !DETERMINISM_CRITICAL.contains(&view.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if view.in_test_region[i] {
            continue;
        }
        for pat in ["Instant::now", "SystemTime::now"] {
            if code.contains(pat) {
                out.push(diag(view, "no-wallclock", i, format!("{pat} in a determinism-critical module")));
            }
        }
    }
    out
}

/// Modules allowed to call `std::thread::spawn` directly (long-lived
/// executor/prefetcher threads whose lifecycle is managed explicitly).
const SANCTIONED_SPAWNERS: &[&str] = &["crates/trainer/src/pipeline.rs"];

fn check_no_raw_spawn(view: &FileView) -> Vec<Diagnostic> {
    if view.is_exempt_target() || SANCTIONED_SPAWNERS.contains(&view.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, code) in view.scanned.code.iter().enumerate() {
        if view.in_test_region[i] {
            continue;
        }
        if code.contains("thread::spawn") {
            out.push(diag(
                view,
                "no-raw-spawn",
                i,
                "raw thread::spawn outside a sanctioned executor module".to_string(),
            ));
        }
    }
    out
}

/// `needle` occurs in `hay` as a whole word (not an identifier substring).
fn has_token(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok = end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        let scanned = scan(src);
        let view = FileView::new(path, &scanned);
        registry().iter().flat_map(|r| (r.check)(&view)).collect()
    }

    #[test]
    fn unwrap_flagged_in_pipeline_lib_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_one("crates/flat/src/foo.rs", src).len(), 1);
        assert!(lint_one("crates/datasets/src/foo.rs", src).is_empty());
        assert!(lint_one("crates/flat/tests/foo.rs", src).is_empty());
        assert!(lint_one("crates/flat/examples/foo.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_test_region_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(lint_one("crates/flat/src/foo.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_not_flagged() {
        let src = "fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n";
        assert!(lint_one("crates/ps/src/foo.rs", src).is_empty());
    }

    #[test]
    fn expect_and_panic_flagged() {
        let d = lint_one("crates/mapreduce/src/foo.rs", "fn f(x: Option<u8>) { x.expect(\"x\"); panic!(\"no\"); }\n");
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert_eq!(lint_one("crates/datasets/src/x.rs", bad).len(), 1);
        assert!(lint_one("crates/datasets/src/x.rs", good).is_empty());
    }

    #[test]
    fn wallclock_only_in_critical_modules() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(lint_one("crates/mapreduce/src/engine.rs", src).len(), 1);
        assert!(lint_one("crates/mapreduce/src/spill.rs", src).is_empty());
    }

    #[test]
    fn raw_spawn_flagged_outside_sanctioned() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint_one("crates/ps/src/foo.rs", src).len(), 1);
        assert!(lint_one("crates/trainer/src/pipeline.rs", src).is_empty());
        // Scoped spawns are fine.
        let scoped = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert!(lint_one("crates/ps/src/foo.rs", scoped).is_empty());
    }

    #[test]
    fn patterns_in_strings_and_comments_ignored() {
        let src = "fn f() -> &'static str { \"call .unwrap() and panic!\" } // .expect( here\n";
        assert!(lint_one("crates/flat/src/foo.rs", src).is_empty());
    }
}
